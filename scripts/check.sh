#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting.
# Usage: scripts/check.sh
#
# Opt-in dynamic-verification lanes (CHECK_SANITIZERS=1):
#   - Miri over the mmap/CBT slice-reader and SIMD scalar-parity tests
#     (undefined-behavior interpreter; mmap falls back to its buffered
#     read under cfg(miri));
#   - ThreadSanitizer over the streaming/sweep channel tests (data-race
#     detection across the producer/worker fan-out).
# Each lane probes its toolchain first and SKIPs with a note when the
# component is unavailable (Miri and rust-src are rustup downloads, so
# offline machines and minimal CI images run everything else and report
# the lanes as skipped rather than failing).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cbs-lint --json crates tests"
# Hard gate, exit-code aware: 1 = violations (print the human render),
# 2 = the linter itself failed (distinct failure, never masked as
# "violations found"). Root-level `tests/` rides along so
# `mergeable-audit` sees the cross-crate associativity proptests.
lint_status=0
lint_out="$(cargo run -q --release -p cbs-lint -- --json crates tests)" || lint_status=$?
case "${lint_status}" in
0) ;;
1)
    echo "cbs-lint reported diagnostics:" >&2
    cargo run -q --release -p cbs-lint -- crates tests >&2 || true
    exit 1
    ;;
*)
    echo "cbs-lint internal error (exit ${lint_status}): ${lint_out}" >&2
    exit "${lint_status}"
    ;;
esac
if [ "${lint_out}" != "[]" ]; then
    echo "cbs-lint exited 0 but emitted diagnostics: ${lint_out}" >&2
    exit 1
fi

echo "==> cbs-lint --check-bench BENCH_*.json"
# Pinned-schema validation of the committed benchmark artifacts: drift
# (renamed fields, stringly-typed numbers, unknown columns) fails the
# gate before EXPERIMENTS.md can cite a malformed number.
cargo run -q --release -p cbs-lint -- --check-bench BENCH_*.json

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ingest_perf smoke (round-trip + equivalence incl. mmap zero-copy + obs reconciliation + poison gates + perf budgets)"
# Perf budgets enforced inside the smoke: a streaming throughput floor
# (req/s) and a cap on backpressure_nanos/wall_nanos for the mmap-fed
# session. Override per machine without editing the binary.
INGEST_SMOKE_MIN_RPS="${INGEST_SMOKE_MIN_RPS:-100000}" \
INGEST_SMOKE_MAX_BACKPRESSURE="${INGEST_SMOKE_MAX_BACKPRESSURE:-0.9}" \
    ./target/release/ingest_perf smoke

echo "==> cache_perf smoke (sweep == naive CacheSim bit-for-bit, sweep not slower, sampled MRC bounded)"
./target/release/cache_perf --smoke

echo "==> replay_perf smoke (compressed null replay keeps pace + re-analysis identical + remap conservation + multi-lane parity)"
# Open-loop fidelity floor on the achieved/offered ratio, applied to
# both the single-lane engine and the REPLAY_SMOKE_LANES-lane engine
# (whose merged report must equal the single-lane one exactly);
# override per machine without editing the binary.
REPLAY_SMOKE_MIN_RATIO="${REPLAY_SMOKE_MIN_RATIO:-0.90}" \
REPLAY_SMOKE_LANES="${REPLAY_SMOKE_LANES:-2}" \
    ./target/release/replay_perf smoke

echo "==> cbs-convert --metrics smoke (registry export reaches stderr)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT
printf '0,R,0,4096,1000\n1,W,4096,8192,2000\n' > "${tmpdir}/smoke.csv"
./target/release/cbs-convert alicloud "${tmpdir}/smoke.csv" "${tmpdir}/smoke.cbt" --metrics \
    2> "${tmpdir}/convert.err"
grep -q '"decode.records":{"type":"counter","value":2}' "${tmpdir}/convert.err" || {
    echo "cbs-convert --metrics did not export decode counters:" >&2
    cat "${tmpdir}/convert.err" >&2
    exit 1
}
./target/release/cbs-convert info "${tmpdir}/smoke.cbt" --metrics 2> "${tmpdir}/info.err" > /dev/null
grep -q '"cbt.records":{"type":"counter","value":2}' "${tmpdir}/info.err" || {
    echo "cbs-convert info --metrics did not export cbt counters:" >&2
    cat "${tmpdir}/info.err" >&2
    exit 1
}

echo "==> agent-smoke (cbs-ctl + 2 cbs-agents on loopback == --local, byte-for-byte)"
# Process fan-out parity (DESIGN.md §16): the controller's merged
# verdict report over two loopback agents must equal the
# single-process run exactly. Agents bind port 0 and announce the
# real address on stdout, so parallel CI runs never collide.
agent_pids=""
cleanup_agents() {
    for pid in ${agent_pids}; do kill "${pid}" 2> /dev/null || true; done
}
trap 'cleanup_agents; rm -rf "${tmpdir}"' EXIT
./target/release/cbs-agent --listen 127.0.0.1:0 > "${tmpdir}/agent1.log" 2>&1 &
agent_pids="${agent_pids} $!"
./target/release/cbs-agent --listen 127.0.0.1:0 > "${tmpdir}/agent2.log" 2>&1 &
agent_pids="${agent_pids} $!"
agent_addr() {
    # Wait (bounded) for the readiness line, then print the address.
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^cbs-agent listening on //p' "$1" 2> /dev/null | head -n 1)"
        if [ -n "${addr}" ]; then
            printf '%s' "${addr}"
            return 0
        fi
        sleep 0.1
    done
    echo "agent-smoke: agent never announced readiness ($1)" >&2
    return 1
}
addr1="$(agent_addr "${tmpdir}/agent1.log")"
addr2="$(agent_addr "${tmpdir}/agent2.log")"
./target/release/cbs-ctl --local --volumes 6 --days 2 --seed 7 --sweep \
    > "${tmpdir}/local.txt"
./target/release/cbs-ctl --agents "${addr1},${addr2}" --volumes 6 --days 2 --seed 7 --sweep \
    > "${tmpdir}/distributed.txt"
# Wait on every agent individually: `wait p1 p2` reports only the
# LAST pid's status, so a crashed first agent would slip through.
for pid in ${agent_pids}; do
    wait "${pid}" || {
        echo "agent-smoke: agent pid ${pid} exited non-zero" >&2
        cat "${tmpdir}/agent1.log" "${tmpdir}/agent2.log" >&2
        exit 1
    }
done
agent_pids=""
if ! diff -u "${tmpdir}/local.txt" "${tmpdir}/distributed.txt"; then
    echo "agent-smoke: distributed verdict report differs from single-process" >&2
    exit 1
fi

if [ "${CHECK_SANITIZERS:-0}" = "1" ]; then
    echo "==> sanitizer lanes (CHECK_SANITIZERS=1)"

    if cargo +nightly miri --version > /dev/null 2>&1; then
        echo "==> miri: mmap + CBT slice-reader + SIMD scalar parity"
        # The unsafe surface Miri can interpret: the CBT slice reader's
        # in-place decode over (under Miri: buffered) mappings, and the
        # AVX2/scalar twin pairs, which run their scalar sides.
        cargo +nightly miri test -p cbs-trace mmap
        cargo +nightly miri test -p cbs-trace cbt::slice
        cargo +nightly miri test -p cbs-analysis parity
    else
        echo "SKIP miri lane: cargo +nightly miri unavailable" \
             "(rustup component add --toolchain nightly miri)"
    fi

    if rustup component list --toolchain nightly 2> /dev/null \
            | grep -q 'rust-src.*(installed)'; then
        echo "==> tsan: streaming/sweep channel tests"
        # -Zbuild-std rebuilds std with the sanitizer so the mpsc
        # internals are instrumented too, not just our crates.
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -Zbuild-std \
            --target x86_64-unknown-linux-gnu \
            -p cbs-core --test channel_stress
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -Zbuild-std \
            --target x86_64-unknown-linux-gnu \
            -p cbs-cache sweep
    else
        echo "SKIP tsan lane: nightly rust-src not installed" \
             "(rustup component add --toolchain nightly rust-src)"
    fi
else
    echo "NOTE: sanitizer lanes off (opt in with CHECK_SANITIZERS=1)"
fi

echo "OK: all checks passed"
