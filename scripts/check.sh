#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cbs-lint --json crates"
lint_out="$(cargo run -q --release -p cbs-lint -- --json crates || true)"
if [ "${lint_out}" != "[]" ]; then
    echo "cbs-lint reported diagnostics:" >&2
    cargo run -q --release -p cbs-lint -- crates >&2 || true
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ingest_perf smoke (CBT round-trip + batched/streaming equivalence)"
./target/release/ingest_perf smoke

echo "OK: all checks passed"
