#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "OK: all checks passed"
