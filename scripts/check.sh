#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cbs-lint --json crates"
lint_out="$(cargo run -q --release -p cbs-lint -- --json crates || true)"
if [ "${lint_out}" != "[]" ]; then
    echo "cbs-lint reported diagnostics:" >&2
    cargo run -q --release -p cbs-lint -- crates >&2 || true
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ingest_perf smoke (round-trip + equivalence incl. mmap zero-copy + obs reconciliation + poison gates + perf budgets)"
# Perf budgets enforced inside the smoke: a streaming throughput floor
# (req/s) and a cap on backpressure_nanos/wall_nanos for the mmap-fed
# session. Override per machine without editing the binary.
INGEST_SMOKE_MIN_RPS="${INGEST_SMOKE_MIN_RPS:-100000}" \
INGEST_SMOKE_MAX_BACKPRESSURE="${INGEST_SMOKE_MAX_BACKPRESSURE:-0.9}" \
    ./target/release/ingest_perf smoke

echo "==> cache_perf smoke (sweep == naive CacheSim bit-for-bit, sweep not slower, sampled MRC bounded)"
./target/release/cache_perf --smoke

echo "==> cbs-convert --metrics smoke (registry export reaches stderr)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT
printf '0,R,0,4096,1000\n1,W,4096,8192,2000\n' > "${tmpdir}/smoke.csv"
./target/release/cbs-convert alicloud "${tmpdir}/smoke.csv" "${tmpdir}/smoke.cbt" --metrics \
    2> "${tmpdir}/convert.err"
grep -q '"decode.records":{"type":"counter","value":2}' "${tmpdir}/convert.err" || {
    echo "cbs-convert --metrics did not export decode counters:" >&2
    cat "${tmpdir}/convert.err" >&2
    exit 1
}
./target/release/cbs-convert info "${tmpdir}/smoke.cbt" --metrics 2> "${tmpdir}/info.err" > /dev/null
grep -q '"cbt.records":{"type":"counter","value":2}' "${tmpdir}/info.err" || {
    echo "cbs-convert info --metrics did not export cbt counters:" >&2
    cat "${tmpdir}/info.err" >&2
    exit 1
}

echo "OK: all checks passed"
