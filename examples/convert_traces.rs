//! Trace conversion: write a synthetic corpus in the AliCloud CSV
//! format, read it back, and re-emit it in the MSRC CSV format —
//! exercising both codecs the way a user working with the real trace
//! releases would.
//!
//! ```sh
//! cargo run --release --example convert_traces
//! ```

use std::io::BufReader;

use cbs_core::prelude::*;
use cbs_trace::codec::alicloud::{AliCloudReader, AliCloudWriter};
use cbs_trace::codec::msrc::{MsrcReader, MsrcWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("cbs-workbench-convert");
    std::fs::create_dir_all(&dir)?;
    let ali_path = dir.join("corpus.alicloud.csv");
    let msrc_path = dir.join("corpus.msrc.csv");

    // 1. Synthesize and persist in the AliCloud release format.
    let config = CorpusConfig::new(5, 1, 11).with_intensity_scale(0.002);
    let trace = cbs_synth::presets::alicloud_like(&config).generate();
    {
        let file = std::fs::File::create(&ali_path)?;
        let mut writer = AliCloudWriter::new(std::io::BufWriter::new(file));
        // the release stores requests in timestamp order
        for req in trace.iter_time_ordered() {
            writer.write_request(&req)?;
        }
        writer.into_inner()?;
    }
    println!(
        "wrote {} requests to {} ({} bytes)",
        trace.request_count(),
        ali_path.display(),
        std::fs::metadata(&ali_path)?.len()
    );

    // 2. Read it back and verify nothing was lost.
    let reader = AliCloudReader::new(BufReader::new(std::fs::File::open(&ali_path)?));
    let restored = Trace::from_records(reader)?;
    assert_eq!(restored.request_count(), trace.request_count());
    assert_eq!(restored.volume_count(), trace.volume_count());
    println!(
        "round-trip OK: {} requests restored",
        restored.request_count()
    );

    // 3. Re-emit in the MSRC format (hostname = "cbs", disk = volume).
    {
        let file = std::fs::File::create(&msrc_path)?;
        let mut writer = MsrcWriter::new(std::io::BufWriter::new(file));
        for req in restored.iter_time_ordered() {
            writer.write_record(&req, "cbs", req.volume().get(), TimeDelta::ZERO)?;
        }
        writer.into_inner()?;
    }

    // 4. Read the MSRC file and verify counts and the volume registry.
    let reader = MsrcReader::new(BufReader::new(std::fs::File::open(&msrc_path)?));
    let mut count = 0usize;
    let mut reader = reader;
    for record in &mut reader {
        let _ = record?;
        count += 1;
    }
    let registry = reader.into_registry();
    println!(
        "MSRC re-emit OK: {} records across {} named volumes ({:?}...)",
        count,
        registry.len(),
        registry.iter().next().map(|(_, name)| name.to_owned())
    );
    assert_eq!(count, trace.request_count());

    std::fs::remove_file(&ali_path)?;
    std::fs::remove_file(&msrc_path)?;
    Ok(())
}
