//! Cache provisioning: use miss-ratio curves to size per-volume caches
//! and compare replacement policies — the engineering question behind
//! Finding 15.
//!
//! For each volume of a synthetic corpus this example:
//!
//! 1. derives the exact LRU miss-ratio curve from reuse distances
//!    (no simulation sweep needed — one pass gives every cache size);
//! 2. finds the smallest cache reaching a target miss ratio;
//! 3. cross-checks LRU against FIFO / CLOCK / ARC with explicit
//!    simulations at that size.
//!
//! ```sh
//! cargo run --release --example cache_provisioning
//! ```

use cbs_cache::{Arc, CachePolicy, CacheSim, Clock, Fifo, Lru};
use cbs_core::prelude::*;

const TARGET_MISS_RATIO: f64 = 0.4;

fn main() {
    let config = CorpusConfig::new(12, 2, 7).with_intensity_scale(0.004);
    let corpus = cbs_synth::presets::alicloud_like(&config);
    let trace = corpus.generate();
    let analysis = Workbench::new(trace).analyze();

    println!(
        "target: overall miss ratio <= {:.0}%\n",
        TARGET_MISS_RATIO * 100.0
    );
    println!(
        "{:<8} {:>10} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "volume", "WSS(blk)", "cache(blk)", "lru", "fifo", "clock", "arc"
    );

    for m in analysis.metrics() {
        // combined curve over reads+writes: merge the per-op curves by
        // simulating? No need — the analyzer's curves are per-op; use
        // the write curve for write-heavy volumes and read otherwise.
        let curve = if m.writes >= m.reads {
            &m.write_mrc
        } else {
            &m.read_mrc
        };
        let Some(capacity) = curve.capacity_for_miss_ratio(TARGET_MISS_RATIO) else {
            println!(
                "{:<8} {:>10} {:>12}",
                m.id.to_string(),
                m.wss_blocks,
                "unreachable"
            );
            continue;
        };
        let capacity = capacity.max(1);

        // cross-check with explicit simulations
        let volume_requests = analysis
            .trace()
            .volume(m.id)
            .expect("metrics come from the trace")
            .requests()
            .to_vec();
        let simulate = |policy: Box<dyn CachePolicy>| -> f64 {
            let mut sim = CacheSim::new(PolicyBox(policy), BlockSize::DEFAULT);
            sim.run(&volume_requests);
            sim.stats().overall_miss_ratio().unwrap_or(1.0)
        };
        let lru = simulate(Box::new(Lru::new(capacity)));
        let fifo = simulate(Box::new(Fifo::new(capacity)));
        let clock = simulate(Box::new(Clock::new(capacity)));
        let arc = simulate(Box::new(Arc::new(capacity)));

        println!(
            "{:<8} {:>10} {:>12} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            m.id.to_string(),
            m.wss_blocks,
            capacity,
            lru * 100.0,
            fifo * 100.0,
            clock * 100.0,
            arc * 100.0,
        );
    }

    println!(
        "\nThe cache column is the smallest LRU size whose predicted miss \
         ratio meets the target;\nthe policy columns are independent \
         simulations at that size (ARC usually matches or beats LRU)."
    );
}

/// Adapter: `CacheSim` is generic over `P: CachePolicy`, and a
/// `Box<dyn CachePolicy>` does not itself implement the trait — this
/// newtype forwards it.
struct PolicyBox(Box<dyn CachePolicy>);

impl CachePolicy for PolicyBox {
    fn capacity(&self) -> usize {
        self.0.capacity()
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn contains(&self, block: BlockId) -> bool {
        self.0.contains(block)
    }
    fn access(&mut self, block: BlockId) -> cbs_cache::AccessResult {
        self.0.access(block)
    }
    fn name(&self) -> &'static str {
        "boxed"
    }
}
