//! Quickstart: synthesize a small cloud block storage workload,
//! characterize it, and read out a few of the paper's findings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cbs_core::prelude::*;

fn main() {
    // 1. Synthesize a miniature AliCloud-like corpus: 30 volumes over
    //    3 days, request rates scaled down for a sub-second run.
    let config = CorpusConfig::new(30, 3, 2024).with_intensity_scale(0.002);
    let trace = cbs_synth::presets::alicloud_like(&config).generate();
    println!(
        "synthesized {} requests across {} volumes ({} days)",
        trace.request_count(),
        trace.volume_count(),
        config.days
    );

    // 2. Characterize every volume (single pass per volume, in
    //    parallel across cores).
    let analysis = Workbench::new(trace).analyze();

    // 3. Read out findings.
    let totals = analysis.totals();
    println!("\n--- corpus totals (Table I style) ---");
    println!("reads: {}, writes: {}", totals.reads, totals.writes);
    if let Some(ratio) = totals.write_read_ratio() {
        println!("write-to-read ratio: {ratio:.2}");
    }

    let ratios = analysis.write_read_ratios();
    println!("\n--- write dominance (Fig. 4 / Finding 5) ---");
    println!(
        "{:.1}% of volumes are write-dominant",
        ratios.fraction_write_dominant() * 100.0
    );
    println!(
        "{:.1}% of volumes have W:R > 100",
        ratios.fraction_above(100.0) * 100.0
    );

    let burstiness = analysis.burstiness();
    println!("\n--- burstiness (Findings 2-3) ---");
    println!(
        "{:.1}% of volumes have burstiness ratio > 100",
        burstiness.fraction_above(100.0) * 100.0
    );

    let coverage = analysis.update_coverage();
    println!("\n--- update coverage (Finding 11) ---");
    if let Some((mean, median, p90)) = coverage.table_row() {
        println!(
            "mean {mean:.1}%, median {median:.1}%, p90 {p90:.1}%",
            mean = mean * 100.0,
            median = median * 100.0,
            p90 = p90 * 100.0
        );
    }

    let lru = analysis.lru_miss_ratios();
    println!("\n--- LRU caching (Finding 15) ---");
    if let Some(reduction) = lru.mean_read_reduction() {
        println!(
            "growing the cache from 1% to 10% of WSS cuts read miss \
             ratios by {:.1} points on average",
            reduction * 100.0
        );
    }

    // 4. Per-volume drill-down: the most traffic-intensive volume.
    if let Some(top) = analysis.top_traffic(1).first() {
        println!("\n--- busiest volume (Fig. 10(b) style) ---");
        println!(
            "{}: {:.2} GiB of traffic, randomness ratio {:.1}%",
            top.id,
            top.traffic_bytes as f64 / (1u64 << 30) as f64,
            top.randomness_ratio * 100.0
        );
    }
}
