//! Write offloading: estimate the idle time created by redirecting
//! writes away from primary storage — the power-management implication
//! of Findings 5-7.
//!
//! The paper observes that activeness is almost entirely driven by
//! writes: removing writes leaves most volumes read-idle for long
//! stretches, which Narayanan et al.'s write off-loading exploits to
//! spin storage down. This example quantifies that opportunity on a
//! synthetic corpus: for each volume, its active time with all
//! requests vs. reads only, and the corpus-level idle-interval gain.
//!
//! ```sh
//! cargo run --release --example write_offloading
//! ```

use cbs_core::prelude::*;

fn main() {
    let config = CorpusConfig::new(24, 2, 5).with_intensity_scale(0.004);
    let trace = cbs_synth::presets::alicloud_like(&config).generate();
    let analysis = Workbench::new(trace).analyze();
    let cfg = analysis.config();

    println!("write-offloading opportunity, per volume:\n");
    println!(
        "{:<8} {:>12} {:>14} {:>12}",
        "volume", "active", "read-active", "idle gain"
    );

    let mut total_active = 0.0;
    let mut total_read_active = 0.0;
    for m in analysis.metrics() {
        let active = m.active_period(cfg).as_hours_f64();
        let read_active = m.read_active_period(cfg).as_hours_f64();
        total_active += active;
        total_read_active += read_active;
        let gain = if active > 0.0 {
            (active - read_active) / active * 100.0
        } else {
            0.0
        };
        println!(
            "{:<8} {:>11.1}h {:>13.1}h {:>11.1}%",
            m.id.to_string(),
            active,
            read_active,
            gain
        );
    }

    println!(
        "\ncorpus: {:.1}h of active volume-time, only {:.1}h is read-active",
        total_active, total_read_active
    );
    println!(
        "offloading writes would idle {:.1}% of currently-active volume-time",
        (1.0 - total_read_active / total_active.max(1e-9)) * 100.0
    );

    // Fig. 8 view: how many volumes stop being active per interval once
    // writes are removed.
    let series = analysis.activeness_series();
    if let Some((lo, hi)) = series.read_only_reduction() {
        println!(
            "per 10-minute interval, removing writes shrinks the active \
             volume count by {:.0}%-{:.0}% (paper: 58.3%-73.6% in AliCloud)",
            lo * 100.0,
            hi * 100.0
        );
    }
}
