//! Volume triage: classify every volume of a corpus against the
//! paper's Section V design considerations — load balancing, cache
//! efficiency, and storage cluster management — and print a fleet
//! summary an operator could act on.
//!
//! ```sh
//! cargo run --release --example volume_triage
//! ```

use cbs_analysis::recommend::VolumeTrait;
use cbs_core::prelude::*;

fn main() {
    let config = CorpusConfig::new(40, 3, 17).with_intensity_scale(0.003);
    let trace = cbs_synth::presets::alicloud_like(&config).generate();
    let analysis = Workbench::new(trace).analyze();
    let assessments = analysis.assessments();

    println!("per-volume triage ({} volumes):\n", assessments.len());
    for a in &assessments {
        println!("  {a}");
    }

    // Fleet-level counts per trait.
    let count =
        |probe: fn(&VolumeTrait) -> bool| assessments.iter().filter(|a| a.has(probe)).count();
    let total = assessments.len().max(1);
    let pct = |n: usize| n as f64 / total as f64 * 100.0;

    println!("\nfleet summary:");
    let bursty = count(|t| matches!(t, VolumeTrait::Bursty { .. }));
    println!(
        "  load balancing: {bursty} volumes ({:.0}%) are bursty (ratio > 100) — \
         spread them across nodes",
        pct(bursty)
    );
    let cache_w = count(|t| matches!(t, VolumeTrait::CacheFriendlyWrites { .. }));
    let cache_r = count(|t| matches!(t, VolumeTrait::CacheFriendlyReads { .. }));
    println!(
        "  cache efficiency: {cache_w} volumes ({:.0}%) reward a write cache, \
         {cache_r} ({:.0}%) a read cache (10% of WSS)",
        pct(cache_w),
        pct(cache_r)
    );
    let offload = count(|t| matches!(t, VolumeTrait::OffloadCandidate { .. }));
    println!(
        "  power: {offload} volumes ({:.0}%) are nearly read-idle — write \
         off-loading would idle them",
        pct(offload)
    );
    let hostile = count(|t| matches!(t, VolumeTrait::FlashHostile { .. }));
    let update_heavy = count(|t| matches!(t, VolumeTrait::UpdateHeavy { .. }));
    println!(
        "  flash management: {hostile} volumes ({:.0}%) issue mostly random I/O, \
         {update_heavy} ({:.0}%) are update-heavy (GC pressure)",
        pct(hostile),
        pct(update_heavy)
    );
    let short = count(|t| matches!(t, VolumeTrait::ShortLived { .. }));
    println!(
        "  provisioning: {short} volumes ({:.0}%) are short-lived batch jobs",
        pct(short)
    );
}
