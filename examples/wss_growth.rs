//! Working-set growth: watch each volume's WSS evolve hour by hour and
//! classify it as *bounded* (a circular log — cacheable with a fixed
//! budget) or *unbounded* (one-shot writes — caching only helps the
//! short-term reuse).
//!
//! This extends the paper's global WSS numbers (Table I) with the time
//! dimension an operator needs for cache *re*-sizing.
//!
//! ```sh
//! cargo run --release --example wss_growth
//! ```

use cbs_analysis::windowed::WindowedAnalysis;
use cbs_core::prelude::*;

fn main() {
    let config = CorpusConfig::new(12, 2, 23).with_intensity_scale(0.004);
    let trace = cbs_synth::presets::alicloud_like(&config).generate();
    let analysis_config = cbs_analysis::AnalysisConfig::default();
    let epoch = trace.start().expect("non-empty corpus");
    let window = TimeDelta::from_hours(1);

    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>10}",
        "volume", "windows", "final WSS", "plateau@", "verdict"
    );
    for view in trace.volumes() {
        let w = WindowedAnalysis::analyze(view, epoch, window, &analysis_config);
        let growth = w.wss_growth();
        let final_wss = growth.last().copied().unwrap_or(0);
        let plateau = w.plateau_window(0.25);
        let verdict = match plateau {
            Some(_) => "bounded",
            None => "growing",
        };
        println!(
            "{:<8} {:>10} {:>9} blk {:>12} {:>10}",
            view.id().to_string(),
            w.windows().len(),
            final_wss,
            plateau.map_or("-".to_owned(), |p| format!("hour {p}")),
            verdict
        );
    }

    // corpus-level: how much of the final WSS existed after the first
    // quarter of the trace? (informs how quickly caches warm up)
    let mut early = 0u64;
    let mut total = 0u64;
    for view in trace.volumes() {
        let w = WindowedAnalysis::analyze(view, epoch, window, &analysis_config);
        let growth = w.wss_growth();
        if growth.is_empty() {
            continue;
        }
        early += growth[growth.len() / 4];
        total += *growth.last().expect("non-empty");
    }
    if total > 0 {
        println!(
            "\n{:.0}% of the corpus working set is already touched a quarter \
             of the way into the trace",
            early as f64 / total as f64 * 100.0
        );
    }
}
