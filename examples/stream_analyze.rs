//! Streaming analysis: characterize a synthetic corpus without ever
//! materializing the trace in memory.
//!
//! The batch path (`Workbench::analyze`) first builds a `Trace` — a
//! sorted `Vec<IoRequest>` — and then characterizes it. At 24 bytes per
//! request that caps the corpus size at available RAM. The streaming
//! path pulls requests one at a time from the lazy corpus generator and
//! pushes them into a [`StreamingWorkbench`], whose memory footprint is
//! O(volumes), independent of request count.
//!
//! ```sh
//! cargo run --release --example stream_analyze
//! ```

use std::time::Instant;

use cbs_analysis::findings::basic::TraceTotals;
use cbs_core::prelude::*;

fn main() {
    // A corpus big enough to be interesting but quick in --release.
    // Crank `days`, `volumes`, or the intensity scale to taste: the
    // streaming path's memory use does not grow with request count.
    let config = CorpusConfig::new(60, 3, 7).with_intensity_scale(0.01);
    let generator = cbs_synth::presets::alicloud_like(&config);

    let start = Instant::now();
    let mut session = StreamingWorkbench::new().start();
    for req in generator.stream() {
        session.observe(req);
    }
    let observed = session.observed();
    let metrics = session.finish();
    let elapsed = start.elapsed();

    println!(
        "streamed {observed} requests across {} volumes in {:.2?} \
         ({:.0} requests/s)",
        metrics.len(),
        elapsed,
        observed as f64 / elapsed.as_secs_f64()
    );

    // The streamed metrics are byte-identical to what the batch
    // `Workbench` would have produced, so every corpus-level finding
    // constructor works on them unchanged.
    let block = u64::from(AnalysisConfig::default().block_size.bytes());
    let totals = TraceTotals::from_metrics(&metrics, block);
    println!("\n--- corpus totals (Table I style) ---");
    println!("reads: {}, writes: {}", totals.reads, totals.writes);
    if let Some(ratio) = totals.write_read_ratio() {
        println!("write-to-read ratio: {ratio:.2}");
    }

    let mut by_traffic: Vec<&VolumeMetrics> = metrics.iter().collect();
    by_traffic.sort_by_key(|m| std::cmp::Reverse(m.total_bytes()));
    println!("\n--- top volumes by traffic ---");
    for m in by_traffic.iter().take(5) {
        println!(
            "{}: {:.2} GiB, {:.1}% writes, randomness {:.1}%",
            m.id,
            m.total_bytes() as f64 / (1u64 << 30) as f64,
            m.writes as f64 / (m.reads + m.writes).max(1) as f64 * 100.0,
            m.randomness_ratio() * 100.0
        );
    }
}
