//! Load balancing: place volumes on storage nodes using the intensity
//! metrics of Findings 1-3.
//!
//! The paper's load-balancing implication: placement must consider
//! *peak* intensity, not just average — bursty volumes that look cheap
//! on average can overload a node at their peaks. This example
//! compares three placement strategies on a synthetic corpus:
//!
//! * round-robin (id order, intensity-blind);
//! * greedy by average intensity;
//! * greedy by peak intensity.
//!
//! and reports the resulting per-node peak-load imbalance.
//!
//! ```sh
//! cargo run --release --example load_balancing
//! ```

use cbs_analysis::VolumeMetrics;
use cbs_core::prelude::*;

const NODES: usize = 4;

fn main() {
    let config = CorpusConfig::new(32, 2, 99).with_intensity_scale(0.004);
    let trace = cbs_synth::presets::alicloud_like(&config).generate();
    let analysis = Workbench::new(trace).analyze();
    let metrics = analysis.metrics();
    let analysis_config = analysis.config();

    let peak = |m: &VolumeMetrics| m.peak_intensity(analysis_config);
    let avg = |m: &VolumeMetrics| m.avg_intensity();

    // Strategy 1: round-robin by volume id.
    let round_robin: Vec<usize> = (0..metrics.len()).map(|i| i % NODES).collect();

    // Strategy 2/3: greedy "longest processing time" packing by a key:
    // sort descending, always place on the least-loaded node.
    let greedy = |key: &dyn Fn(&VolumeMetrics) -> f64| -> Vec<usize> {
        let mut order: Vec<usize> = (0..metrics.len()).collect();
        order.sort_by(|&a, &b| {
            key(&metrics[b])
                .partial_cmp(&key(&metrics[a]))
                .expect("finite intensities")
        });
        let mut load = [0.0f64; NODES];
        let mut assignment = vec![0usize; metrics.len()];
        for idx in order {
            let node = (0..NODES)
                .min_by(|&a, &b| load[a].partial_cmp(&load[b]).expect("finite"))
                .expect("NODES > 0");
            assignment[idx] = node;
            load[node] += key(&metrics[idx]);
        }
        assignment
    };
    let by_avg = greedy(&avg);
    let by_peak = greedy(&peak);

    // Evaluate: peak load per node (sum of member peaks — the
    // worst-case coincident burst) and its imbalance (max/mean).
    let evaluate = |assignment: &[usize]| -> (f64, f64) {
        let mut node_peak = [0.0f64; NODES];
        for (vol, &node) in assignment.iter().enumerate() {
            node_peak[node] += peak(&metrics[vol]);
        }
        let max = node_peak.iter().copied().fold(0.0, f64::max);
        let mean = node_peak.iter().sum::<f64>() / NODES as f64;
        (max, max / mean.max(1e-12))
    };

    println!("placing {} volumes on {NODES} nodes\n", metrics.len());
    println!(
        "{:<22} {:>16} {:>12}",
        "strategy", "max node peak", "imbalance"
    );
    for (name, assignment) in [
        ("round-robin", &round_robin),
        ("greedy by average", &by_avg),
        ("greedy by peak", &by_peak),
    ] {
        let (max, imbalance) = evaluate(assignment);
        println!("{name:<22} {max:>12.2} r/s {imbalance:>11.2}x");
    }

    let (rr, _) = evaluate(&round_robin);
    let (gp, _) = evaluate(&by_peak);
    println!(
        "\npeak-aware placement cuts the worst node's peak load by {:.0}% \
         vs round-robin\n(Findings 2-3: per-volume burstiness varies over \
         three orders of magnitude,\nso intensity-blind placement \
         concentrates coincident peaks).",
        (1.0 - gp / rr) * 100.0
    );
}
