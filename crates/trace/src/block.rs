//! Fixed-size block decomposition of byte-addressed requests.
//!
//! The paper's spatial and temporal analyses (working sets, read-/write-
//! mostly classification, update coverage, RAW/WAW/RAR/WAR adjacency,
//! update intervals, LRU simulation) all operate on fixed-size *blocks*
//! rather than raw byte ranges. [`BlockSize`] captures the unit (4 KiB by
//! default, the sector-aligned unit used by the released traces) and
//! [`BlockSpan`] enumerates the blocks a request touches.

use core::fmt;

use crate::IoRequest;

/// The default block unit used by the workbench: 4 KiB.
pub const DEFAULT_BLOCK_BYTES: u32 = 4096;

/// A validated, power-of-two block size in bytes.
///
/// # Example
///
/// ```
/// use cbs_trace::BlockSize;
///
/// let bs = BlockSize::new(4096).unwrap();
/// assert_eq!(bs.bytes(), 4096);
/// assert_eq!(bs.block_of(8191), cbs_trace::BlockId::new(1));
/// assert!(BlockSize::new(3000).is_none()); // not a power of two
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockSize(u32);

impl BlockSize {
    /// The 4 KiB default unit.
    pub const DEFAULT: BlockSize = BlockSize(DEFAULT_BLOCK_BYTES);

    /// Creates a block size, returning `None` unless `bytes` is a
    /// power of two (and non-zero).
    #[inline]
    pub const fn new(bytes: u32) -> Option<Self> {
        if bytes.is_power_of_two() {
            Some(BlockSize(bytes))
        } else {
            None
        }
    }

    /// The size in bytes.
    #[inline]
    pub const fn bytes(self) -> u32 {
        self.0
    }

    /// log2 of the size; block ids are offsets shifted right by this.
    #[inline]
    pub const fn shift(self) -> u32 {
        self.0.trailing_zeros()
    }

    /// Returns the id of the block containing byte `offset`.
    #[inline]
    pub const fn block_of(self, offset: u64) -> BlockId {
        BlockId(offset >> self.shift())
    }

    /// Returns the first byte offset of `block`.
    #[inline]
    pub const fn offset_of(self, block: BlockId) -> u64 {
        block.0 << self.shift()
    }

    /// Enumerates the blocks touched by the byte range
    /// `[offset, offset + len)`.
    ///
    /// A zero-length range touches no blocks.
    #[inline]
    pub const fn span(self, offset: u64, len: u32) -> BlockSpan {
        let first = offset >> self.shift();
        let end = if len == 0 {
            first // empty: next == end
        } else {
            ((offset + len as u64 - 1) >> self.shift()) + 1
        };
        BlockSpan { next: first, end }
    }

    /// Enumerates the blocks touched by a request.
    #[inline]
    pub const fn span_of(self, req: &IoRequest) -> BlockSpan {
        self.span(req.offset(), req.len())
    }

    /// Number of blocks touched by the byte range `[offset, offset+len)`.
    #[inline]
    pub const fn count(self, offset: u64, len: u32) -> u64 {
        let span = self.span(offset, len);
        span.end - span.next
    }
}

impl Default for BlockSize {
    fn default() -> Self {
        BlockSize::DEFAULT
    }
}

impl fmt::Display for BlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % 1024 == 0 {
            write!(f, "{}KiB", self.0 / 1024)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// Identifier of one fixed-size block within a volume.
///
/// Block ids are dense: block *k* covers bytes
/// `[k * block_size, (k + 1) * block_size)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockId(u64);

impl BlockId {
    /// Creates a block id from its dense index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        BlockId(index)
    }

    /// Returns the dense index.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk-{}", self.0)
    }
}

impl From<u64> for BlockId {
    #[inline]
    fn from(index: u64) -> Self {
        BlockId(index)
    }
}

impl From<BlockId> for u64 {
    #[inline]
    fn from(b: BlockId) -> u64 {
        b.0
    }
}

/// Iterator over the [`BlockId`]s touched by a byte range.
///
/// Produced by [`BlockSize::span`] / [`BlockSize::span_of`].
#[derive(Debug, Clone)]
pub struct BlockSpan {
    next: u64,
    end: u64,
}

impl BlockSpan {
    /// Number of blocks remaining in the span.
    #[inline]
    pub const fn remaining(&self) -> u64 {
        self.end - self.next
    }

    /// Returns `true` if the span covers no blocks.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.next == self.end
    }

    /// The first block of the span, if any (without consuming it).
    #[inline]
    pub const fn first(&self) -> Option<BlockId> {
        if self.is_empty() {
            None
        } else {
            Some(BlockId(self.next))
        }
    }
}

impl Iterator for BlockSpan {
    type Item = BlockId;

    #[inline]
    fn next(&mut self) -> Option<BlockId> {
        if self.next < self.end {
            let id = BlockId(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for BlockSpan {}

impl std::iter::FusedIterator for BlockSpan {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpKind, Timestamp, VolumeId};

    const BS: BlockSize = BlockSize::DEFAULT;

    #[test]
    fn rejects_non_power_of_two() {
        assert!(BlockSize::new(0).is_none());
        assert!(BlockSize::new(4095).is_none());
        assert!(BlockSize::new(4096).is_some());
        assert!(BlockSize::new(1).is_some());
    }

    #[test]
    fn block_of_and_offset_of_roundtrip() {
        assert_eq!(BS.block_of(0), BlockId::new(0));
        assert_eq!(BS.block_of(4095), BlockId::new(0));
        assert_eq!(BS.block_of(4096), BlockId::new(1));
        assert_eq!(BS.offset_of(BlockId::new(3)), 12288);
        assert_eq!(
            BS.block_of(BS.offset_of(BlockId::new(77))),
            BlockId::new(77)
        );
    }

    #[test]
    fn aligned_span() {
        let blocks: Vec<_> = BS.span(4096, 8192).collect();
        assert_eq!(blocks, vec![BlockId::new(1), BlockId::new(2)]);
    }

    #[test]
    fn unaligned_span_touches_partial_blocks() {
        // [4000, 4000 + 200) straddles blocks 0 and... no, stays in block 0.
        let blocks: Vec<_> = BS.span(4000, 90).collect();
        assert_eq!(blocks, vec![BlockId::new(0)]);
        // [4000, 4300) straddles blocks 0 and 1.
        let blocks: Vec<_> = BS.span(4000, 300).collect();
        assert_eq!(blocks, vec![BlockId::new(0), BlockId::new(1)]);
    }

    #[test]
    fn single_byte_span() {
        let blocks: Vec<_> = BS.span(8192, 1).collect();
        assert_eq!(blocks, vec![BlockId::new(2)]);
    }

    #[test]
    fn zero_length_span_is_empty() {
        let mut span = BS.span(4096, 0);
        assert!(span.is_empty());
        assert_eq!(span.first(), None);
        assert_eq!(span.next(), None);
        assert_eq!(BS.count(4096, 0), 0);
    }

    #[test]
    fn count_matches_span_len() {
        for (off, len) in [
            (0u64, 1u32),
            (1, 4096),
            (4095, 2),
            (0, 65536),
            (12345, 9999),
        ] {
            let expected = BS.span(off, len).count() as u64;
            assert_eq!(BS.count(off, len), expected, "off={off} len={len}");
        }
    }

    #[test]
    fn span_of_request() {
        let r = IoRequest::new(VolumeId::new(0), OpKind::Read, 4095, 2, Timestamp::ZERO);
        let blocks: Vec<_> = BS.span_of(&r).collect();
        assert_eq!(blocks, vec![BlockId::new(0), BlockId::new(1)]);
    }

    #[test]
    fn exact_size_iterator() {
        let span = BS.span(0, 16384);
        assert_eq!(span.len(), 4);
        assert_eq!(span.remaining(), 4);
    }

    #[test]
    fn display_formats() {
        assert_eq!(BlockSize::DEFAULT.to_string(), "4KiB");
        assert_eq!(BlockSize::new(512).unwrap().to_string(), "512B");
        assert_eq!(BlockId::new(5).to_string(), "blk-5");
    }

    #[test]
    fn other_block_sizes() {
        let bs = BlockSize::new(16384).unwrap();
        assert_eq!(bs.block_of(16383), BlockId::new(0));
        assert_eq!(bs.block_of(16384), BlockId::new(1));
        assert_eq!(bs.span(0, 65536).count(), 4);
    }
}
