//! Iterator adapters over request streams.
//!
//! The central adapter is [`MergeByTime`], a k-way merge that stitches
//! per-volume (or per-file) streams — each already sorted by timestamp —
//! into one globally time-ordered stream. This mirrors how both trace
//! corpora are stored (one file per volume / per day) and how the
//! synthetic generator produces them (one stream per volume).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{IoRequest, Timestamp};

/// K-way merge of timestamp-sorted request streams.
///
/// Ties on timestamp are broken by source index, making the merge
/// deterministic and stable (all requests of source 0 precede those of
/// source 1 at equal timestamps).
///
/// Inputs that are not internally sorted produce an unspecified (but
/// still complete) output order; use
/// [`is_sorted_by_time`] to validate inputs when in doubt.
///
/// # Example
///
/// ```
/// use cbs_trace::{IoRequest, MergeByTime, OpKind, Timestamp, VolumeId};
///
/// let mk = |v: u32, us: u64| {
///     IoRequest::new(VolumeId::new(v), OpKind::Read, 0, 512, Timestamp::from_micros(us))
/// };
/// let a = vec![mk(0, 10), mk(0, 30)];
/// let b = vec![mk(1, 20), mk(1, 40)];
/// let merged: Vec<_> = MergeByTime::new(vec![a.into_iter(), b.into_iter()]).collect();
/// let times: Vec<u64> = merged.iter().map(|r| r.ts().as_micros()).collect();
/// assert_eq!(times, vec![10, 20, 30, 40]);
/// ```
#[derive(Debug)]
pub struct MergeByTime<I> {
    sources: Vec<I>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
}

#[derive(Debug, PartialEq, Eq)]
struct HeapEntry {
    ts: Timestamp,
    source: usize,
    req: IoRequest,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts, self.source).cmp(&(other.ts, other.source))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<I> MergeByTime<I>
where
    I: Iterator<Item = IoRequest>,
{
    /// Creates a merge over `sources`; each source must already be
    /// sorted by timestamp.
    pub fn new(sources: Vec<I>) -> Self {
        let mut merge = MergeByTime {
            heap: BinaryHeap::with_capacity(sources.len()),
            sources,
        };
        for idx in 0..merge.sources.len() {
            merge.refill(idx);
        }
        merge
    }

    fn refill(&mut self, source: usize) {
        if let Some(req) = self.sources[source].next() {
            self.heap.push(Reverse(HeapEntry {
                ts: req.ts(),
                source,
                req,
            }));
        }
    }
}

impl<I> Iterator for MergeByTime<I>
where
    I: Iterator<Item = IoRequest>,
{
    type Item = IoRequest;

    fn next(&mut self) -> Option<IoRequest> {
        let Reverse(entry) = self.heap.pop()?;
        self.refill(entry.source);
        Some(entry.req)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (mut lo, mut hi) = (self.heap.len(), Some(self.heap.len()));
        for s in &self.sources {
            let (slo, shi) = s.size_hint();
            lo += slo;
            hi = match (hi, shi) {
                (Some(a), Some(b)) => a.checked_add(b),
                _ => None,
            };
        }
        (lo, hi)
    }
}

/// Returns `true` if `requests` is non-decreasing in timestamp.
///
/// # Example
///
/// ```
/// use cbs_trace::iter::is_sorted_by_time;
/// use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};
///
/// let mk = |us| IoRequest::new(VolumeId::new(0), OpKind::Read, 0, 1, Timestamp::from_micros(us));
/// assert!(is_sorted_by_time(&[mk(1), mk(1), mk(2)]));
/// assert!(!is_sorted_by_time(&[mk(2), mk(1)]));
/// ```
pub fn is_sorted_by_time(requests: &[IoRequest]) -> bool {
    requests.windows(2).all(|w| w[0].ts() <= w[1].ts())
}

/// Sorts requests by `(timestamp, volume)` — a stable total order used
/// to normalize traces before analysis.
pub fn sort_by_time(requests: &mut [IoRequest]) {
    requests.sort_by_key(|r| (r.ts(), r.volume()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpKind, VolumeId};

    fn mk(v: u32, us: u64) -> IoRequest {
        IoRequest::new(
            VolumeId::new(v),
            OpKind::Write,
            0,
            512,
            Timestamp::from_micros(us),
        )
    }

    #[test]
    fn merges_empty_inputs() {
        let merged: Vec<_> =
            MergeByTime::new(Vec::<std::vec::IntoIter<IoRequest>>::new()).collect();
        assert!(merged.is_empty());
        let merged: Vec<_> =
            MergeByTime::new(vec![Vec::new().into_iter(), Vec::new().into_iter()]).collect();
        assert!(merged.is_empty());
    }

    #[test]
    fn merges_single_source() {
        let src = vec![mk(0, 1), mk(0, 2), mk(0, 3)];
        let merged: Vec<_> = MergeByTime::new(vec![src.clone().into_iter()]).collect();
        assert_eq!(merged, src);
    }

    #[test]
    fn ties_break_by_source_index() {
        let a = vec![mk(0, 10)];
        let b = vec![mk(1, 10)];
        let merged: Vec<_> = MergeByTime::new(vec![a.into_iter(), b.into_iter()]).collect();
        assert_eq!(merged[0].volume(), VolumeId::new(0));
        assert_eq!(merged[1].volume(), VolumeId::new(1));
    }

    #[test]
    fn merge_is_complete_and_sorted() {
        let a: Vec<_> = (0..50).map(|i| mk(0, i * 3)).collect();
        let b: Vec<_> = (0..50).map(|i| mk(1, i * 5)).collect();
        let c: Vec<_> = (0..50).map(|i| mk(2, i * 7 + 1)).collect();
        let merged: Vec<_> =
            MergeByTime::new(vec![a.into_iter(), b.into_iter(), c.into_iter()]).collect();
        assert_eq!(merged.len(), 150);
        assert!(is_sorted_by_time(&merged));
    }

    #[test]
    fn size_hint_is_exact_for_vec_sources() {
        let a = vec![mk(0, 1), mk(0, 2)];
        let b = vec![mk(1, 3)];
        let merge = MergeByTime::new(vec![a.into_iter(), b.into_iter()]);
        assert_eq!(merge.size_hint(), (3, Some(3)));
    }

    #[test]
    fn sort_by_time_normalizes() {
        let mut reqs = vec![mk(1, 5), mk(0, 5), mk(2, 1)];
        sort_by_time(&mut reqs);
        assert_eq!(
            reqs.iter().map(|r| r.volume().get()).collect::<Vec<_>>(),
            vec![2, 0, 1]
        );
        assert!(is_sorted_by_time(&reqs));
    }
}
