//! File-level loading conveniences for the released trace corpora.
//!
//! The AliCloud release is one large CSV; the MSRC release is a
//! directory of per-volume CSVs sharing one volume namespace. These
//! helpers wrap the streaming readers with the `File`/directory
//! plumbing (and an optional request cap for exploratory work on
//! multi-GiB files).

use std::fs::File;
use std::io::BufReader;
use std::path::Path;

use crate::codec::alicloud::AliCloudReader;
use crate::codec::msrc::{MsrcReader, VolumeRegistry};
use crate::{Trace, TraceError};

/// Loads an AliCloud-format CSV file, keeping at most `limit` requests
/// (`None` = all).
///
/// # Errors
///
/// Returns the I/O error from opening/reading the file or the first
/// parse error (annotated with its line number).
///
/// # Example
///
/// ```no_run
/// let trace = cbs_trace::codec::files::load_alicloud(
///     "alibaba_block_traces_2020/io_traces.csv",
///     Some(1_000_000),
/// )?;
/// println!("{} volumes", trace.volume_count());
/// # Ok::<(), cbs_trace::TraceError>(())
/// ```
pub fn load_alicloud<P: AsRef<Path>>(path: P, limit: Option<usize>) -> Result<Trace, TraceError> {
    let file = File::open(path).map_err(TraceError::Io)?;
    let reader = AliCloudReader::new(BufReader::new(file));
    let mut requests = Vec::new();
    for record in reader {
        requests.push(record?);
        if limit.is_some_and(|cap| requests.len() >= cap) {
            break;
        }
    }
    Ok(Trace::from_requests(requests))
}

/// Loads every `*.csv` file under `dir` in the MSRC format, sharing one
/// volume registry so `hostname_disk` names map to stable ids across
/// files. Files are visited in sorted name order (determinism).
///
/// Returns the trace and the registry.
///
/// # Errors
///
/// Returns the first I/O or parse error encountered.
pub fn load_msrc_dir<P: AsRef<Path>>(
    dir: P,
    limit: Option<usize>,
) -> Result<(Trace, VolumeRegistry), TraceError> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(TraceError::Io)?
        .collect::<Result<Vec<_>, _>>()
        .map_err(TraceError::Io)?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "csv"))
        .collect();
    paths.sort();

    let mut registry = VolumeRegistry::new();
    let mut requests = Vec::new();
    'files: for path in paths {
        let file = File::open(&path).map_err(TraceError::Io)?;
        let mut reader = MsrcReader::with_registry(BufReader::new(file), registry);
        for record in &mut reader {
            requests.push(record?.into_request());
            if limit.is_some_and(|cap| requests.len() >= cap) {
                registry = reader.into_registry();
                break 'files;
            }
        }
        registry = reader.into_registry();
    }
    Ok((Trace::from_requests(requests), registry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::alicloud::AliCloudWriter;
    use crate::codec::msrc::MsrcWriter;
    use crate::{IoRequest, OpKind, TimeDelta, Timestamp, VolumeId};
    use std::io::Write as _;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cbs_files_test_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn req(v: u32, us: u64) -> IoRequest {
        IoRequest::new(
            VolumeId::new(v),
            OpKind::Write,
            u64::from(v) * 4096,
            4096,
            Timestamp::from_micros(us),
        )
    }

    #[test]
    fn alicloud_file_roundtrip_with_limit() {
        let dir = tmp("ali");
        let path = dir.join("trace.csv");
        {
            let mut w = AliCloudWriter::new(std::io::BufWriter::new(File::create(&path).unwrap()));
            for i in 0..100 {
                w.write_request(&req(i % 4, u64::from(i) * 10)).unwrap();
            }
            w.into_inner().unwrap();
        }
        let full = load_alicloud(&path, None).unwrap();
        assert_eq!(full.request_count(), 100);
        assert_eq!(full.volume_count(), 4);
        let capped = load_alicloud(&path, Some(10)).unwrap();
        assert_eq!(capped.request_count(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn alicloud_missing_file_is_io_error() {
        let err = load_alicloud("/nonexistent/cbs/trace.csv", None).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
    }

    #[test]
    fn alicloud_bad_row_reports_line() {
        let dir = tmp("ali_bad");
        let path = dir.join("trace.csv");
        std::fs::write(&path, "419,W,0,4096,10\nnot a row\n").unwrap();
        let err = load_alicloud(&path, None).unwrap_err();
        assert_eq!(err.line(), Some(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn msrc_dir_shares_registry_across_files() {
        let dir = tmp("msrc");
        for (file, host) in [("a.csv", "src1"), ("b.csv", "hm")] {
            let mut w = MsrcWriter::new(std::io::BufWriter::new(
                File::create(dir.join(file)).unwrap(),
            ));
            for i in 0..5u64 {
                w.write_record(&req(0, i * 7), host, 0, TimeDelta::ZERO)
                    .unwrap();
                // `src1` also appears in file b, testing id stability
                w.write_record(&req(0, i * 7 + 1), "src1", 1, TimeDelta::ZERO)
                    .unwrap();
            }
            w.into_inner().unwrap();
        }
        // a stray non-csv file must be ignored
        let mut other = File::create(dir.join("README.txt")).unwrap();
        writeln!(other, "not a trace").unwrap();

        let (trace, registry) = load_msrc_dir(&dir, None).unwrap();
        assert_eq!(trace.request_count(), 20);
        // volumes: src1_0 (file a), src1_1 (both files), hm_0 (file b)
        assert_eq!(registry.len(), 3);
        assert!(registry.lookup("src1_1").is_some());
        assert!(registry.lookup("hm_0").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn msrc_dir_limit_stops_early() {
        let dir = tmp("msrc_cap");
        let mut w = MsrcWriter::new(std::io::BufWriter::new(
            File::create(dir.join("a.csv")).unwrap(),
        ));
        for i in 0..50u64 {
            w.write_record(&req(0, i), "host", 0, TimeDelta::ZERO)
                .unwrap();
        }
        w.into_inner().unwrap();
        let (trace, _) = load_msrc_dir(&dir, Some(7)).unwrap();
        assert_eq!(trace.request_count(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
