//! Chunked parallel trace decoding.
//!
//! [`ParallelDecoder`] splits an input stream on newline boundaries into
//! large chunks, parses the chunks on worker threads with the byte-slice
//! fast-path parsers ([`alicloud::parse_record_bytes`],
//! [`msrc::parse_record_bytes`]), and re-emits decoded batches **in
//! input order** through a caller-supplied sink. The pipeline is
//!
//! ```text
//! feeder thread          N worker threads            calling thread
//! ┌──────────────┐  work  ┌──────────────┐  results  ┌─────────────┐
//! │ read blocks, │ ─────► │ parse chunk  │ ────────► │ reorder by  │
//! │ cut at '\n'  │ (seq,  │ (bytes → T)  │ (seq, out)│ seq, remap, │
//! │ boundaries   │ bytes) │              │           │ sink(batch) │
//! └──────────────┘        └──────────────┘           └─────────────┘
//! ```
//!
//! All channels are bounded, so peak memory is
//! `O(threads × chunk_size)` regardless of input length, and a slow sink
//! backpressures the whole pipeline.
//!
//! Error semantics match the sequential readers exactly: every record on
//! a line before the first malformed line is delivered to the sink, then
//! decoding stops and the error is returned carrying the one-based line
//! number of the offending row. I/O errors from the underlying reader
//! surface after all complete chunks read before the failure have been
//! decoded and delivered.
//!
//! MSRC volume identity is kept deterministic: workers intern
//! `hostname_disk` names into chunk-local registries, and the in-order
//! consumer remaps them into the shared global [`VolumeRegistry`], so
//! ids are assigned in first-appearance input order — byte-identical to
//! a sequential read.

use std::collections::BTreeMap;
use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Mutex;

use cbs_obs::{Counter, Gauge, Registry};

use crate::error::{ParseRecordError, TraceError};
use crate::{IoRequest, RequestBatch};

use super::msrc::{MsrcRecord, VolumeRegistry};
use super::{alicloud, msrc, trim_ascii};

/// Default chunk size handed to each worker (1 MiB of input text).
pub const DEFAULT_CHUNK_SIZE: usize = 1 << 20;

/// Counters describing one decode run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Records delivered to the sink.
    pub records: u64,
    /// Input lines consumed (blank lines and the MSRC header included).
    pub lines: u64,
    /// Input bytes consumed.
    pub bytes: u64,
    /// Chunks dispatched to workers.
    pub chunks: u64,
}

/// Chunked, multi-threaded decoder for the supported CSV dialects.
///
/// Construction is cheap; the decoder holds only configuration. Threads
/// are scoped per call — nothing outlives a `decode_*` invocation.
///
/// # Example
///
/// ```
/// use cbs_trace::codec::parallel::ParallelDecoder;
///
/// let text = "419,W,0,4096,10\n725,R,4096,512,20\n";
/// let decoder = ParallelDecoder::new().with_threads(2);
/// let reqs = decoder.decode_alicloud_slice(text.as_bytes()).unwrap();
/// assert_eq!(reqs.len(), 2);
/// assert_eq!(reqs[0].volume().get(), 419); // input order is preserved
/// ```
#[derive(Debug, Clone)]
pub struct ParallelDecoder {
    threads: usize,
    chunk_size: usize,
    metrics: Option<DecodeMetrics>,
}

/// Registry handles updated per consumed chunk (see
/// [`ParallelDecoder::with_registry`]).
#[derive(Debug, Clone)]
struct DecodeMetrics {
    records: Counter,
    lines: Counter,
    bytes: Counter,
    chunks: Counter,
    malformed_line: Gauge,
}

impl DecodeMetrics {
    fn new(registry: &Registry) -> Self {
        DecodeMetrics {
            records: registry.counter("decode.records"),
            lines: registry.counter("decode.lines"),
            bytes: registry.counter("decode.bytes"),
            chunks: registry.counter("decode.chunks"),
            malformed_line: registry.gauge("decode.malformed_line"),
        }
    }

    /// One in-order chunk reached the sink.
    fn on_chunk(&self, bytes: u64, records: u64, lines: u64) {
        self.chunks.inc();
        self.bytes.add(bytes);
        self.records.add(records);
        self.lines.add(lines);
    }

    /// Decoding stopped at a malformed row (one-based line number).
    fn on_malformed(&self, line: u64) {
        self.malformed_line.set(line);
    }
}

impl Default for ParallelDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ParallelDecoder {
    /// Creates a decoder using every available core and the default
    /// chunk size.
    pub fn new() -> Self {
        ParallelDecoder {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            chunk_size: DEFAULT_CHUNK_SIZE,
            metrics: None,
        }
    }

    /// Publishes decode metrics into `registry`: live `decode.records`,
    /// `decode.lines`, `decode.bytes`, and `decode.chunks` counters
    /// (mirroring the final [`DecodeStats`], but readable from another
    /// thread mid-run), plus a `decode.malformed_line` gauge holding the
    /// one-based line number that stopped a decode (`0` = none).
    /// Updates happen once per in-order chunk (~1 MiB of input), so the
    /// cost is unmeasurable.
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.metrics = Some(DecodeMetrics::new(registry));
        self
    }

    /// Sets the number of parser worker threads (min 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the target chunk size in bytes (min 4 KiB). Lines longer
    /// than the chunk size are still handled — a chunk grows until it
    /// contains at least one newline.
    #[must_use]
    pub fn with_chunk_size(mut self, bytes: usize) -> Self {
        self.chunk_size = bytes.max(4096);
        self
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Decodes AliCloud CSV from `input`, delivering batches of parsed
    /// requests to `sink` in input order.
    ///
    /// # Errors
    ///
    /// The first parse error in input order (records on earlier lines
    /// are still delivered first), or the reader's I/O error.
    pub fn decode_alicloud<R, F>(&self, input: R, mut sink: F) -> Result<DecodeStats, TraceError>
    where
        R: Read + Send,
        F: FnMut(Vec<IoRequest>),
    {
        let mut stats = DecodeStats::default();
        let mut lines_before: u64 = 0;
        run_pipeline(
            self.threads,
            ReaderChunks::new(input, self.chunk_size),
            |chunk, _seq| parse_alicloud_chunk(chunk),
            |out: AliChunkOut| {
                stats.chunks += 1;
                stats.bytes += out.bytes;
                let records = out.records.len() as u64;
                stats.records += records;
                if !out.records.is_empty() {
                    sink(out.records);
                }
                let base = lines_before;
                lines_before += out.lines;
                let consumed_lines = out.error.as_ref().map_or(out.lines, |(rel, _)| *rel);
                stats.lines += consumed_lines;
                if let Some(m) = &self.metrics {
                    m.on_chunk(out.bytes, records, consumed_lines);
                }
                match out.error {
                    None => Ok(()),
                    Some((rel, e)) => {
                        if let Some(m) = &self.metrics {
                            m.on_malformed(base + rel);
                        }
                        Err(TraceError::parse(base + rel, e))
                    }
                }
            },
        )?;
        Ok(stats)
    }

    /// Convenience wrapper: decodes an in-memory AliCloud CSV buffer
    /// into a flat `Vec` (still chunked and parsed in parallel).
    ///
    /// # Errors
    ///
    /// See [`ParallelDecoder::decode_alicloud`].
    pub fn decode_alicloud_slice(&self, bytes: &[u8]) -> Result<Vec<IoRequest>, TraceError> {
        let mut out = Vec::new();
        self.decode_alicloud(bytes, |batch| out.extend(batch))?;
        Ok(out)
    }

    /// Like [`decode_alicloud`](Self::decode_alicloud) but delivers
    /// columnar [`RequestBatch`]es: workers parse straight into
    /// struct-of-arrays columns, so the batches can be handed to the
    /// batched analysis kernels or a CBT writer without transposing.
    ///
    /// # Errors
    ///
    /// See [`ParallelDecoder::decode_alicloud`].
    pub fn decode_alicloud_batches<R, F>(
        &self,
        input: R,
        mut sink: F,
    ) -> Result<DecodeStats, TraceError>
    where
        R: Read + Send,
        F: FnMut(RequestBatch),
    {
        let mut stats = DecodeStats::default();
        let mut lines_before: u64 = 0;
        run_pipeline(
            self.threads,
            ReaderChunks::new(input, self.chunk_size),
            |chunk, _seq| parse_alicloud_chunk_soa(chunk),
            |out: AliBatchOut| {
                stats.chunks += 1;
                stats.bytes += out.bytes;
                let records = out.records.len() as u64;
                stats.records += records;
                if !out.records.is_empty() {
                    sink(out.records);
                }
                let base = lines_before;
                lines_before += out.lines;
                let consumed_lines = out.error.as_ref().map_or(out.lines, |(rel, _)| *rel);
                stats.lines += consumed_lines;
                if let Some(m) = &self.metrics {
                    m.on_chunk(out.bytes, records, consumed_lines);
                }
                match out.error {
                    None => Ok(()),
                    Some((rel, e)) => {
                        if let Some(m) = &self.metrics {
                            m.on_malformed(base + rel);
                        }
                        Err(TraceError::parse(base + rel, e))
                    }
                }
            },
        )?;
        Ok(stats)
    }

    /// Decodes MSRC CSV from `input`, delivering batches of parsed
    /// records to `sink` in input order. Volume ids are resolved through
    /// `registry` in first-appearance input order, exactly as a
    /// sequential [`super::msrc::MsrcReader`] would assign them.
    ///
    /// # Errors
    ///
    /// The first parse error in input order (records on earlier lines
    /// are still delivered first), or the reader's I/O error.
    pub fn decode_msrc<R, F>(
        &self,
        input: R,
        registry: &mut VolumeRegistry,
        mut sink: F,
    ) -> Result<DecodeStats, TraceError>
    where
        R: Read + Send,
        F: FnMut(Vec<MsrcRecord>),
    {
        let mut stats = DecodeStats::default();
        let mut lines_before: u64 = 0;
        run_pipeline(
            self.threads,
            ReaderChunks::new(input, self.chunk_size),
            |chunk, seq| parse_msrc_chunk(chunk, seq == 0),
            |mut out: MsrcChunkOut| {
                stats.chunks += 1;
                stats.bytes += out.bytes;
                let records = out.records.len() as u64;
                stats.records += records;
                // Chunk-local id k maps to the global id of the k-th
                // first-seen name in this chunk.
                let global: Vec<_> = out
                    .names
                    .iter()
                    .map(|name| registry.resolve_name(name))
                    .collect();
                for rec in &mut out.records {
                    rec.remap_volume(global[rec.request().volume().as_usize()]);
                }
                if !out.records.is_empty() {
                    sink(out.records);
                }
                let base = lines_before;
                lines_before += out.lines;
                let consumed_lines = out.error.as_ref().map_or(out.lines, |(rel, _)| *rel);
                stats.lines += consumed_lines;
                if let Some(m) = &self.metrics {
                    m.on_chunk(out.bytes, records, consumed_lines);
                }
                match out.error {
                    None => Ok(()),
                    Some((rel, e)) => {
                        if let Some(m) = &self.metrics {
                            m.on_malformed(base + rel);
                        }
                        Err(TraceError::parse(base + rel, e))
                    }
                }
            },
        )?;
        Ok(stats)
    }

    /// Like [`decode_msrc`](Self::decode_msrc) but delivers columnar
    /// [`RequestBatch`]es (request fields only — the MSRC response-time
    /// column is dropped, exactly as the CBT trace format does).
    /// Volume ids are resolved through `registry` in first-appearance
    /// input order, identical to the record-level decoder.
    ///
    /// # Errors
    ///
    /// See [`ParallelDecoder::decode_msrc`].
    pub fn decode_msrc_batches<R, F>(
        &self,
        input: R,
        registry: &mut VolumeRegistry,
        mut sink: F,
    ) -> Result<DecodeStats, TraceError>
    where
        R: Read + Send,
        F: FnMut(RequestBatch),
    {
        let mut stats = DecodeStats::default();
        let mut lines_before: u64 = 0;
        run_pipeline(
            self.threads,
            ReaderChunks::new(input, self.chunk_size),
            |chunk, seq| parse_msrc_chunk_soa(chunk, seq == 0),
            |mut out: MsrcBatchOut| {
                stats.chunks += 1;
                stats.bytes += out.bytes;
                let records = out.records.len() as u64;
                stats.records += records;
                let global: Vec<_> = out
                    .names
                    .iter()
                    .map(|name| registry.resolve_name(name))
                    .collect();
                out.records.remap_volumes(|local| global[local.as_usize()]);
                if !out.records.is_empty() {
                    sink(out.records);
                }
                let base = lines_before;
                lines_before += out.lines;
                let consumed_lines = out.error.as_ref().map_or(out.lines, |(rel, _)| *rel);
                stats.lines += consumed_lines;
                if let Some(m) = &self.metrics {
                    m.on_chunk(out.bytes, records, consumed_lines);
                }
                match out.error {
                    None => Ok(()),
                    Some((rel, e)) => {
                        if let Some(m) = &self.metrics {
                            m.on_malformed(base + rel);
                        }
                        Err(TraceError::parse(base + rel, e))
                    }
                }
            },
        )?;
        Ok(stats)
    }

    /// Convenience wrapper: decodes an in-memory MSRC CSV buffer into a
    /// flat `Vec` plus the volume registry.
    ///
    /// # Errors
    ///
    /// See [`ParallelDecoder::decode_msrc`].
    pub fn decode_msrc_slice(
        &self,
        bytes: &[u8],
    ) -> Result<(Vec<MsrcRecord>, VolumeRegistry), TraceError> {
        let mut registry = VolumeRegistry::new();
        let mut out = Vec::new();
        self.decode_msrc(bytes, &mut registry, |batch| out.extend(batch))?;
        Ok((out, registry))
    }
}

// --- chunk parsing --------------------------------------------------------

struct AliChunkOut {
    records: Vec<IoRequest>,
    lines: u64,
    bytes: u64,
    error: Option<(u64, ParseRecordError)>,
}

fn parse_alicloud_chunk(chunk: &[u8]) -> AliChunkOut {
    let mut out = AliChunkOut {
        records: Vec::new(),
        lines: 0,
        bytes: chunk.len() as u64,
        error: None,
    };
    for line in lines_of(chunk) {
        out.lines += 1;
        let line = trim_ascii(line);
        if line.is_empty() {
            continue;
        }
        match alicloud::parse_record_bytes(line) {
            Ok(req) => out.records.push(req),
            Err(e) => {
                out.error = Some((out.lines, e));
                break;
            }
        }
    }
    out
}

struct AliBatchOut {
    records: RequestBatch,
    lines: u64,
    bytes: u64,
    error: Option<(u64, ParseRecordError)>,
}

fn parse_alicloud_chunk_soa(chunk: &[u8]) -> AliBatchOut {
    let mut out = AliBatchOut {
        records: RequestBatch::new(),
        lines: 0,
        bytes: chunk.len() as u64,
        error: None,
    };
    for line in lines_of(chunk) {
        out.lines += 1;
        let line = trim_ascii(line);
        if line.is_empty() {
            continue;
        }
        match alicloud::parse_record_bytes(line) {
            Ok(req) => out.records.push(&req),
            Err(e) => {
                out.error = Some((out.lines, e));
                break;
            }
        }
    }
    out
}

struct MsrcChunkOut {
    records: Vec<MsrcRecord>,
    /// Chunk-local registry names in local-id order.
    names: Vec<String>,
    lines: u64,
    bytes: u64,
    error: Option<(u64, ParseRecordError)>,
}

fn parse_msrc_chunk(chunk: &[u8], is_first_chunk: bool) -> MsrcChunkOut {
    let mut local = VolumeRegistry::new();
    let mut out = MsrcChunkOut {
        records: Vec::new(),
        names: Vec::new(),
        lines: 0,
        bytes: chunk.len() as u64,
        error: None,
    };
    for line in lines_of(chunk) {
        out.lines += 1;
        let line = trim_ascii(line);
        if line.is_empty() {
            continue;
        }
        if is_first_chunk && out.lines == 1 && line.starts_with(b"Timestamp,") {
            continue; // header
        }
        match msrc::parse_record_bytes(line, &mut local) {
            Ok(rec) => out.records.push(rec),
            Err(e) => {
                out.error = Some((out.lines, e));
                break;
            }
        }
    }
    out.names = local.iter().map(|(_, name)| name.to_owned()).collect();
    out
}

struct MsrcBatchOut {
    /// Columnar records whose volume ids are **chunk-local**; the
    /// in-order consumer remaps them to global registry ids.
    records: RequestBatch,
    /// Chunk-local registry names in local-id order.
    names: Vec<String>,
    lines: u64,
    bytes: u64,
    error: Option<(u64, ParseRecordError)>,
}

fn parse_msrc_chunk_soa(chunk: &[u8], is_first_chunk: bool) -> MsrcBatchOut {
    let mut local = VolumeRegistry::new();
    let mut out = MsrcBatchOut {
        records: RequestBatch::new(),
        names: Vec::new(),
        lines: 0,
        bytes: chunk.len() as u64,
        error: None,
    };
    for line in lines_of(chunk) {
        out.lines += 1;
        let line = trim_ascii(line);
        if line.is_empty() {
            continue;
        }
        if is_first_chunk && out.lines == 1 && line.starts_with(b"Timestamp,") {
            continue; // header
        }
        match msrc::parse_record_bytes(line, &mut local) {
            Ok(rec) => out.records.push(rec.request()),
            Err(e) => {
                out.error = Some((out.lines, e));
                break;
            }
        }
    }
    out.names = local.iter().map(|(_, name)| name.to_owned()).collect();
    out
}

/// Iterates the lines of a chunk: pieces between `\n` separators, with
/// a trailing empty piece after a final newline not counted as a line
/// (mirroring `BufRead::lines`).
fn lines_of(chunk: &[u8]) -> impl Iterator<Item = &[u8]> {
    let body = match chunk.last() {
        Some(b'\n') => &chunk[..chunk.len() - 1],
        _ => chunk,
    };
    // An empty chunk has no lines; `split` would still yield one empty
    // piece, so gate the iterator on chunk emptiness (`b"\n"` is one
    // empty line, `b""` is none).
    let mut iter = (!chunk.is_empty()).then(|| body.split(|&b| b == b'\n'));
    std::iter::from_fn(move || iter.as_mut()?.next())
}

// --- pipeline engine ------------------------------------------------------

/// Reads `R` in `chunk_size` blocks and yields chunks that end on a
/// newline boundary (except possibly the last).
struct ReaderChunks<R> {
    input: R,
    chunk_size: usize,
    carry: Vec<u8>,
    done: bool,
}

impl<R: Read> ReaderChunks<R> {
    fn new(input: R, chunk_size: usize) -> Self {
        ReaderChunks {
            input,
            chunk_size,
            carry: Vec::new(),
            done: false,
        }
    }

    /// Reads until `buf` grew by `want` bytes or EOF; returns bytes read.
    fn read_block(&mut self, buf: &mut Vec<u8>, want: usize) -> std::io::Result<usize> {
        let start = buf.len();
        buf.resize(start + want, 0);
        let mut filled = 0;
        while filled < want {
            match self.input.read(&mut buf[start + filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    buf.truncate(start + filled);
                    return Err(e);
                }
            }
        }
        buf.truncate(start + filled);
        Ok(filled)
    }
}

impl<R: Read> Iterator for ReaderChunks<R> {
    type Item = std::io::Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut buf = std::mem::take(&mut self.carry);
        loop {
            match self.read_block(&mut buf, self.chunk_size) {
                Ok(0) => {
                    // EOF: the remainder (no trailing newline) is the
                    // final chunk.
                    self.done = true;
                    return if buf.is_empty() { None } else { Some(Ok(buf)) };
                }
                Ok(_) => match buf.iter().rposition(|&b| b == b'\n') {
                    Some(pos) => {
                        self.carry = buf.split_off(pos + 1);
                        return Some(Ok(buf));
                    }
                    // No newline yet (line longer than chunk_size):
                    // keep growing the block.
                    None => continue,
                },
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Runs the feeder → workers → in-order consumer pipeline over `chunks`.
///
/// `worker` parses one chunk (called on worker threads); `consume` sees
/// each worker output exactly once, in input order, on the calling
/// thread. A `consume` error aborts the pipeline promptly: the feeder
/// stops producing, in-flight results are drained and discarded, and
/// the first in-order error is returned.
fn run_pipeline<C, I, P, W, F>(
    threads: usize,
    chunks: I,
    worker: W,
    mut consume: F,
) -> Result<(), TraceError>
where
    C: AsRef<[u8]> + Send,
    I: Iterator<Item = std::io::Result<C>> + Send,
    P: Send,
    W: Fn(&[u8], u64) -> P + Sync,
    F: FnMut(P) -> Result<(), TraceError>,
{
    let abort = AtomicBool::new(false);
    let (work_tx, work_rx) = sync_channel::<(u64, C)>(threads * 2);
    let work_rx = Mutex::new(work_rx);
    let (result_tx, result_rx) = sync_channel::<(u64, P)>(threads * 2);

    std::thread::scope(|scope| {
        // Feeder: pull chunks, stamp sequence numbers, stop on abort.
        let feeder = scope.spawn({
            let abort = &abort;
            move || -> Option<std::io::Error> {
                let mut chunks = chunks;
                let mut seq = 0u64;
                loop {
                    // ORDERING: abort is an advisory stop flag; Relaxed
                    // suffices because the error itself travels through
                    // `failure`/join, not through this load, and a late
                    // observation only feeds a few extra chunks.
                    if abort.load(Ordering::Relaxed) {
                        return None;
                    }
                    match chunks.next() {
                        Some(Ok(chunk)) => {
                            if work_tx.send((seq, chunk)).is_err() {
                                return None;
                            }
                            seq += 1;
                        }
                        Some(Err(e)) => return Some(e),
                        None => return None,
                    }
                }
                // work_tx drops here, closing the work channel.
            }
        });

        for _ in 0..threads {
            let result_tx = result_tx.clone();
            let work_rx = &work_rx;
            let worker = &worker;
            scope.spawn(move || {
                loop {
                    // Hold the lock only to dequeue; parsing runs unlocked.
                    // A poisoned lock means a sibling worker panicked:
                    // stop pulling work and let the join surface it.
                    let Ok(guard) = work_rx.lock() else { break };
                    let item = guard.recv();
                    drop(guard);
                    let Ok((seq, chunk)) = item else { break };
                    let out = worker(chunk.as_ref(), seq);
                    if result_tx.send((seq, out)).is_err() {
                        break;
                    }
                }
            });
        }
        // The consumer must observe channel close when workers finish.
        drop(result_tx);

        // Consumer (this thread): restore input order, feed the sink.
        let mut failure: Option<TraceError> = None;
        let mut pending: BTreeMap<u64, P> = BTreeMap::new();
        let mut next_seq = 0u64;
        for (seq, out) in result_rx {
            if failure.is_some() {
                continue; // drain so the pipeline can unwind
            }
            pending.insert(seq, out);
            while let Some(out) = pending.remove(&next_seq) {
                next_seq += 1;
                if let Err(e) = consume(out) {
                    // ORDERING: Relaxed store pairs with the feeder's
                    // advisory Relaxed load above; shutdown correctness
                    // rests on channel close + join, not this flag.
                    abort.store(true, Ordering::Relaxed);
                    pending.clear();
                    failure = Some(e);
                    break;
                }
            }
        }

        let io_failure = match feeder.join() {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        match (failure, io_failure) {
            // A parse error always precedes (in input order) anything
            // the feeder failed on later.
            (Some(e), _) => Err(e),
            (None, Some(io)) => Err(TraceError::Io(io)),
            (None, None) => Ok(()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::super::alicloud::{AliCloudReader, AliCloudWriter};
    use super::super::msrc::MsrcReader;
    use super::*;
    use crate::{OpKind, Timestamp, VolumeId};

    fn sample_csv(rows: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = AliCloudWriter::new(&mut buf);
        for i in 0..rows {
            let req = IoRequest::new(
                VolumeId::new((i % 13) as u32),
                if i % 3 == 0 {
                    OpKind::Read
                } else {
                    OpKind::Write
                },
                (i as u64 % 50) * 4096,
                4096 + (i as u32 % 4) * 512,
                Timestamp::from_micros(i as u64 * 100),
            );
            w.write_request(&req).unwrap();
        }
        buf
    }

    #[test]
    fn matches_sequential_reader() {
        let csv = sample_csv(10_000);
        let sequential: Vec<IoRequest> = AliCloudReader::new(&csv[..])
            .collect::<Result<_, _>>()
            .unwrap();
        for threads in [1, 2, 4] {
            let decoder = ParallelDecoder::new()
                .with_threads(threads)
                .with_chunk_size(4096);
            let parallel = decoder.decode_alicloud_slice(&csv).unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn batches_arrive_in_order_with_stats() {
        let csv = sample_csv(5_000);
        let decoder = ParallelDecoder::new().with_threads(4).with_chunk_size(4096);
        let mut collected = Vec::new();
        let stats = decoder
            .decode_alicloud(&csv[..], |batch| collected.extend(batch))
            .unwrap();
        assert_eq!(stats.records, 5_000);
        assert_eq!(stats.lines, 5_000);
        assert_eq!(stats.bytes, csv.len() as u64);
        assert!(stats.chunks > 1, "{stats:?}");
        let ts: Vec<_> = collected.iter().map(|r| r.ts()).collect();
        let mut sorted = ts.clone();
        sorted.sort();
        assert_eq!(ts, sorted, "input order preserved");
    }

    #[test]
    fn error_line_numbers_match_sequential() {
        let mut csv = sample_csv(1_000);
        // Corrupt one row in the middle.
        let text = String::from_utf8(csv.clone()).unwrap();
        let byte_of_line_500: usize = text.lines().take(499).map(|l| l.len() + 1).sum();
        csv.splice(byte_of_line_500..byte_of_line_500, *b"bogus,");

        let seq_err = AliCloudReader::new(&csv[..])
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        let decoder = ParallelDecoder::new().with_threads(4).with_chunk_size(4096);
        let mut delivered = 0usize;
        let par_err = decoder
            .decode_alicloud(&csv[..], |batch| delivered += batch.len())
            .unwrap_err();
        assert_eq!(par_err.line(), seq_err.line());
        assert_eq!(par_err.line(), Some(500));
        // Every record before the bad line was delivered.
        assert_eq!(delivered, 499);
    }

    #[test]
    fn blank_lines_and_missing_trailing_newline() {
        let text = "419,W,0,4096,10\n\n  \n725,R,4096,512,20";
        let decoder = ParallelDecoder::new().with_threads(2);
        let reqs = decoder.decode_alicloud_slice(text.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].volume(), VolumeId::new(725));
    }

    #[test]
    fn empty_input() {
        let decoder = ParallelDecoder::new();
        let stats = decoder.decode_alicloud(&b""[..], |_| {}).unwrap();
        assert_eq!(stats, DecodeStats::default());
    }

    #[test]
    fn long_lines_grow_chunks() {
        // A comment-free format has no long lines, but a chunk smaller
        // than one line must still work.
        let csv = sample_csv(100);
        let decoder = ParallelDecoder::new().with_threads(2).with_chunk_size(4096);
        // with_chunk_size clamps at 4 KiB; craft a single line longer
        // than that.
        let mut big = vec![b' '; 8192];
        big.extend_from_slice(b"419,W,0,4096,10\n");
        big.extend_from_slice(&csv);
        let reqs = decoder.decode_alicloud_slice(&big).unwrap();
        assert_eq!(reqs.len(), 101);
    }

    #[test]
    fn msrc_ids_match_sequential() {
        let mut buf = String::new();
        buf.push_str("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n");
        let hosts = ["src1", "hm", "proj", "web", "usr"];
        for i in 0..5_000u64 {
            let host = hosts[(i / 7 % 5) as usize];
            let disk = i % 3;
            buf.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                128_166_372_003_061_629u64 + i * 10_000,
                host,
                disk,
                if i % 4 == 0 { "Read" } else { "Write" },
                i * 4096,
                4096,
                1000 + i
            ));
        }
        let seq_reader = MsrcReader::new(buf.as_bytes());
        let mut seq_records = Vec::new();
        let mut seq_reader = seq_reader;
        for item in &mut seq_reader {
            seq_records.push(item.unwrap());
        }
        let seq_registry = seq_reader.into_registry();

        let decoder = ParallelDecoder::new().with_threads(4).with_chunk_size(4096);
        let (par_records, par_registry) = decoder.decode_msrc_slice(buf.as_bytes()).unwrap();
        assert_eq!(par_records, seq_records);
        assert_eq!(par_registry.len(), seq_registry.len());
        for (id, name) in seq_registry.iter() {
            assert_eq!(par_registry.name_of(id), Some(name));
        }
    }

    #[test]
    fn alicloud_batches_match_record_decode() {
        let csv = sample_csv(10_000);
        let sequential: Vec<IoRequest> = AliCloudReader::new(&csv[..])
            .collect::<Result<_, _>>()
            .unwrap();
        let decoder = ParallelDecoder::new().with_threads(3).with_chunk_size(4096);
        let mut columnar = Vec::new();
        let stats = decoder
            .decode_alicloud_batches(&csv[..], |batch| columnar.extend(batch.iter()))
            .unwrap();
        assert_eq!(columnar, sequential);
        assert_eq!(stats.records, 10_000);
    }

    #[test]
    fn msrc_batches_match_record_decode() {
        let mut buf = String::new();
        buf.push_str("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n");
        let hosts = ["src1", "hm", "proj"];
        for i in 0..4_000u64 {
            buf.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                128_166_372_003_061_629u64 + i * 10_000,
                hosts[(i / 11 % 3) as usize],
                i % 2,
                if i % 4 == 0 { "Read" } else { "Write" },
                i * 4096,
                4096,
                1000 + i
            ));
        }
        let decoder = ParallelDecoder::new().with_threads(4).with_chunk_size(4096);
        let (records, rec_registry) = decoder.decode_msrc_slice(buf.as_bytes()).unwrap();
        let expected: Vec<IoRequest> = records.iter().map(|r| *r.request()).collect();

        let mut batch_registry = VolumeRegistry::new();
        let mut columnar = Vec::new();
        decoder
            .decode_msrc_batches(buf.as_bytes(), &mut batch_registry, |batch| {
                columnar.extend(batch.iter())
            })
            .unwrap();
        assert_eq!(columnar, expected);
        assert_eq!(batch_registry.len(), rec_registry.len());
        for (id, name) in rec_registry.iter() {
            assert_eq!(batch_registry.name_of(id), Some(name));
        }
    }

    #[test]
    fn io_error_surfaces_after_complete_chunks() {
        struct FailAfter {
            data: Vec<u8>,
            pos: usize,
        }
        impl Read for FailAfter {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos >= self.data.len() {
                    return Err(std::io::Error::other("disk on fire"));
                }
                let n = buf.len().min(self.data.len() - self.pos);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let csv = sample_csv(2_000);
        let total = AliCloudReader::new(&csv[..]).count();
        let decoder = ParallelDecoder::new().with_threads(2).with_chunk_size(4096);
        let mut delivered = 0usize;
        let err = decoder
            .decode_alicloud(FailAfter { data: csv, pos: 0 }, |batch| {
                delivered += batch.len()
            })
            .unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
        // At most the final partial block (plus carry) is lost.
        assert!(delivered >= total - 250, "{delivered} of {total}");
        assert!(delivered > 0);
    }

    #[test]
    fn registry_mirrors_decode_stats() {
        let csv = sample_csv(5_000);
        let registry = cbs_obs::Registry::new();
        let decoder = ParallelDecoder::new()
            .with_threads(4)
            .with_chunk_size(4096)
            .with_registry(&registry);
        let stats = decoder.decode_alicloud(&csv[..], |_| {}).unwrap();
        assert_eq!(registry.counter("decode.records").get(), stats.records);
        assert_eq!(registry.counter("decode.lines").get(), stats.lines);
        assert_eq!(registry.counter("decode.bytes").get(), stats.bytes);
        assert_eq!(registry.counter("decode.chunks").get(), stats.chunks);
        assert_eq!(registry.gauge("decode.malformed_line").get(), 0);
    }

    #[test]
    fn registry_records_malformed_line() {
        let mut csv = sample_csv(1_000);
        let text = String::from_utf8(csv.clone()).unwrap();
        let byte_of_line_500: usize = text.lines().take(499).map(|l| l.len() + 1).sum();
        csv.splice(byte_of_line_500..byte_of_line_500, *b"bogus,");
        let registry = cbs_obs::Registry::new();
        let decoder = ParallelDecoder::new()
            .with_threads(4)
            .with_chunk_size(4096)
            .with_registry(&registry);
        let err = decoder.decode_alicloud(&csv[..], |_| {}).unwrap_err();
        assert_eq!(err.line(), Some(500));
        assert_eq!(registry.gauge("decode.malformed_line").get(), 500);
        // Only clean lines before the failure are counted.
        assert_eq!(registry.counter("decode.records").get(), 499);
    }

    #[test]
    fn lines_of_counts_like_bufread_lines() {
        let cases: [(&[u8], usize); 6] = [
            (b"", 0),
            (b"\n", 1),
            (b"a", 1),
            (b"a\n", 1),
            (b"a\n\nb\n", 3),
            (b"a\nb", 2),
        ];
        for (input, want) in cases {
            assert_eq!(lines_of(input).count(), want, "{input:?}");
            assert_eq!(
                std::io::BufRead::lines(input).count(),
                want,
                "BufRead {input:?}"
            );
        }
    }
}
