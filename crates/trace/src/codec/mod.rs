//! On-disk trace codecs.
//!
//! Two CSV dialects are supported, one per trace family analyzed in the
//! paper:
//!
//! * [`alicloud`] — the format of the Alibaba `block-traces` release:
//!   `device_id,opcode,offset,length,timestamp`, with `opcode` in
//!   `{R, W}` and `timestamp` in microseconds.
//! * [`msrc`] — the format of the MSR Cambridge release on SNIA:
//!   `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`, with
//!   `Timestamp`/`ResponseTime` in Windows 100 ns ticks and `Type` in
//!   `{Read, Write}`.
//!
//! Both readers are plain-`Iterator` line parsers over any
//! [`std::io::BufRead`] source, yield `Result<_, TraceError>` items with
//! one-based line numbers on failure, skip blank lines, and never
//! allocate per record on the happy path (MSRC hostname interning aside).

pub mod alicloud;
pub mod files;
pub mod msrc;

use crate::error::ParseRecordError;

/// Splits `line` on commas and returns field `index`, or a
/// `MissingField` error naming it.
pub(crate) fn field<'a>(
    fields: &mut std::str::Split<'a, char>,
    index: usize,
    name: &'static str,
) -> Result<&'a str, ParseRecordError> {
    fields
        .next()
        .map(str::trim)
        .ok_or(ParseRecordError::MissingField { index, name })
}

/// Parses an unsigned integer field.
pub(crate) fn parse_u64(text: &str, name: &'static str) -> Result<u64, ParseRecordError> {
    text.parse::<u64>()
        .map_err(|_| ParseRecordError::InvalidNumber {
            name,
            text: text.to_owned(),
        })
}

/// Parses a request-length field into `u32`, reporting overflow as
/// `OutOfRange` (the real corpora never exceed a few MiB per request).
pub(crate) fn parse_len(text: &str, name: &'static str) -> Result<u32, ParseRecordError> {
    let wide = parse_u64(text, name)?;
    u32::try_from(wide).map_err(|_| ParseRecordError::OutOfRange {
        name,
        text: text.to_owned(),
    })
}
