//! On-disk trace codecs.
//!
//! Two CSV dialects are supported, one per trace family analyzed in the
//! paper:
//!
//! * [`alicloud`] — the format of the Alibaba `block-traces` release:
//!   `device_id,opcode,offset,length,timestamp`, with `opcode` in
//!   `{R, W}` and `timestamp` in microseconds.
//! * [`msrc`] — the format of the MSR Cambridge release on SNIA:
//!   `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`, with
//!   `Timestamp`/`ResponseTime` in Windows 100 ns ticks and `Type` in
//!   `{Read, Write}`.
//!
//! Both readers are plain-`Iterator` line parsers over any
//! [`std::io::BufRead`] source, yield `Result<_, TraceError>` items with
//! one-based line numbers on failure, skip blank lines, and never
//! allocate per record on the happy path (MSRC hostname interning aside).
//!
//! In addition to the CSV dialects, [`cbt`] implements the **columnar
//! binary trace format**: a compact delta/varint-encoded representation
//! that a CSV corpus is converted to once (via `cbs-convert`) and then
//! re-ingested at a large multiple of CSV decode speed.

pub mod alicloud;
pub mod cbt;
pub mod files;
pub mod msrc;
pub mod parallel;

use crate::error::ParseRecordError;

/// Splits `line` on commas and returns field `index`, or a
/// `MissingField` error naming it.
pub(crate) fn field<'a>(
    fields: &mut std::str::Split<'a, char>,
    index: usize,
    name: &'static str,
) -> Result<&'a str, ParseRecordError> {
    fields
        .next()
        .map(str::trim)
        .ok_or(ParseRecordError::MissingField { index, name })
}

/// Parses an unsigned integer field.
pub(crate) fn parse_u64(text: &str, name: &'static str) -> Result<u64, ParseRecordError> {
    text.parse::<u64>()
        .map_err(|_| ParseRecordError::InvalidNumber {
            name,
            text: text.to_owned(),
        })
}

/// Parses a request-length field into `u32`, reporting overflow as
/// `OutOfRange` (the real corpora never exceed a few MiB per request).
pub(crate) fn parse_len(text: &str, name: &'static str) -> Result<u32, ParseRecordError> {
    let wide = parse_u64(text, name)?;
    u32::try_from(wide).map_err(|_| ParseRecordError::OutOfRange {
        name,
        text: text.to_owned(),
    })
}

// --- byte-slice fast path -------------------------------------------------
//
// The parallel decoder parses fields straight out of the input buffer,
// skipping the per-line `String` allocation and UTF-8 validation of the
// `str` path. Semantics match the `str` parsers for ASCII input (the
// only kind the corpora contain): fields are trimmed of ASCII
// whitespace, and error payloads carry the lossily-decoded field text.

/// Trims ASCII whitespace from both ends of a byte field.
pub(crate) fn trim_ascii(mut bytes: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = bytes {
        if first.is_ascii_whitespace() {
            bytes = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = bytes {
        if last.is_ascii_whitespace() {
            bytes = rest;
        } else {
            break;
        }
    }
    bytes
}

/// Splits off the next comma-separated field of `line`, trimmed, or a
/// `MissingField` error naming it.
pub(crate) fn field_bytes<'a>(
    fields: &mut std::slice::Split<'a, u8, impl FnMut(&u8) -> bool>,
    index: usize,
    name: &'static str,
) -> Result<&'a [u8], ParseRecordError> {
    fields
        .next()
        .map(trim_ascii)
        .ok_or(ParseRecordError::MissingField { index, name })
}

/// Parses an unsigned decimal integer directly from bytes.
pub(crate) fn parse_u64_bytes(bytes: &[u8], name: &'static str) -> Result<u64, ParseRecordError> {
    let invalid = || ParseRecordError::InvalidNumber {
        name,
        text: String::from_utf8_lossy(bytes).into_owned(),
    };
    // `str::parse::<u64>` accepts one leading `+`.
    let digits = match bytes {
        [b'+', rest @ ..] => rest,
        _ => bytes,
    };
    if digits.is_empty() || digits.len() > 20 {
        // 20 digits can overflow u64; `str::parse` rejects those too.
        return Err(invalid());
    }
    let mut value: u64 = 0;
    for &b in digits {
        let digit = b.wrapping_sub(b'0');
        if digit > 9 {
            return Err(invalid());
        }
        value = value
            .checked_mul(10)
            .and_then(|v| v.checked_add(u64::from(digit)))
            .ok_or_else(invalid)?;
    }
    Ok(value)
}

/// Byte-slice counterpart of [`parse_len`].
pub(crate) fn parse_len_bytes(bytes: &[u8], name: &'static str) -> Result<u32, ParseRecordError> {
    let wide = parse_u64_bytes(bytes, name)?;
    u32::try_from(wide).map_err(|_| ParseRecordError::OutOfRange {
        name,
        text: String::from_utf8_lossy(bytes).into_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trim_ascii_matches_str_trim() {
        for s in ["", " ", "a", " a ", "\t4096\r", "  1 2  "] {
            assert_eq!(trim_ascii(s.as_bytes()), s.trim().as_bytes(), "{s:?}");
        }
    }

    #[test]
    fn parse_u64_bytes_matches_str_parse() {
        for s in [
            "0",
            "1",
            "4096",
            "18446744073709551615",
            "1577808000000046",
            "+1",
        ] {
            assert_eq!(
                parse_u64_bytes(s.as_bytes(), "f").unwrap(),
                s.parse::<u64>().unwrap()
            );
        }
        for s in [
            "",
            "abc",
            "-1",
            "1.5",
            "18446744073709551616",
            "1e9",
            "+",
            "++1",
        ] {
            assert!(parse_u64_bytes(s.as_bytes(), "f").is_err(), "{s:?}");
            assert!(s.parse::<u64>().is_err(), "{s:?}");
        }
    }

    #[test]
    fn parse_len_bytes_reports_overflow() {
        assert!(matches!(
            parse_len_bytes(b"99999999999", "length"),
            Err(ParseRecordError::OutOfRange { name: "length", .. })
        ));
        assert_eq!(parse_len_bytes(b"4096", "length").unwrap(), 4096);
    }
}
