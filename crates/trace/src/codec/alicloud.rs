//! Codec for the Alibaba `block-traces` CSV format.
//!
//! Rows are `device_id,opcode,offset,length,timestamp`:
//!
//! ```text
//! 419,W,366131200,4096,1577808000000046
//! 725,R,1054515200,16384,1577808000000134
//! ```
//!
//! * `device_id` — integer volume id (the release numbers volumes 0-999);
//! * `opcode` — `R` or `W`;
//! * `offset`, `length` — bytes;
//! * `timestamp` — microseconds (the release uses Unix microseconds;
//!   the reader keeps them verbatim, so the trace epoch is the Unix epoch).

use std::io::{BufRead, Write};

use crate::error::{ParseRecordError, TraceError};
use crate::{IoRequest, OpKind, Timestamp, VolumeId};

use super::{field, field_bytes, parse_len, parse_len_bytes, parse_u64, parse_u64_bytes};

/// Parses one AliCloud CSV row into an [`IoRequest`].
///
/// # Errors
///
/// Returns a [`ParseRecordError`] describing the first malformed field.
///
/// # Example
///
/// ```
/// use cbs_trace::codec::alicloud::parse_record;
/// use cbs_trace::OpKind;
///
/// let r = parse_record("419,W,366131200,4096,1577808000000046").unwrap();
/// assert_eq!(r.volume().get(), 419);
/// assert_eq!(r.op(), OpKind::Write);
/// assert_eq!(r.len(), 4096);
/// ```
pub fn parse_record(line: &str) -> Result<IoRequest, ParseRecordError> {
    let mut fields = line.split(',');
    let device = field(&mut fields, 0, "device_id")?;
    let opcode = field(&mut fields, 1, "opcode")?;
    let offset = field(&mut fields, 2, "offset")?;
    let length = field(&mut fields, 3, "length")?;
    let timestamp = field(&mut fields, 4, "timestamp")?;

    let device = parse_u64(device, "device_id")?;
    let device = u32::try_from(device).map_err(|_| ParseRecordError::OutOfRange {
        name: "device_id",
        text: device.to_string(),
    })?;
    let op: OpKind = opcode.parse().map_err(|_| ParseRecordError::InvalidOp {
        text: opcode.to_owned(),
    })?;
    let offset = parse_u64(offset, "offset")?;
    let len = parse_len(length, "length")?;
    let ts = parse_u64(timestamp, "timestamp")?;

    Ok(IoRequest::new(
        VolumeId::new(device),
        op,
        offset,
        len,
        Timestamp::from_micros(ts),
    ))
}

/// Parses one AliCloud CSV row directly from bytes — the allocation-free
/// fast path used by [`crate::codec::parallel::ParallelDecoder`].
///
/// Semantics match [`parse_record`] for ASCII input (all the release
/// contains): fields are trimmed of ASCII whitespace and integers are
/// parsed in place, with no per-line `String` allocation on the happy
/// path.
///
/// # Errors
///
/// Returns a [`ParseRecordError`] describing the first malformed field.
pub fn parse_record_bytes(line: &[u8]) -> Result<IoRequest, ParseRecordError> {
    let mut fields = line.split(|&b| b == b',');
    let device = field_bytes(&mut fields, 0, "device_id")?;
    let opcode = field_bytes(&mut fields, 1, "opcode")?;
    let offset = field_bytes(&mut fields, 2, "offset")?;
    let length = field_bytes(&mut fields, 3, "length")?;
    let timestamp = field_bytes(&mut fields, 4, "timestamp")?;

    let device = parse_u64_bytes(device, "device_id")?;
    let device = u32::try_from(device).map_err(|_| ParseRecordError::OutOfRange {
        name: "device_id",
        text: device.to_string(),
    })?;
    let op = match opcode {
        b"R" | b"r" | b"Read" | b"read" | b"READ" => OpKind::Read,
        b"W" | b"w" | b"Write" | b"write" | b"WRITE" => OpKind::Write,
        _ => {
            return Err(ParseRecordError::InvalidOp {
                text: String::from_utf8_lossy(opcode).into_owned(),
            })
        }
    };
    let offset = parse_u64_bytes(offset, "offset")?;
    let len = parse_len_bytes(length, "length")?;
    let ts = parse_u64_bytes(timestamp, "timestamp")?;

    Ok(IoRequest::new(
        VolumeId::new(device),
        op,
        offset,
        len,
        Timestamp::from_micros(ts),
    ))
}

/// Formats an [`IoRequest`] as one AliCloud CSV row (without newline).
pub fn format_record(req: &IoRequest) -> String {
    format!(
        "{},{},{},{},{}",
        req.volume().get(),
        req.op().as_char(),
        req.offset(),
        req.len(),
        req.ts().as_micros()
    )
}

/// Streaming reader over AliCloud CSV rows.
///
/// Yields `Result<IoRequest, TraceError>`; blank lines are skipped, and
/// parse failures carry their one-based line number. The reader can be
/// passed a `&mut R` if the caller wants to keep ownership of the
/// underlying reader (see C-RW-VALUE).
#[derive(Debug)]
pub struct AliCloudReader<R> {
    lines: std::io::Lines<R>,
    line_no: u64,
}

impl<R: BufRead> AliCloudReader<R> {
    /// Creates a reader over `inner`.
    pub fn new(inner: R) -> Self {
        AliCloudReader {
            lines: inner.lines(),
            line_no: 0,
        }
    }
}

impl<R: BufRead> Iterator for AliCloudReader<R> {
    type Item = Result<IoRequest, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(e) => return Some(Err(TraceError::Io(e))),
            };
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            return Some(parse_record(trimmed).map_err(|e| TraceError::parse(self.line_no, e)));
        }
    }
}

/// Streaming writer emitting AliCloud CSV rows.
#[derive(Debug)]
pub struct AliCloudWriter<W> {
    inner: W,
}

impl<W: Write> AliCloudWriter<W> {
    /// Creates a writer over `inner`. A `&mut W` is accepted as well.
    pub fn new(inner: W) -> Self {
        AliCloudWriter { inner }
    }

    /// Writes one request as a CSV row.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_request(&mut self, req: &IoRequest) -> std::io::Result<()> {
        writeln!(self.inner, "{}", format_record(req))
    }

    /// Writes every request from an iterator.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_all<'a, I>(&mut self, requests: I) -> std::io::Result<()>
    where
        I: IntoIterator<Item = &'a IoRequest>,
    {
        for req in requests {
            self.write_request(req)?;
        }
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IoRequest {
        IoRequest::new(
            VolumeId::new(419),
            OpKind::Write,
            366_131_200,
            4096,
            Timestamp::from_micros(1_577_808_000_000_046),
        )
    }

    #[test]
    fn parses_release_style_row() {
        let r = parse_record("419,W,366131200,4096,1577808000000046").unwrap();
        assert_eq!(r, sample());
    }

    #[test]
    fn parses_with_whitespace() {
        let r = parse_record(" 419 , W , 366131200 , 4096 , 1577808000000046 ").unwrap();
        assert_eq!(r, sample());
    }

    #[test]
    fn format_parse_roundtrip() {
        let r = sample();
        assert_eq!(parse_record(&format_record(&r)).unwrap(), r);
    }

    #[test]
    fn byte_parser_matches_str_parser() {
        let lines = [
            "419,W,366131200,4096,1577808000000046",
            " 419 , W , 366131200 , 4096 , 1577808000000046 ",
            "725,r,0,512,1",
            "0,Read,18446744073709551615,4194304,0",
            "419,W,366131200,4096",
            "419,X,1,1,1",
            "419,R,abc,1,1",
            "419,R,0,99999999999,1",
            "99999999999,R,0,1,1",
            "",
            ",,,,",
        ];
        for line in lines {
            assert_eq!(
                parse_record_bytes(line.as_bytes()),
                parse_record(line),
                "{line:?}"
            );
        }
    }

    #[test]
    fn missing_field() {
        let e = parse_record("419,W,366131200,4096").unwrap_err();
        assert!(matches!(
            e,
            ParseRecordError::MissingField {
                name: "timestamp",
                ..
            }
        ));
    }

    #[test]
    fn invalid_opcode() {
        let e = parse_record("419,X,1,1,1").unwrap_err();
        assert!(matches!(e, ParseRecordError::InvalidOp { .. }));
    }

    #[test]
    fn invalid_number() {
        let e = parse_record("419,R,abc,1,1").unwrap_err();
        assert!(matches!(
            e,
            ParseRecordError::InvalidNumber { name: "offset", .. }
        ));
    }

    #[test]
    fn oversized_length_is_out_of_range() {
        let e = parse_record("419,R,0,99999999999,1").unwrap_err();
        assert!(matches!(
            e,
            ParseRecordError::OutOfRange { name: "length", .. }
        ));
    }

    #[test]
    fn oversized_device_is_out_of_range() {
        let e = parse_record("99999999999,R,0,1,1").unwrap_err();
        assert!(matches!(
            e,
            ParseRecordError::OutOfRange {
                name: "device_id",
                ..
            }
        ));
    }

    #[test]
    fn reader_skips_blank_lines_and_counts_lines() {
        let text = "419,W,0,4096,10\n\n  \n725,R,4096,512,20\n";
        let reqs: Vec<_> = AliCloudReader::new(text.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].volume(), VolumeId::new(725));
    }

    #[test]
    fn reader_reports_line_numbers() {
        let text = "419,W,0,4096,10\nbogus row\n";
        let results: Vec<_> = AliCloudReader::new(text.as_bytes()).collect();
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert_eq!(err.line(), Some(2));
    }

    #[test]
    fn writer_roundtrip_many() {
        let reqs: Vec<IoRequest> = (0..100)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new(i % 7),
                    if i % 3 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    u64::from(i) * 4096,
                    512 * (i + 1),
                    Timestamp::from_micros(u64::from(i) * 1000),
                )
            })
            .collect();
        let mut buf = Vec::new();
        AliCloudWriter::new(&mut buf).write_all(&reqs).unwrap();
        let back: Vec<IoRequest> = AliCloudReader::new(&buf[..])
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back, reqs);
    }

    #[test]
    fn into_inner_flushes() {
        let mut w = AliCloudWriter::new(std::io::BufWriter::new(Vec::new()));
        w.write_request(&sample()).unwrap();
        let buf = w.into_inner().unwrap().into_inner().unwrap();
        assert!(!buf.is_empty());
    }
}
