//! The columnar binary trace format (**CBT**).
//!
//! CSV decode costs dominate re-analysis of large corpora: every run
//! re-parses the same decimal text. CBT is the "convert once, re-ingest
//! fast" answer — a compact columnar binary representation of an
//! [`IoRequest`] stream that decodes at a large multiple of CSV speed
//! and typically occupies a fraction of the CSV's bytes.
//!
//! # Layout
//!
//! A CBT stream is a 16-byte header followed by zero or more
//! self-contained *blocks*:
//!
//! ```text
//! header  := magic "CBTRACE1" (8 B) | version u16 LE | flags u16 LE | reserved u32 LE
//! block   := payload_len u32 LE | count u32 LE | crc32 u32 LE | payload
//! payload := ts_col | vol_col | op_col | off_col | len_col
//! ```
//!
//! Within a block's payload the five columns are concatenated:
//!
//! * `ts_col` — per-record timestamp **deltas** (previous record's
//!   timestamp within the block, starting from 0), zigzag + LEB128
//!   varint. Sorted traces make these tiny (1-2 bytes).
//! * `vol_col` — raw volume ids as LEB128 varints.
//! * `op_col` — one bit per record (`1` = write), packed LSB-first into
//!   `ceil(count / 8)` bytes.
//! * `off_col` — per-record offset deltas (same zigzag scheme as
//!   timestamps), so sequential runs collapse to 2-3 bytes per record.
//! * `len_col` — raw request lengths as LEB128 varints.
//!
//! Every block carries the CRC-32 (IEEE) of its payload; decoding
//! verifies it before trusting any varint, so corruption surfaces as
//! [`CbtError::ChecksumMismatch`] rather than silently-wrong metrics.
//! Truncation and structural damage surface as [`CbtError::Corrupt`]
//! with the zero-based block index.
//!
//! Deltas reset at each block boundary, so a block decodes without any
//! state from its predecessors.
//!
//! # Example
//!
//! ```
//! use cbs_trace::{CbtReader, CbtWriter, IoRequest, OpKind, Timestamp, VolumeId};
//!
//! # fn main() -> Result<(), cbs_trace::CbtError> {
//! let reqs: Vec<IoRequest> = (0..100)
//!     .map(|i| {
//!         IoRequest::new(
//!             VolumeId::new(i % 4),
//!             if i % 3 == 0 { OpKind::Read } else { OpKind::Write },
//!             u64::from(i) * 4096,
//!             4096,
//!             Timestamp::from_micros(u64::from(i) * 100),
//!         )
//!     })
//!     .collect();
//!
//! let mut writer = CbtWriter::new(Vec::new());
//! for req in &reqs {
//!     writer.write_request(req)?;
//! }
//! let encoded = writer.finish()?;
//!
//! let decoded: Vec<IoRequest> =
//!     CbtReader::new(&encoded[..]).collect::<Result<_, _>>()?;
//! assert_eq!(decoded, reqs);
//! # Ok(())
//! # }
//! ```
//!
//! [`IoRequest`]: crate::IoRequest

use std::io::{Read, Write};

use cbs_obs::{Counter, Registry, SpanTimer, Stopwatch};

use crate::batch::{RequestBatch, RequestBatchRef};
use crate::error::CbtError;
use crate::{IoRequest, OpKind, Timestamp, VolumeId};

/// The 8 magic bytes opening every CBT stream.
pub const MAGIC: [u8; 8] = *b"CBTRACE1";

/// The format version this module reads and writes.
pub const VERSION: u16 = 1;

/// Records buffered per block by default (~64 Ki).
///
/// Large enough that per-block overhead (12-byte header + delta resets)
/// is negligible, small enough that a streaming reader's working set
/// stays in cache.
pub const DEFAULT_BLOCK_CAPACITY: usize = 64 * 1024;

const HEADER_LEN: usize = 16;
const BLOCK_HEADER_LEN: usize = 12;
/// Upper bound on a block payload (256 MiB); anything larger is treated
/// as corruption rather than attempted as an allocation.
const MAX_BLOCK_PAYLOAD: u32 = 256 * 1024 * 1024;

// --- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) ---------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// Computes the CRC-32 (IEEE) of `bytes`, as stored in CBT block
/// headers.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// --- varint / zigzag ------------------------------------------------------

#[inline]
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Decodes one LEB128 varint at `*pos`, advancing it. `None` on overrun
/// or an encoding longer than 10 bytes.
#[inline]
fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes `value` as a zigzag varint of its wrapping delta from `prev`.
#[inline]
fn put_delta(buf: &mut Vec<u8>, prev: u64, value: u64) {
    put_varint(buf, zigzag(value.wrapping_sub(prev) as i64));
}

/// All continuation bits of 8 packed varint bytes, for the SWAR fast
/// path below.
const VARINT_CONT_BITS: u64 = 0x8080_8080_8080_8080;

/// Decodes `count` LEB128 varints starting at `*pos*`, feeding each
/// decoded value through `push` (which returns `false` to reject a
/// value, e.g. one that overflows the column's element type).
///
/// Hot path: friendly traces encode most values in one byte, so eight
/// continuation bits are tested with a single unaligned `u64` load
/// (SWAR); only a mixed group falls back to the byte-at-a-time decoder
/// for its first varint before re-probing.
#[inline]
fn decode_varints(
    buf: &[u8],
    pos: &mut usize,
    count: usize,
    mut push: impl FnMut(u64) -> bool,
) -> Result<(), ColumnError> {
    let mut remaining = count;
    while remaining >= 8 {
        if let Some(chunk) = buf.get(*pos..*pos + 8) {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            let word = u64::from_le_bytes(bytes);
            if word & VARINT_CONT_BITS == 0 {
                for i in 0..8 {
                    if !push((word >> (8 * i)) & 0x7f) {
                        return Err(ColumnError::Range);
                    }
                }
                *pos += 8;
                remaining -= 8;
                continue;
            }
        }
        let v = get_varint(buf, pos).ok_or(ColumnError::Truncated)?;
        if !push(v) {
            return Err(ColumnError::Range);
        }
        remaining -= 1;
    }
    while remaining > 0 {
        let v = get_varint(buf, pos).ok_or(ColumnError::Truncated)?;
        if !push(v) {
            return Err(ColumnError::Range);
        }
        remaining -= 1;
    }
    Ok(())
}

/// Why a column failed to decode; mapped to [`CbtError::Corrupt`] with
/// a column-specific detail by the callers.
enum ColumnError {
    Truncated,
    Range,
}

/// Decodes one block payload into `batch`'s columns, single pass per
/// column, shared by the buffered and the zero-copy readers. `block` is
/// only used to label corruption errors.
fn decode_columns(
    buf: &[u8],
    count: usize,
    block: u64,
    batch: &mut RequestBatch,
) -> Result<(), CbtError> {
    batch.clear();
    let (volumes, ops, offsets, lens, timestamps) = batch.columns_mut();
    let mut pos = 0usize;

    timestamps.reserve(count);
    let mut prev_ts = 0u64;
    decode_varints(buf, &mut pos, count, |v| {
        prev_ts = prev_ts.wrapping_add(unzigzag(v) as u64);
        timestamps.push(Timestamp::from_micros(prev_ts));
        true
    })
    .map_err(|_| corrupt_at(block, "truncated timestamp column"))?;

    volumes.reserve(count);
    decode_varints(buf, &mut pos, count, |v| match u32::try_from(v) {
        Ok(vol) => {
            volumes.push(VolumeId::new(vol));
            true
        }
        Err(_) => false,
    })
    .map_err(|e| match e {
        ColumnError::Truncated => corrupt_at(block, "truncated volume column"),
        ColumnError::Range => corrupt_at(block, "volume id out of range"),
    })?;

    let op_bytes = count.div_ceil(8);
    let bits = buf
        .get(pos..pos + op_bytes)
        .ok_or_else(|| corrupt_at(block, "truncated op column"))?;
    pos += op_bytes;
    ops.reserve(count);
    for i in 0..count {
        ops.push(if bits[i / 8] >> (i % 8) & 1 == 1 {
            OpKind::Write
        } else {
            OpKind::Read
        });
    }

    offsets.reserve(count);
    let mut prev_off = 0u64;
    decode_varints(buf, &mut pos, count, |v| {
        prev_off = prev_off.wrapping_add(unzigzag(v) as u64);
        offsets.push(prev_off);
        true
    })
    .map_err(|_| corrupt_at(block, "truncated offset column"))?;

    lens.reserve(count);
    decode_varints(buf, &mut pos, count, |v| match u32::try_from(v) {
        Ok(len) => {
            lens.push(len);
            true
        }
        Err(_) => false,
    })
    .map_err(|e| match e {
        ColumnError::Truncated => corrupt_at(block, "truncated length column"),
        ColumnError::Range => corrupt_at(block, "request length out of range"),
    })?;

    if pos != buf.len() {
        return Err(corrupt_at(block, "trailing bytes in block"));
    }
    Ok(())
}

// --- writer ---------------------------------------------------------------

/// Streaming encoder for CBT.
///
/// Buffers records into blocks of
/// [`block_capacity`](CbtWriter::with_block_capacity) records, encodes
/// each block's columns, and writes it with a checksum.
/// [`finish`](CbtWriter::finish) flushes the final partial block and
/// must be called — dropping the writer loses buffered records.
///
/// See the [module docs](self) for the layout and an example.
#[derive(Debug)]
pub struct CbtWriter<W: Write> {
    inner: W,
    pending: RequestBatch,
    payload: Vec<u8>,
    block_capacity: usize,
    header_written: bool,
}

impl<W: Write> CbtWriter<W> {
    /// Creates a writer with the default block capacity.
    pub fn new(inner: W) -> Self {
        Self::with_block_capacity(inner, DEFAULT_BLOCK_CAPACITY)
    }

    /// Creates a writer that flushes a block every `block_capacity`
    /// records (minimum 1).
    pub fn with_block_capacity(inner: W, block_capacity: usize) -> Self {
        CbtWriter {
            inner,
            pending: RequestBatch::new(),
            payload: Vec::new(),
            block_capacity: block_capacity.max(1),
            header_written: false,
        }
    }

    /// Appends one request to the stream.
    pub fn write_request(&mut self, req: &IoRequest) -> Result<(), CbtError> {
        self.pending.push(req);
        if self.pending.len() >= self.block_capacity {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Appends every record of `batch` to the stream.
    pub fn write_batch(&mut self, batch: &RequestBatch) -> Result<(), CbtError> {
        for i in 0..batch.len() {
            self.pending.push(&batch.get(i));
            if self.pending.len() >= self.block_capacity {
                self.flush_block()?;
            }
        }
        Ok(())
    }

    /// Flushes the final partial block (and the header, for an empty
    /// stream) and returns the underlying writer.
    pub fn finish(mut self) -> Result<W, CbtError> {
        self.ensure_header()?;
        if !self.pending.is_empty() {
            self.flush_block()?;
        }
        self.inner.flush()?;
        Ok(self.inner)
    }

    fn ensure_header(&mut self) -> Result<(), CbtError> {
        if !self.header_written {
            let mut header = [0u8; HEADER_LEN];
            header[..8].copy_from_slice(&MAGIC);
            header[8..10].copy_from_slice(&VERSION.to_le_bytes());
            // flags (10..12) and reserved (12..16) stay zero.
            self.inner.write_all(&header)?;
            self.header_written = true;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), CbtError> {
        self.ensure_header()?;
        self.payload.clear();
        encode_payload(&self.pending, &mut self.payload);
        let count = self.pending.len() as u32;
        let checksum = crc32(&self.payload);
        let mut header = [0u8; BLOCK_HEADER_LEN];
        header[..4].copy_from_slice(&(self.payload.len() as u32).to_le_bytes());
        header[4..8].copy_from_slice(&count.to_le_bytes());
        header[8..12].copy_from_slice(&checksum.to_le_bytes());
        self.inner.write_all(&header)?;
        self.inner.write_all(&self.payload)?;
        self.pending.clear();
        Ok(())
    }
}

fn encode_payload(batch: &RequestBatch, out: &mut Vec<u8>) {
    let mut prev_ts = 0u64;
    for ts in batch.timestamps() {
        put_delta(out, prev_ts, ts.as_micros());
        prev_ts = ts.as_micros();
    }
    for vol in batch.volumes() {
        put_varint(out, u64::from(vol.get()));
    }
    let ops = batch.ops();
    for chunk in ops.chunks(8) {
        let mut byte = 0u8;
        for (bit, op) in chunk.iter().enumerate() {
            byte |= u8::from(op.is_write()) << bit;
        }
        out.push(byte);
    }
    let mut prev_off = 0u64;
    for &off in batch.offsets() {
        put_delta(out, prev_off, off);
        prev_off = off;
    }
    for &len in batch.lens() {
        put_varint(out, u64::from(len));
    }
}

// --- reader ---------------------------------------------------------------

/// Streaming decoder for CBT.
///
/// Two consumption styles:
///
/// * [`read_batch`](CbtReader::read_batch) — the fast path: yields one
///   decoded block at a time as a [`RequestBatch`], ready to feed
///   straight into batched analysis kernels.
/// * the [`Iterator`] impl — yields individual
///   `Result<IoRequest, CbtError>` records, for drop-in compatibility
///   with the CSV readers.
///
/// The header is validated lazily on the first read. After any error
/// the reader is poisoned: [`read_batch`](CbtReader::read_batch)
/// returns [`CbtError::Poisoned`] forever after, so a corrupt mid-file
/// block can never be observed as a shorter-but-clean trace — `Ok(None)`
/// is reserved for a genuinely clean end of stream. (The record
/// iterator yields the original error once, then fuses to `None`.)
#[derive(Debug)]
pub struct CbtReader<R: Read> {
    inner: R,
    header_read: bool,
    block_index: u64,
    payload: Vec<u8>,
    /// Records of the current block not yet yielded by the iterator.
    current: RequestBatch,
    pos: usize,
    failed: bool,
    metrics: Option<CbtMetrics>,
}

/// Reader-side registry handles (see [`CbtReader::with_registry`]).
#[derive(Debug)]
struct CbtMetrics {
    blocks: Counter,
    records: Counter,
    bytes: Counter,
    crc_failures: Counter,
    corrupt_blocks: Counter,
    block_decode: SpanTimer,
}

impl CbtMetrics {
    fn new(registry: &Registry) -> Self {
        CbtMetrics {
            blocks: registry.counter("cbt.blocks"),
            records: registry.counter("cbt.records"),
            bytes: registry.counter("cbt.bytes"),
            crc_failures: registry.counter("cbt.crc_failures"),
            corrupt_blocks: registry.counter("cbt.corrupt_blocks"),
            block_decode: registry.span("cbt.block_decode"),
        }
    }
}

impl<R: Read> CbtReader<R> {
    /// Creates a reader over any byte source.
    pub fn new(inner: R) -> Self {
        CbtReader {
            inner,
            header_read: false,
            block_index: 0,
            payload: Vec::new(),
            current: RequestBatch::new(),
            pos: 0,
            failed: false,
            metrics: None,
        }
    }

    /// Publishes reader metrics into `registry`: `cbt.blocks`,
    /// `cbt.records`, and `cbt.bytes` counters for throughput
    /// accounting, `cbt.crc_failures` / `cbt.corrupt_blocks` for damage,
    /// and a `cbt.block_decode` span timing each block's read + decode
    /// (stalls show up as a long tail). Recording is per block, so the
    /// overhead is unmeasurable next to decoding ~64 Ki records.
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.metrics = Some(CbtMetrics::new(registry));
        self
    }

    /// Decodes the next block, or `Ok(None)` at a clean end of stream.
    ///
    /// Must not be interleaved with the record [`Iterator`]: records the
    /// iterator has buffered from a previous block are not returned
    /// here.
    ///
    /// # Errors
    ///
    /// Any decode failure poisons the reader; every subsequent call
    /// returns [`CbtError::Poisoned`] so the failure cannot be
    /// swallowed into a clean-looking early EOF.
    pub fn read_batch(&mut self) -> Result<Option<RequestBatch>, CbtError> {
        if self.failed {
            return Err(CbtError::Poisoned);
        }
        let clock = self.metrics.as_ref().map(|_| Stopwatch::start());
        match self.try_read_batch() {
            Ok(Some(batch)) => {
                if let (Some(m), Some(clock)) = (&self.metrics, clock) {
                    m.block_decode.record_nanos(clock.elapsed_nanos());
                    m.blocks.inc();
                    m.records.add(batch.len() as u64);
                    m.bytes.add((BLOCK_HEADER_LEN + self.payload.len()) as u64);
                }
                Ok(Some(batch))
            }
            // Clean EOF and failures record nothing: an empty read or an
            // aborted decode would pollute the span distribution.
            Ok(None) => Ok(None),
            Err(e) => {
                if let Some(m) = &self.metrics {
                    match &e {
                        CbtError::ChecksumMismatch { .. } => m.crc_failures.inc(),
                        CbtError::Corrupt { .. } => m.corrupt_blocks.inc(),
                        _ => {}
                    }
                }
                self.failed = true;
                Err(e)
            }
        }
    }

    fn try_read_batch(&mut self) -> Result<Option<RequestBatch>, CbtError> {
        self.ensure_header()?;
        let mut header = [0u8; BLOCK_HEADER_LEN];
        if !self.read_exact_or_eof(&mut header, "truncated block header")? {
            return Ok(None);
        }
        let payload_len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let count = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let checksum = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if payload_len > MAX_BLOCK_PAYLOAD {
            return Err(self.corrupt("block payload length too large"));
        }
        // Each record costs at least 1 byte in four varint columns, so a
        // count grossly exceeding the payload is structural damage; this
        // also bounds the column allocations below.
        if u64::from(count) * 4 > u64::from(payload_len) {
            return Err(self.corrupt("record count exceeds payload size"));
        }
        self.payload.clear();
        self.payload.resize(payload_len as usize, 0);
        let mut read_buf = std::mem::take(&mut self.payload);
        let fully = self.read_exact_or_eof(&mut read_buf, "")?;
        self.payload = read_buf;
        if !fully || self.payload.len() != payload_len as usize {
            return Err(self.corrupt("truncated block payload"));
        }
        let found = crc32(&self.payload);
        if found != checksum {
            return Err(CbtError::ChecksumMismatch {
                block: self.block_index,
                expected: checksum,
                found,
            });
        }
        let batch = self.decode_payload(count as usize)?;
        self.block_index += 1;
        Ok(Some(batch))
    }

    fn decode_payload(&mut self, count: usize) -> Result<RequestBatch, CbtError> {
        let mut batch = RequestBatch::with_capacity(count);
        decode_columns(&self.payload, count, self.block_index, &mut batch)?;
        Ok(batch)
    }

    fn ensure_header(&mut self) -> Result<(), CbtError> {
        if self.header_read {
            return Ok(());
        }
        let mut header = [0u8; HEADER_LEN];
        self.inner.read_exact(&mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                CbtError::BadMagic {
                    found: [0u8; 8], // too short to even hold the magic
                }
            } else {
                CbtError::Io(e)
            }
        })?;
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&header[..8]);
        if magic != MAGIC {
            return Err(CbtError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version != VERSION {
            return Err(CbtError::UnsupportedVersion { found: version });
        }
        self.header_read = true;
        Ok(())
    }

    /// Fills `buf` completely, or returns `Ok(false)` on EOF *before the
    /// first byte*; EOF mid-buffer is `Corrupt` with `detail` (or
    /// `Ok(false)` with the partial length left visible when `detail` is
    /// empty, for callers that format their own error).
    fn read_exact_or_eof(
        &mut self,
        buf: &mut [u8],
        detail: &'static str,
    ) -> Result<bool, CbtError> {
        let mut filled = 0usize;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 {
                        return Ok(false);
                    }
                    if detail.is_empty() {
                        return Ok(false);
                    }
                    return Err(self.corrupt(detail));
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(CbtError::Io(e)),
            }
        }
        Ok(true)
    }

    fn corrupt(&self, detail: &'static str) -> CbtError {
        corrupt_at(self.block_index, detail)
    }
}

fn corrupt_at(block: u64, detail: &'static str) -> CbtError {
    CbtError::Corrupt { block, detail }
}

impl<R: Read> Iterator for CbtReader<R> {
    type Item = Result<IoRequest, CbtError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.pos < self.current.len() {
                let req = self.current.get(self.pos);
                self.pos += 1;
                return Some(Ok(req));
            }
            match self.read_batch() {
                Ok(Some(batch)) => {
                    self.current = batch;
                    self.pos = 0;
                }
                Ok(None) => return None,
                // The original error was already yielded once; the
                // iterator contract wants fused `None` afterwards.
                Err(CbtError::Poisoned) => return None,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

// --- zero-copy reader -----------------------------------------------------

/// Zero-copy decoder for an in-memory CBT stream (typically an
/// [`Mmap`](crate::Mmap) of the trace file).
///
/// Unlike [`CbtReader`], which copies every block payload out of its
/// `Read` source and hands back an owned [`RequestBatch`], this reader
/// walks the stream as one `&[u8]`: block payloads are decoded straight
/// out of the source slice (no payload copy, no per-block allocation),
/// and [`read_batch_ref`](Self::read_batch_ref) lends the decoded
/// columns as a [`RequestBatchRef`] backed by buffers the reader reuses
/// across blocks.
///
/// Error semantics are identical to [`CbtReader`]: every block checksum
/// is verified before decoding, any failure poisons the reader
/// ([`CbtError::Poisoned`] forever after), and a corrupt mid-file block
/// can never be observed as a shorter-but-clean trace.
///
/// # Example
///
/// ```
/// use cbs_trace::{CbtSliceReader, CbtWriter, IoRequest, OpKind, Timestamp, VolumeId};
///
/// # fn main() -> Result<(), cbs_trace::CbtError> {
/// let mut writer = CbtWriter::new(Vec::new());
/// writer.write_request(&IoRequest::new(
///     VolumeId::new(1),
///     OpKind::Read,
///     0,
///     4096,
///     Timestamp::ZERO,
/// ))?;
/// let encoded = writer.finish()?;
///
/// let mut reader = CbtSliceReader::new(&encoded);
/// let batch = reader.read_batch_ref()?.expect("one block");
/// assert_eq!(batch.len(), 1);
/// assert_eq!(batch.lens()[0], 4096);
/// assert!(reader.read_batch_ref()?.is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CbtSliceReader<'a> {
    data: &'a [u8],
    pos: usize,
    header_read: bool,
    block_index: u64,
    /// Reused column buffers the returned views borrow from.
    current: RequestBatch,
    failed: bool,
    metrics: Option<CbtMetrics>,
}

impl<'a> CbtSliceReader<'a> {
    /// Creates a reader over a complete in-memory CBT stream.
    pub fn new(data: &'a [u8]) -> Self {
        CbtSliceReader {
            data,
            pos: 0,
            header_read: false,
            block_index: 0,
            current: RequestBatch::new(),
            failed: false,
            metrics: None,
        }
    }

    /// Publishes the same `cbt.*` reader metrics as
    /// [`CbtReader::with_registry`].
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.metrics = Some(CbtMetrics::new(registry));
        self
    }

    /// Decodes the next block and lends it as a [`RequestBatchRef`], or
    /// `Ok(None)` at a clean end of stream.
    ///
    /// The view borrows the reader's internal column buffers, so it
    /// must be consumed before the next call.
    ///
    /// # Errors
    ///
    /// Any decode failure poisons the reader; every subsequent call
    /// returns [`CbtError::Poisoned`], exactly like
    /// [`CbtReader::read_batch`].
    pub fn read_batch_ref(&mut self) -> Result<Option<RequestBatchRef<'_>>, CbtError> {
        if self.failed {
            return Err(CbtError::Poisoned);
        }
        let clock = self.metrics.as_ref().map(|_| Stopwatch::start());
        match self.try_read_block() {
            Ok(Some(block_bytes)) => {
                if let (Some(m), Some(clock)) = (&self.metrics, clock) {
                    m.block_decode.record_nanos(clock.elapsed_nanos());
                    m.blocks.inc();
                    m.records.add(self.current.len() as u64);
                    m.bytes.add(block_bytes as u64);
                }
                Ok(Some(self.current.as_ref()))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                if let Some(m) = &self.metrics {
                    match &e {
                        CbtError::ChecksumMismatch { .. } => m.crc_failures.inc(),
                        CbtError::Corrupt { .. } => m.corrupt_blocks.inc(),
                        _ => {}
                    }
                }
                self.failed = true;
                Err(e)
            }
        }
    }

    /// Decodes the next block into `self.current`, returning the number
    /// of stream bytes it occupied (header + payload), or `None` at a
    /// clean end of stream.
    fn try_read_block(&mut self) -> Result<Option<usize>, CbtError> {
        self.ensure_header()?;
        let remaining = self.data.len() - self.pos;
        if remaining == 0 {
            return Ok(None);
        }
        if remaining < BLOCK_HEADER_LEN {
            return Err(self.corrupt("truncated block header"));
        }
        let header = &self.data[self.pos..self.pos + BLOCK_HEADER_LEN];
        let payload_len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let count = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let checksum = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if payload_len > MAX_BLOCK_PAYLOAD {
            return Err(self.corrupt("block payload length too large"));
        }
        if u64::from(count) * 4 > u64::from(payload_len) {
            return Err(self.corrupt("record count exceeds payload size"));
        }
        let start = self.pos + BLOCK_HEADER_LEN;
        let payload = self
            .data
            .get(start..start + payload_len as usize)
            .ok_or_else(|| self.corrupt("truncated block payload"))?;
        let found = crc32(payload);
        if found != checksum {
            return Err(CbtError::ChecksumMismatch {
                block: self.block_index,
                expected: checksum,
                found,
            });
        }
        decode_columns(payload, count as usize, self.block_index, &mut self.current)?;
        self.pos = start + payload_len as usize;
        self.block_index += 1;
        Ok(Some(BLOCK_HEADER_LEN + payload_len as usize))
    }

    fn ensure_header(&mut self) -> Result<(), CbtError> {
        if self.header_read {
            return Ok(());
        }
        if self.data.len() < HEADER_LEN {
            // Same shape as the buffered reader's short-file error.
            return Err(CbtError::BadMagic { found: [0u8; 8] });
        }
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&self.data[..8]);
        if magic != MAGIC {
            return Err(CbtError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes([self.data[8], self.data[9]]);
        if version != VERSION {
            return Err(CbtError::UnsupportedVersion { found: version });
        }
        self.pos = HEADER_LEN;
        self.header_read = true;
        Ok(())
    }

    fn corrupt(&self, detail: &'static str) -> CbtError {
        corrupt_at(self.block_index, detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<IoRequest> {
        (0..n)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new((i % 7) as u32 * 1000),
                    if i % 3 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    (i * 37) % 1_000_000 * 4096,
                    512 * ((i % 13) as u32 + 1),
                    Timestamp::from_micros(1_577_808_000_000_000 + i * 250),
                )
            })
            .collect()
    }

    fn encode(reqs: &[IoRequest], block_capacity: usize) -> Vec<u8> {
        let mut w = CbtWriter::with_block_capacity(Vec::new(), block_capacity);
        for r in reqs {
            w.write_request(r).expect("write");
        }
        w.finish().expect("finish")
    }

    #[test]
    fn roundtrips_across_block_sizes() {
        let reqs = sample(1000);
        for cap in [1, 7, 100, 1000, 4096] {
            let bytes = encode(&reqs, cap);
            let decoded: Vec<IoRequest> = CbtReader::new(&bytes[..])
                .collect::<Result<_, _>>()
                .expect("decode");
            assert_eq!(decoded, reqs, "block capacity {cap}");
        }
    }

    #[test]
    fn empty_stream_is_header_only() {
        let bytes = CbtWriter::new(Vec::new()).finish().expect("finish");
        assert_eq!(bytes.len(), HEADER_LEN);
        assert_eq!(&bytes[..8], &MAGIC);
        let mut r = CbtReader::new(&bytes[..]);
        assert!(r.read_batch().expect("read").is_none());
        assert!(CbtReader::new(&bytes[..]).next().is_none());
    }

    #[test]
    fn read_batch_yields_blocks() {
        let reqs = sample(250);
        let bytes = encode(&reqs, 100);
        let mut r = CbtReader::new(&bytes[..]);
        let mut all = Vec::new();
        let mut sizes = Vec::new();
        while let Some(batch) = r.read_batch().expect("read") {
            sizes.push(batch.len());
            all.extend(batch.iter());
        }
        assert_eq!(sizes, vec![100, 100, 50]);
        assert_eq!(all, reqs);
    }

    #[test]
    fn write_batch_equals_write_request() {
        let reqs = sample(300);
        let batch = RequestBatch::from(reqs.as_slice());
        let mut w = CbtWriter::with_block_capacity(Vec::new(), 128);
        w.write_batch(&batch).expect("write");
        let via_batch = w.finish().expect("finish");
        assert_eq!(via_batch, encode(&reqs, 128));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&sample(10), 64);
        bytes[0] = b'X';
        let err = CbtReader::new(&bytes[..])
            .read_batch()
            .expect_err("should fail");
        assert!(matches!(err, CbtError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = encode(&sample(10), 64);
        bytes[8] = 0xff;
        let err = CbtReader::new(&bytes[..])
            .read_batch()
            .expect_err("should fail");
        assert!(
            matches!(err, CbtError::UnsupportedVersion { found } if found == 0x00ff),
            "{err}"
        );
    }

    #[test]
    fn detects_payload_corruption() {
        let bytes = encode(&sample(100), 64);
        // Flip one payload byte in every position after the first block
        // header; each must yield ChecksumMismatch (payload) on block 0.
        let first_payload = HEADER_LEN + BLOCK_HEADER_LEN;
        let mut corrupted = bytes.clone();
        corrupted[first_payload + 5] ^= 0x40;
        let err = CbtReader::new(&corrupted[..])
            .read_batch()
            .expect_err("should fail");
        assert!(
            matches!(err, CbtError::ChecksumMismatch { block: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn detects_truncation() {
        let bytes = encode(&sample(100), 64);
        for cut in [
            HEADER_LEN - 1,                     // inside the stream header
            HEADER_LEN + 3,                     // inside the first block header
            HEADER_LEN + BLOCK_HEADER_LEN + 10, // inside the first payload
            bytes.len() - 1,                    // inside the last payload
        ] {
            let mut r = CbtReader::new(&bytes[..cut]);
            let mut result = Ok(());
            loop {
                match r.read_batch() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            assert!(result.is_err(), "cut at {cut} went undetected");
        }
    }

    #[test]
    fn errors_poison_the_reader() {
        let mut bytes = encode(&sample(100), 64);
        let len = bytes.len();
        bytes.truncate(len - 1);
        let mut r = CbtReader::new(&bytes[..]);
        assert!(r.read_batch().expect("first block ok").is_some());
        assert!(matches!(
            r.read_batch().expect_err("truncated"),
            CbtError::Corrupt { .. }
        ));
        // Reads after the failure keep erroring — never `Ok(None)`,
        // which would let a retrying caller mistake the truncated
        // stream for a clean, shorter one.
        for _ in 0..3 {
            assert!(matches!(
                r.read_batch().expect_err("poisoned"),
                CbtError::Poisoned
            ));
        }
    }

    #[test]
    fn corrupt_mid_file_is_never_a_clean_shorter_trace() {
        // A mid-file checksum failure must make it impossible to drain
        // the reader into something that looks like a complete trace:
        // however often the caller retries `read_batch`, the total
        // (records seen, final state) is (first block only, error).
        let reqs = sample(300);
        let mut bytes = encode(&reqs, 100);
        let block0_payload =
            u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]) as usize;
        let second_payload = HEADER_LEN + 2 * BLOCK_HEADER_LEN + block0_payload;
        bytes[second_payload + 5] ^= 0x01; // damage block 1 of 3
        let mut r = CbtReader::new(&bytes[..]);
        let mut records = 0usize;
        let mut errors = 0usize;
        for _ in 0..10 {
            match r.read_batch() {
                Ok(Some(batch)) => records += batch.len(),
                Ok(None) => panic!("poisoned reader signalled clean EOF"),
                Err(_) => errors += 1,
            }
        }
        assert_eq!(records, 100, "only the intact first block is yielded");
        assert!(errors >= 9);
        // The record iterator view: yields the error exactly once, then
        // fuses — and never silently ends before the error.
        let mut r = CbtReader::new(&bytes[..]);
        let mut ok = 0usize;
        let mut saw_error = false;
        for item in r.by_ref() {
            match item {
                Ok(_) => ok += 1,
                Err(e) => {
                    assert!(matches!(e, CbtError::ChecksumMismatch { .. }), "{e}");
                    saw_error = true;
                }
            }
        }
        assert!(saw_error, "iterator must surface the corruption");
        assert_eq!(ok, 100);
        assert!(r.next().is_none(), "fused after the error");
    }

    #[test]
    fn registry_counts_blocks_and_damage() {
        use cbs_obs::Registry;
        let reqs = sample(250);
        let bytes = encode(&reqs, 100);
        let registry = Registry::new();
        let mut r = CbtReader::new(&bytes[..]).with_registry(&registry);
        while r.read_batch().expect("clean stream").is_some() {}
        assert_eq!(registry.counter("cbt.blocks").get(), 3);
        assert_eq!(registry.counter("cbt.records").get(), 250);
        assert_eq!(
            registry.counter("cbt.bytes").get(),
            (bytes.len() - HEADER_LEN) as u64
        );
        assert_eq!(registry.counter("cbt.crc_failures").get(), 0);
        assert_eq!(r.read_batch().expect("still clean at EOF"), None);

        // Damage block 1: the CRC failure is counted once (poisoned
        // re-reads do not inflate it).
        let block0_payload =
            u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]) as usize;
        let mut damaged = bytes.clone();
        damaged[HEADER_LEN + 2 * BLOCK_HEADER_LEN + block0_payload + 5] ^= 0x10;
        let registry = Registry::new();
        let mut r = CbtReader::new(&damaged[..]).with_registry(&registry);
        assert!(r.read_batch().expect("block 0 intact").is_some());
        assert!(r.read_batch().is_err());
        assert!(r.read_batch().is_err());
        assert_eq!(registry.counter("cbt.crc_failures").get(), 1);
        assert_eq!(registry.counter("cbt.blocks").get(), 1);
    }

    #[test]
    fn extreme_values_roundtrip() {
        let reqs = vec![
            IoRequest::new(
                VolumeId::new(u32::MAX),
                OpKind::Write,
                u64::MAX,
                u32::MAX,
                Timestamp::from_micros(u64::MAX),
            ),
            IoRequest::new(
                VolumeId::new(0),
                OpKind::Read,
                0,
                0,
                Timestamp::from_micros(0),
            ),
            IoRequest::new(
                VolumeId::new(1),
                OpKind::Write,
                u64::MAX / 2,
                1,
                Timestamp::from_micros(u64::MAX / 2 + 3),
            ),
        ];
        let bytes = encode(&reqs, 2);
        let decoded: Vec<IoRequest> = CbtReader::new(&bytes[..])
            .collect::<Result<_, _>>()
            .expect("decode");
        assert_eq!(decoded, reqs);
    }

    /// Drains a slice reader, returning (records decoded, first error).
    fn drain_slice(data: &[u8]) -> (Vec<IoRequest>, Option<CbtError>) {
        let mut r = CbtSliceReader::new(data);
        let mut all = Vec::new();
        loop {
            match r.read_batch_ref() {
                Ok(Some(batch)) => all.extend(batch.iter()),
                Ok(None) => return (all, None),
                Err(e) => return (all, Some(e)),
            }
        }
    }

    #[test]
    fn slice_reader_matches_buffered_on_clean_streams() {
        let reqs = sample(1000);
        for cap in [1, 7, 100, 1000, 4096] {
            let bytes = encode(&reqs, cap);
            let (got, err) = drain_slice(&bytes);
            assert!(err.is_none(), "block capacity {cap}: {err:?}");
            assert_eq!(got, reqs, "block capacity {cap}");
        }
        // Header-only stream.
        let bytes = CbtWriter::new(Vec::new()).finish().expect("finish");
        let (got, err) = drain_slice(&bytes);
        assert!(got.is_empty() && err.is_none());
    }

    #[test]
    fn slice_reader_lends_reused_buffers() {
        let reqs = sample(250);
        let bytes = encode(&reqs, 100);
        let mut r = CbtSliceReader::new(&bytes);
        let first = r.read_batch_ref().expect("read").expect("block");
        assert_eq!(first.len(), 100);
        assert_eq!(first.get(0), reqs[0]);
        // Next read reuses the same buffers; the previous view's
        // borrow has ended.
        let second = r.read_batch_ref().expect("read").expect("block");
        assert_eq!(second.get(0), reqs[100]);
    }

    #[test]
    fn slice_reader_rejects_header_damage() {
        let mut bytes = encode(&sample(10), 64);
        bytes[0] = b'X';
        let (_, err) = drain_slice(&bytes);
        assert!(matches!(err, Some(CbtError::BadMagic { .. })), "{err:?}");

        let mut bytes = encode(&sample(10), 64);
        bytes[8] = 0xff;
        let (_, err) = drain_slice(&bytes);
        assert!(
            matches!(err, Some(CbtError::UnsupportedVersion { found }) if found == 0x00ff),
            "{err:?}"
        );

        let (_, err) = drain_slice(&[]);
        assert!(matches!(err, Some(CbtError::BadMagic { .. })), "{err:?}");
    }

    #[test]
    fn slice_reader_poisons_on_mid_file_corruption() {
        let reqs = sample(300);
        let mut bytes = encode(&reqs, 100);
        let block0_payload =
            u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]) as usize;
        bytes[HEADER_LEN + 2 * BLOCK_HEADER_LEN + block0_payload + 5] ^= 0x01;
        let mut r = CbtSliceReader::new(&bytes);
        assert_eq!(
            r.read_batch_ref()
                .expect("block 0 intact")
                .expect("some")
                .len(),
            100
        );
        assert!(matches!(
            r.read_batch_ref().expect_err("damaged"),
            CbtError::ChecksumMismatch { block: 1, .. }
        ));
        for _ in 0..3 {
            assert!(matches!(
                r.read_batch_ref().expect_err("poisoned"),
                CbtError::Poisoned
            ));
        }
    }

    #[test]
    fn slice_reader_detects_truncation() {
        let bytes = encode(&sample(100), 64);
        for cut in [
            HEADER_LEN - 1,
            HEADER_LEN + 3,
            HEADER_LEN + BLOCK_HEADER_LEN + 10,
            bytes.len() - 1,
        ] {
            let (_, err) = drain_slice(&bytes[..cut]);
            assert!(err.is_some(), "cut at {cut} went undetected");
        }
    }

    #[test]
    fn slice_reader_registry_matches_buffered() {
        use cbs_obs::Registry;
        let reqs = sample(250);
        let bytes = encode(&reqs, 100);
        let buffered = Registry::new();
        let mut r = CbtReader::new(&bytes[..]).with_registry(&buffered);
        while r.read_batch().expect("clean").is_some() {}
        let sliced = Registry::new();
        let mut r = CbtSliceReader::new(&bytes).with_registry(&sliced);
        while r.read_batch_ref().expect("clean").is_some() {}
        for name in ["cbt.blocks", "cbt.records", "cbt.bytes", "cbt.crc_failures"] {
            assert_eq!(
                sliced.counter(name).get(),
                buffered.counter(name).get(),
                "{name}"
            );
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
        assert_eq!(get_varint(&buf, &mut pos), None);
    }

    #[test]
    fn compresses_sorted_traces() {
        // Sorted timestamps + sequential offsets: CBT must be far
        // smaller than the 5-column CSV equivalent (~40+ bytes/record).
        let reqs = sample(10_000);
        let bytes = encode(&reqs, DEFAULT_BLOCK_CAPACITY);
        let per_record = bytes.len() as f64 / reqs.len() as f64;
        assert!(
            per_record < 16.0,
            "CBT spent {per_record:.1} bytes/record on a friendly trace"
        );
    }
}
