//! Codec for the MSR Cambridge block-trace CSV format.
//!
//! Rows are `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`:
//!
//! ```text
//! 128166372003061629,hm,1,Read,383496192,32768,113736
//! 128166372016382155,src1,0,Write,8192,4096,23855
//! ```
//!
//! * `Timestamp` and `ResponseTime` — Windows 100 ns ticks (the former
//!   since 1601-01-01, the latter a duration);
//! * `Hostname` + `DiskNumber` — together identify a volume (e.g. the
//!   paper's `src1_0`); the reader assigns each distinct pair a dense
//!   [`VolumeId`] via [`VolumeRegistry`];
//! * `Type` — `Read` or `Write`;
//! * `Offset`, `Size` — bytes.
//!
//! Timestamps are normalized to microseconds (ticks / 10). The response
//! time is preserved on the side ([`MsrcRecord::response_time`]) because
//! the paper's analyses exclude latency but downstream users may want it.

use std::collections::HashMap;
use std::io::{BufRead, Write};

use crate::error::{ParseRecordError, TraceError};
use crate::{IoRequest, OpKind, TimeDelta, Timestamp, VolumeId};

use super::{field, field_bytes, parse_len, parse_len_bytes, parse_u64, parse_u64_bytes};

/// Number of Windows 100 ns ticks per microsecond.
const TICKS_PER_MICRO: u64 = 10;

/// One parsed MSRC row: the normalized request plus the fields the
/// normalized model does not carry (volume name, response time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsrcRecord {
    request: IoRequest,
    response_time: TimeDelta,
}

impl MsrcRecord {
    /// The normalized request.
    pub fn request(&self) -> &IoRequest {
        &self.request
    }

    /// Consumes the record, returning the normalized request.
    pub fn into_request(self) -> IoRequest {
        self.request
    }

    /// The recorded device response time.
    pub fn response_time(&self) -> TimeDelta {
        self.response_time
    }

    /// Rewrites the record's volume id — used by the parallel decoder to
    /// translate chunk-local registry ids into global ones.
    pub(crate) fn remap_volume(&mut self, id: VolumeId) {
        self.request = IoRequest::new(
            id,
            self.request.op(),
            self.request.offset(),
            self.request.len(),
            self.request.ts(),
        );
    }
}

/// Maps MSRC `(hostname, disk-number)` pairs to dense [`VolumeId`]s.
///
/// Ids are assigned in first-appearance order, so a single-threaded read
/// of a given file set is deterministic.
///
/// # Example
///
/// ```
/// use cbs_trace::codec::msrc::VolumeRegistry;
///
/// let mut reg = VolumeRegistry::new();
/// let a = reg.resolve("src1", 0);
/// let b = reg.resolve("hm", 1);
/// assert_ne!(a, b);
/// assert_eq!(reg.resolve("src1", 0), a); // stable
/// assert_eq!(reg.name_of(a), Some("src1_0"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct VolumeRegistry {
    by_name: HashMap<String, VolumeId>,
    names: Vec<String>,
}

impl VolumeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `(hostname, disk)`, assigning the next dense id
    /// on first sight.
    pub fn resolve(&mut self, hostname: &str, disk: u32) -> VolumeId {
        self.resolve_name(&format!("{hostname}_{disk}"))
    }

    /// Returns the id for a pre-joined `hostname_disk` name, assigning
    /// the next dense id on first sight. Used by the parallel decoder to
    /// merge chunk-local registries back into a global one while
    /// preserving first-appearance id order.
    pub fn resolve_name(&mut self, name: &str) -> VolumeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = VolumeId::new(self.names.len() as u32);
        self.by_name.insert(name.to_owned(), id);
        self.names.push(name.to_owned());
        id
    }

    /// Returns the `hostname_disk` name of a previously assigned id.
    pub fn name_of(&self, id: VolumeId) -> Option<&str> {
        self.names.get(id.as_usize()).map(String::as_str)
    }

    /// Returns the id previously assigned to `hostname_disk`, if any.
    pub fn lookup(&self, name: &str) -> Option<VolumeId> {
        self.by_name.get(name).copied()
    }

    /// Number of volumes registered so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no volume has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(VolumeId, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VolumeId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (VolumeId::new(i as u32), n.as_str()))
    }
}

/// Parses one MSRC CSV row, resolving the volume through `registry`.
///
/// # Errors
///
/// Returns a [`ParseRecordError`] describing the first malformed field.
pub fn parse_record(
    line: &str,
    registry: &mut VolumeRegistry,
) -> Result<MsrcRecord, ParseRecordError> {
    let mut fields = line.split(',');
    let timestamp = field(&mut fields, 0, "timestamp")?;
    let hostname = field(&mut fields, 1, "hostname")?;
    let disk = field(&mut fields, 2, "disk_number")?;
    let kind = field(&mut fields, 3, "type")?;
    let offset = field(&mut fields, 4, "offset")?;
    let size = field(&mut fields, 5, "size")?;
    let response = field(&mut fields, 6, "response_time")?;

    let ticks = parse_u64(timestamp, "timestamp")?;
    let disk = parse_u64(disk, "disk_number")?;
    let disk = u32::try_from(disk).map_err(|_| ParseRecordError::OutOfRange {
        name: "disk_number",
        text: disk.to_string(),
    })?;
    let op: OpKind = kind.parse().map_err(|_| ParseRecordError::InvalidOp {
        text: kind.to_owned(),
    })?;
    let offset = parse_u64(offset, "offset")?;
    let len = parse_len(size, "size")?;
    let response_ticks = parse_u64(response, "response_time")?;

    let volume = registry.resolve(hostname, disk);
    Ok(MsrcRecord {
        request: IoRequest::new(
            volume,
            op,
            offset,
            len,
            Timestamp::from_micros(ticks / TICKS_PER_MICRO),
        ),
        response_time: TimeDelta::from_micros(response_ticks / TICKS_PER_MICRO),
    })
}

/// Parses one MSRC CSV row directly from bytes — the allocation-light
/// fast path used by [`crate::codec::parallel::ParallelDecoder`]
/// (hostname interning aside, nothing is allocated per row).
///
/// Semantics match [`parse_record`] for ASCII input.
///
/// # Errors
///
/// Returns a [`ParseRecordError`] describing the first malformed field.
pub fn parse_record_bytes(
    line: &[u8],
    registry: &mut VolumeRegistry,
) -> Result<MsrcRecord, ParseRecordError> {
    let mut fields = line.split(|&b| b == b',');
    let timestamp = field_bytes(&mut fields, 0, "timestamp")?;
    let hostname = field_bytes(&mut fields, 1, "hostname")?;
    let disk = field_bytes(&mut fields, 2, "disk_number")?;
    let kind = field_bytes(&mut fields, 3, "type")?;
    let offset = field_bytes(&mut fields, 4, "offset")?;
    let size = field_bytes(&mut fields, 5, "size")?;
    let response = field_bytes(&mut fields, 6, "response_time")?;

    let ticks = parse_u64_bytes(timestamp, "timestamp")?;
    let disk = parse_u64_bytes(disk, "disk_number")?;
    let disk = u32::try_from(disk).map_err(|_| ParseRecordError::OutOfRange {
        name: "disk_number",
        text: disk.to_string(),
    })?;
    let op = match kind {
        b"R" | b"r" | b"Read" | b"read" | b"READ" => OpKind::Read,
        b"W" | b"w" | b"Write" | b"write" | b"WRITE" => OpKind::Write,
        _ => {
            return Err(ParseRecordError::InvalidOp {
                text: String::from_utf8_lossy(kind).into_owned(),
            })
        }
    };
    let offset = parse_u64_bytes(offset, "offset")?;
    let len = parse_len_bytes(size, "size")?;
    let response_ticks = parse_u64_bytes(response, "response_time")?;

    let volume = registry.resolve(&String::from_utf8_lossy(hostname), disk);
    Ok(MsrcRecord {
        request: IoRequest::new(
            volume,
            op,
            offset,
            len,
            Timestamp::from_micros(ticks / TICKS_PER_MICRO),
        ),
        response_time: TimeDelta::from_micros(response_ticks / TICKS_PER_MICRO),
    })
}

/// Formats a request (plus metadata) as one MSRC CSV row (no newline).
pub fn format_record(req: &IoRequest, hostname: &str, disk: u32, response: TimeDelta) -> String {
    format!(
        "{},{},{},{},{},{},{}",
        req.ts().as_micros() * TICKS_PER_MICRO,
        hostname,
        disk,
        req.op().as_word(),
        req.offset(),
        req.len(),
        response.as_micros() * TICKS_PER_MICRO,
    )
}

/// Streaming reader over MSRC CSV rows.
///
/// Yields [`MsrcRecord`]s; the volume registry is owned by the reader and
/// can be taken out afterwards via [`MsrcReader::into_registry`] (or
/// borrowed with [`MsrcReader::registry`]) to translate ids back to
/// `hostname_disk` names. A header line starting with `Timestamp,` is
/// skipped automatically.
#[derive(Debug)]
pub struct MsrcReader<R> {
    lines: std::io::Lines<R>,
    registry: VolumeRegistry,
    line_no: u64,
}

impl<R: BufRead> MsrcReader<R> {
    /// Creates a reader over `inner` with a fresh volume registry.
    pub fn new(inner: R) -> Self {
        Self::with_registry(inner, VolumeRegistry::new())
    }

    /// Creates a reader that continues assigning ids in an existing
    /// registry — used when reading a corpus split across many files.
    pub fn with_registry(inner: R, registry: VolumeRegistry) -> Self {
        MsrcReader {
            lines: inner.lines(),
            registry,
            line_no: 0,
        }
    }

    /// The registry accumulated so far.
    pub fn registry(&self) -> &VolumeRegistry {
        &self.registry
    }

    /// Consumes the reader, returning the registry.
    pub fn into_registry(self) -> VolumeRegistry {
        self.registry
    }
}

impl<R: BufRead> Iterator for MsrcReader<R> {
    type Item = Result<MsrcRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(e) => return Some(Err(TraceError::Io(e))),
            };
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if self.line_no == 1 && trimmed.starts_with("Timestamp,") {
                continue; // header
            }
            return Some(
                parse_record(trimmed, &mut self.registry)
                    .map_err(|e| TraceError::parse(self.line_no, e)),
            );
        }
    }
}

/// Streaming writer emitting MSRC CSV rows.
///
/// The writer needs the `hostname`/`disk` identity that [`IoRequest`]
/// does not carry, so rows are written through
/// [`MsrcWriter::write_record`] with explicit identity, or through
/// [`MsrcWriter::write_named`] using a `name` of the `hostname_disk`
/// form.
#[derive(Debug)]
pub struct MsrcWriter<W> {
    inner: W,
}

impl<W: Write> MsrcWriter<W> {
    /// Creates a writer over `inner`.
    pub fn new(inner: W) -> Self {
        MsrcWriter { inner }
    }

    /// Writes one row with explicit volume identity.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_record(
        &mut self,
        req: &IoRequest,
        hostname: &str,
        disk: u32,
        response: TimeDelta,
    ) -> std::io::Result<()> {
        writeln!(
            self.inner,
            "{}",
            format_record(req, hostname, disk, response)
        )
    }

    /// Writes one row deriving identity from a `hostname_disk` name
    /// (the last `_`-separated component is the disk number; if it does
    /// not parse, disk 0 is used and the whole name is the hostname).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_named(
        &mut self,
        req: &IoRequest,
        name: &str,
        response: TimeDelta,
    ) -> std::io::Result<()> {
        let (host, disk) = match name.rsplit_once('_') {
            Some((host, digits)) => match digits.parse::<u32>() {
                Ok(d) => (host, d),
                Err(_) => (name, 0),
            },
            None => (name, 0),
        };
        self.write_record(req, host, disk, response)
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROW: &str = "128166372003061629,hm,1,Read,383496192,32768,113736";

    #[test]
    fn parses_release_style_row() {
        let mut reg = VolumeRegistry::new();
        let rec = parse_record(ROW, &mut reg).unwrap();
        let r = rec.request();
        assert_eq!(r.volume(), VolumeId::new(0));
        assert_eq!(reg.name_of(r.volume()), Some("hm_1"));
        assert_eq!(r.op(), OpKind::Read);
        assert_eq!(r.offset(), 383_496_192);
        assert_eq!(r.len(), 32_768);
        // ticks / 10 = microseconds
        assert_eq!(r.ts().as_micros(), 12_816_637_200_306_162);
        assert_eq!(rec.response_time(), TimeDelta::from_micros(11_373));
    }

    #[test]
    fn registry_assigns_dense_stable_ids() {
        let mut reg = VolumeRegistry::new();
        let a = reg.resolve("src1", 0);
        let b = reg.resolve("src1", 1);
        let c = reg.resolve("hm", 0);
        assert_eq!(a, VolumeId::new(0));
        assert_eq!(b, VolumeId::new(1));
        assert_eq!(c, VolumeId::new(2));
        assert_eq!(reg.resolve("src1", 1), b);
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
        assert_eq!(reg.lookup("hm_0"), Some(c));
        assert_eq!(reg.lookup("nope_9"), None);
        let names: Vec<_> = reg.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(names, vec!["src1_0", "src1_1", "hm_0"]);
    }

    #[test]
    fn byte_parser_matches_str_parser() {
        let lines = [
            ROW,
            "128166372016382155,src1,0,Write,8192,4096,23855",
            " 1 , hm , 1 , read , 0 , 512 , 0 ",
            "1,hm,1,Erase,0,0,0",
            "1,hm,1,Read,0,512",
            "x,hm,1,Read,0,512,0",
            "1,hm,99999999999,Read,0,512,0",
        ];
        for line in lines {
            let mut reg_a = VolumeRegistry::new();
            let mut reg_b = VolumeRegistry::new();
            assert_eq!(
                parse_record_bytes(line.as_bytes(), &mut reg_a),
                parse_record(line, &mut reg_b),
                "{line:?}"
            );
            assert_eq!(reg_a.len(), reg_b.len());
        }
    }

    #[test]
    fn resolve_name_matches_resolve() {
        let mut reg = VolumeRegistry::new();
        let a = reg.resolve_name("src1_0");
        assert_eq!(reg.resolve("src1", 0), a);
        assert_eq!(reg.name_of(a), Some("src1_0"));
    }

    #[test]
    fn reader_skips_header_and_blank_lines() {
        let text = format!(
            "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n{ROW}\n\n{ROW}\n"
        );
        let reader = MsrcReader::new(text.as_bytes());
        let recs: Vec<_> = reader.collect::<Result<_, _>>().unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn reader_reports_line_numbers() {
        let text = format!("{ROW}\n128,hm,1,Erase,0,0,0\n");
        let results: Vec<_> = MsrcReader::new(text.as_bytes()).collect();
        assert!(results[0].is_ok());
        assert_eq!(results[1].as_ref().unwrap_err().line(), Some(2));
    }

    #[test]
    fn shared_registry_across_files() {
        let reader1 = MsrcReader::new(ROW.as_bytes());
        let (recs1, reg) = reader1.by_ref_collect();
        let reader2 = MsrcReader::with_registry(ROW.as_bytes(), reg);
        let recs2: Vec<_> = reader2.collect::<Result<_, _>>().unwrap();
        // Same (hostname, disk) pair resolves to the same id in file 2.
        assert_eq!(recs2[0].request().volume(), recs1[0].request().volume());
    }

    // Helper: collect records and return the registry too.
    trait ByRefCollect {
        fn by_ref_collect(self) -> (Vec<MsrcRecord>, VolumeRegistry);
    }
    impl<R: BufRead> ByRefCollect for MsrcReader<R> {
        fn by_ref_collect(mut self) -> (Vec<MsrcRecord>, VolumeRegistry) {
            let mut out = Vec::new();
            for item in &mut self {
                out.push(item.unwrap());
            }
            (out, self.into_registry())
        }
    }

    #[test]
    fn format_parse_roundtrip() {
        let req = IoRequest::new(
            VolumeId::new(0),
            OpKind::Write,
            8192,
            4096,
            Timestamp::from_micros(55),
        );
        let line = format_record(&req, "src1", 0, TimeDelta::from_micros(7));
        let mut reg = VolumeRegistry::new();
        let rec = parse_record(&line, &mut reg).unwrap();
        assert_eq!(rec.request(), &req);
        assert_eq!(rec.response_time(), TimeDelta::from_micros(7));
        assert_eq!(reg.name_of(VolumeId::new(0)), Some("src1_0"));
    }

    #[test]
    fn writer_named_splits_disk_suffix() {
        let req = IoRequest::new(
            VolumeId::new(0),
            OpKind::Read,
            0,
            512,
            Timestamp::from_micros(1),
        );
        let mut buf = Vec::new();
        {
            let mut w = MsrcWriter::new(&mut buf);
            w.write_named(&req, "proj_2", TimeDelta::ZERO).unwrap();
            w.write_named(&req, "weird", TimeDelta::ZERO).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().contains(",proj,2,"));
        assert!(lines.next().unwrap().contains(",weird,0,"));
    }

    #[test]
    fn missing_field_named() {
        let mut reg = VolumeRegistry::new();
        let e = parse_record("1,hm,1,Read,0,512", &mut reg).unwrap_err();
        assert!(matches!(
            e,
            ParseRecordError::MissingField {
                name: "response_time",
                ..
            }
        ));
    }

    #[test]
    fn into_request_moves_out() {
        let mut reg = VolumeRegistry::new();
        let rec = parse_record(ROW, &mut reg).unwrap();
        let req = rec.clone().into_request();
        assert_eq!(&req, rec.request());
    }
}
