//! Error types for trace parsing and I/O.

use core::fmt;
use std::io;

/// The reason a single trace record failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseRecordError {
    /// The row had fewer fields than the format requires.
    MissingField {
        /// Zero-based index of the missing field.
        index: usize,
        /// Human-readable name of the field.
        name: &'static str,
    },
    /// A numeric field failed to parse.
    InvalidNumber {
        /// Human-readable name of the field.
        name: &'static str,
        /// The offending text.
        text: String,
    },
    /// The operation-kind field was not recognized.
    InvalidOp {
        /// The offending text.
        text: String,
    },
    /// A field was out of the representable range (e.g. a request length
    /// exceeding `u32::MAX` bytes).
    OutOfRange {
        /// Human-readable name of the field.
        name: &'static str,
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for ParseRecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseRecordError::MissingField { index, name } => {
                write!(f, "missing field #{index} ({name})")
            }
            ParseRecordError::InvalidNumber { name, text } => {
                write!(f, "invalid number {text:?} in field {name}")
            }
            ParseRecordError::InvalidOp { text } => {
                write!(f, "invalid operation kind {text:?}")
            }
            ParseRecordError::OutOfRange { name, text } => {
                write!(f, "value {text:?} out of range for field {name}")
            }
        }
    }
}

impl std::error::Error for ParseRecordError {}

/// Error produced while reading a trace stream.
///
/// Wraps either an I/O failure or a per-record parse failure annotated
/// with its one-based line number.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A record failed to parse.
    Parse {
        /// One-based line number of the bad record.
        line: u64,
        /// What went wrong.
        source: ParseRecordError,
    },
}

impl TraceError {
    /// Creates a parse error at `line`.
    pub fn parse(line: u64, source: ParseRecordError) -> Self {
        TraceError::Parse { line, source }
    }

    /// Returns the line number for parse errors.
    pub fn line(&self) -> Option<u64> {
        match self {
            TraceError::Parse { line, .. } => Some(*line),
            TraceError::Io(_) => None,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, source } => {
                write!(f, "trace parse error at line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Parse { source, .. } => Some(source),
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Error produced while encoding or decoding the columnar binary trace
/// format ([CBT](crate::codec::cbt)).
#[derive(Debug)]
#[non_exhaustive]
pub enum CbtError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The stream does not start with the CBT magic bytes.
    BadMagic {
        /// The first bytes actually found.
        found: [u8; 8],
    },
    /// The stream is CBT but a newer, unknown version.
    UnsupportedVersion {
        /// The version number in the header.
        found: u16,
    },
    /// A block is structurally invalid (truncated, overlong, or its
    /// columns do not line up with the declared record count).
    Corrupt {
        /// Zero-based index of the bad block.
        block: u64,
        /// What was wrong with it.
        detail: &'static str,
    },
    /// A block's payload does not match its stored checksum.
    ChecksumMismatch {
        /// Zero-based index of the bad block.
        block: u64,
        /// Checksum stored in the block header.
        expected: u32,
        /// Checksum computed over the payload actually read.
        found: u32,
    },
    /// The reader already failed: every read after the first error
    /// returns this, so a corrupt or truncated stream can never be
    /// mistaken for a shorter-but-clean one by a caller that retries.
    Poisoned,
}

impl fmt::Display for CbtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CbtError::Io(e) => write!(f, "cbt i/o error: {e}"),
            CbtError::BadMagic { found } => {
                write!(f, "not a CBT stream (magic bytes {found:02x?})")
            }
            CbtError::UnsupportedVersion { found } => {
                write!(f, "unsupported CBT version {found}")
            }
            CbtError::Corrupt { block, detail } => {
                write!(f, "corrupt CBT block #{block}: {detail}")
            }
            CbtError::ChecksumMismatch {
                block,
                expected,
                found,
            } => {
                write!(
                    f,
                    "checksum mismatch in CBT block #{block}: stored {expected:#010x}, computed {found:#010x}"
                )
            }
            CbtError::Poisoned => {
                write!(f, "CBT reader is poisoned by an earlier decode error")
            }
        }
    }
}

impl std::error::Error for CbtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CbtError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CbtError {
    fn from(e: io::Error) -> Self {
        CbtError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn parse_error_carries_line() {
        let e = TraceError::parse(
            17,
            ParseRecordError::InvalidOp {
                text: "X".to_owned(),
            },
        );
        assert_eq!(e.line(), Some(17));
        let msg = e.to_string();
        assert!(msg.contains("line 17"), "{msg}");
        assert!(msg.contains("\"X\""), "{msg}");
        assert!(e.source().is_some());
    }

    #[test]
    fn io_error_wraps() {
        let e = TraceError::from(io::Error::other("boom"));
        assert_eq!(e.line(), None);
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn cbt_error_messages() {
        let cases: Vec<(CbtError, &str)> = vec![
            (CbtError::from(io::Error::other("disk gone")), "disk gone"),
            (
                CbtError::BadMagic {
                    found: *b"NOTMAGIC",
                },
                "not a CBT",
            ),
            (
                CbtError::UnsupportedVersion { found: 9 },
                "unsupported CBT version 9",
            ),
            (
                CbtError::Corrupt {
                    block: 3,
                    detail: "truncated payload",
                },
                "block #3",
            ),
            (
                CbtError::ChecksumMismatch {
                    block: 0,
                    expected: 1,
                    found: 2,
                },
                "checksum mismatch",
            ),
            (CbtError::Poisoned, "poisoned"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
        assert!(CbtError::from(io::Error::other("x")).source().is_some());
        assert!(CbtError::UnsupportedVersion { found: 9 }.source().is_none());
    }

    #[test]
    fn record_error_messages() {
        let cases: Vec<(ParseRecordError, &str)> = vec![
            (
                ParseRecordError::MissingField {
                    index: 2,
                    name: "offset",
                },
                "missing field #2",
            ),
            (
                ParseRecordError::InvalidNumber {
                    name: "length",
                    text: "abc".into(),
                },
                "invalid number",
            ),
            (
                ParseRecordError::OutOfRange {
                    name: "length",
                    text: "99999999999".into(),
                },
                "out of range",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
