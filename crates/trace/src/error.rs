//! Error types for trace parsing and I/O.

use core::fmt;
use std::io;

/// The reason a single trace record failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseRecordError {
    /// The row had fewer fields than the format requires.
    MissingField {
        /// Zero-based index of the missing field.
        index: usize,
        /// Human-readable name of the field.
        name: &'static str,
    },
    /// A numeric field failed to parse.
    InvalidNumber {
        /// Human-readable name of the field.
        name: &'static str,
        /// The offending text.
        text: String,
    },
    /// The operation-kind field was not recognized.
    InvalidOp {
        /// The offending text.
        text: String,
    },
    /// A field was out of the representable range (e.g. a request length
    /// exceeding `u32::MAX` bytes).
    OutOfRange {
        /// Human-readable name of the field.
        name: &'static str,
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for ParseRecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseRecordError::MissingField { index, name } => {
                write!(f, "missing field #{index} ({name})")
            }
            ParseRecordError::InvalidNumber { name, text } => {
                write!(f, "invalid number {text:?} in field {name}")
            }
            ParseRecordError::InvalidOp { text } => {
                write!(f, "invalid operation kind {text:?}")
            }
            ParseRecordError::OutOfRange { name, text } => {
                write!(f, "value {text:?} out of range for field {name}")
            }
        }
    }
}

impl std::error::Error for ParseRecordError {}

/// Error produced while reading a trace stream.
///
/// Wraps either an I/O failure or a per-record parse failure annotated
/// with its one-based line number.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A record failed to parse.
    Parse {
        /// One-based line number of the bad record.
        line: u64,
        /// What went wrong.
        source: ParseRecordError,
    },
}

impl TraceError {
    /// Creates a parse error at `line`.
    pub fn parse(line: u64, source: ParseRecordError) -> Self {
        TraceError::Parse { line, source }
    }

    /// Returns the line number for parse errors.
    pub fn line(&self) -> Option<u64> {
        match self {
            TraceError::Parse { line, .. } => Some(*line),
            TraceError::Io(_) => None,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, source } => {
                write!(f, "trace parse error at line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Parse { source, .. } => Some(source),
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn parse_error_carries_line() {
        let e = TraceError::parse(
            17,
            ParseRecordError::InvalidOp {
                text: "X".to_owned(),
            },
        );
        assert_eq!(e.line(), Some(17));
        let msg = e.to_string();
        assert!(msg.contains("line 17"), "{msg}");
        assert!(msg.contains("\"X\""), "{msg}");
        assert!(e.source().is_some());
    }

    #[test]
    fn io_error_wraps() {
        let e = TraceError::from(io::Error::other("boom"));
        assert_eq!(e.line(), None);
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn record_error_messages() {
        let cases: Vec<(ParseRecordError, &str)> = vec![
            (
                ParseRecordError::MissingField {
                    index: 2,
                    name: "offset",
                },
                "missing field #2",
            ),
            (
                ParseRecordError::InvalidNumber {
                    name: "length",
                    text: "abc".into(),
                },
                "invalid number",
            ),
            (
                ParseRecordError::OutOfRange {
                    name: "length",
                    text: "99999999999".into(),
                },
                "out of range",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
