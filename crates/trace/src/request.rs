//! The normalized block-level I/O request record: [`IoRequest`].

use core::fmt;

use crate::{OpKind, Timestamp, VolumeId};

/// One block-level I/O request, normalized across trace formats.
///
/// This is the unit record every analysis in the workbench consumes. It
/// carries exactly the five fields common to the AliCloud and MSRC trace
/// releases: volume, operation kind, byte offset, byte length, and
/// timestamp. The struct is 32 bytes and `Copy`, so traces of tens of
/// millions of requests fit comfortably in memory and iterate at memory
/// bandwidth.
///
/// # Example
///
/// ```
/// use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};
///
/// let r = IoRequest::new(
///     VolumeId::new(1),
///     OpKind::Write,
///     4096,
///     16384,
///     Timestamp::from_secs(2),
/// );
/// assert_eq!(r.end_offset(), 4096 + 16384);
/// assert!(r.op().is_write());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IoRequest {
    volume: VolumeId,
    op: OpKind,
    offset: u64,
    len: u32,
    ts: Timestamp,
}

impl IoRequest {
    /// Creates a request.
    ///
    /// `offset` and `len` are in bytes; `len` may be zero (a handful of
    /// zero-length records exist in the real corpora and are preserved by
    /// the codecs — analyses decide how to treat them).
    #[inline]
    pub const fn new(volume: VolumeId, op: OpKind, offset: u64, len: u32, ts: Timestamp) -> Self {
        IoRequest {
            volume,
            op,
            offset,
            len,
            ts,
        }
    }

    /// The volume this request targets.
    #[inline]
    pub const fn volume(&self) -> VolumeId {
        self.volume
    }

    /// The operation kind.
    #[inline]
    pub const fn op(&self) -> OpKind {
        self.op
    }

    /// The starting byte offset within the volume.
    #[inline]
    pub const fn offset(&self) -> u64 {
        self.offset
    }

    /// The request length in bytes.
    #[inline]
    pub const fn len(&self) -> u32 {
        self.len
    }

    /// Returns `true` if the request length is zero.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The submission timestamp.
    #[inline]
    pub const fn ts(&self) -> Timestamp {
        self.ts
    }

    /// The first byte offset past the end of the request.
    #[inline]
    pub const fn end_offset(&self) -> u64 {
        self.offset + self.len as u64
    }

    /// Returns `true` if this request is a read.
    #[inline]
    pub const fn is_read(&self) -> bool {
        self.op.is_read()
    }

    /// Returns `true` if this request is a write.
    #[inline]
    pub const fn is_write(&self) -> bool {
        self.op.is_write()
    }

    /// Returns a copy of this request re-targeted at another volume.
    ///
    /// Useful when stitching per-volume streams into a corpus.
    #[inline]
    pub const fn with_volume(mut self, volume: VolumeId) -> Self {
        self.volume = volume;
        self
    }

    /// Returns a copy of this request with the timestamp shifted by
    /// `delta` microseconds forward.
    #[inline]
    pub fn shifted_by(mut self, delta: crate::TimeDelta) -> Self {
        self.ts += delta;
        self
    }

    /// Returns the absolute distance in bytes between this request's start
    /// offset and `other_offset`.
    ///
    /// This is the primitive of the paper's randomness metric (Finding 8):
    /// a request is *random* when the minimum such distance to the previous
    /// 32 requests exceeds a threshold (128 KiB by default).
    #[inline]
    pub const fn offset_distance(&self, other_offset: u64) -> u64 {
        self.offset.abs_diff(other_offset)
    }
}

impl fmt::Display for IoRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} off={} len={} @{}",
            self.volume, self.op, self.offset, self.len, self.ts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimeDelta;

    fn req() -> IoRequest {
        IoRequest::new(
            VolumeId::new(9),
            OpKind::Read,
            10_000,
            512,
            Timestamp::from_millis(5),
        )
    }

    #[test]
    fn accessors() {
        let r = req();
        assert_eq!(r.volume(), VolumeId::new(9));
        assert_eq!(r.op(), OpKind::Read);
        assert_eq!(r.offset(), 10_000);
        assert_eq!(r.len(), 512);
        assert_eq!(r.ts(), Timestamp::from_millis(5));
        assert_eq!(r.end_offset(), 10_512);
        assert!(r.is_read());
        assert!(!r.is_write());
        assert!(!r.is_empty());
    }

    #[test]
    fn zero_length_requests_are_representable() {
        let r = IoRequest::new(VolumeId::new(0), OpKind::Write, 0, 0, Timestamp::ZERO);
        assert!(r.is_empty());
        assert_eq!(r.end_offset(), 0);
    }

    #[test]
    fn with_volume_retargets() {
        let r = req().with_volume(VolumeId::new(3));
        assert_eq!(r.volume(), VolumeId::new(3));
        assert_eq!(r.offset(), 10_000);
    }

    #[test]
    fn shifted_by_moves_timestamp() {
        let r = req().shifted_by(TimeDelta::from_millis(10));
        assert_eq!(r.ts(), Timestamp::from_millis(15));
    }

    #[test]
    fn offset_distance_is_symmetric() {
        let r = req();
        assert_eq!(r.offset_distance(10_100), 100);
        assert_eq!(r.offset_distance(9_900), 100);
        assert_eq!(r.offset_distance(10_000), 0);
    }

    #[test]
    fn record_is_compact() {
        assert!(std::mem::size_of::<IoRequest>() <= 32);
    }
}
