//! Read-only memory-mapped files: [`Mmap`].
//!
//! The zero-copy CBT path ([`crate::codec::cbt::CbtSliceReader`]) wants
//! the whole trace visible as one `&[u8]` so block payloads can be
//! decoded in place, without a read + memcpy per block. On Unix this
//! module maps the file with `mmap(2)` (private, read-only) and lets
//! the page cache feed the decoder directly; elsewhere it falls back to
//! reading the file into an anonymous buffer, keeping the same API.
//!
//! No external crate is pulled in: the two syscalls are declared
//! directly against the C library that `std` already links. The unsafe
//! surface is confined to this module (the crate root carries
//! `#![deny(unsafe_code)]` with a local allow here), and every unsafe
//! block carries a `SAFETY:` justification checked by `cbs-lint`.
//!
//! # Example
//!
//! ```no_run
//! # fn main() -> std::io::Result<()> {
//! let map = cbs_trace::Mmap::open("trace.cbt")?;
//! let bytes: &[u8] = &map;
//! println!("{} bytes mapped", bytes.len());
//! # Ok(())
//! # }
//! ```

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// A read-only mapping of an entire file.
///
/// Dereferences to `&[u8]` covering the file's contents at open time.
/// The mapping is private (`MAP_PRIVATE`): later writes to the file by
/// other processes may or may not become visible, exactly as with any
/// `mmap(2)` of a file being appended to — callers that need a stable
/// snapshot should map files that are no longer being written.
#[derive(Debug)]
pub struct Mmap {
    inner: imp::Map,
}

impl Mmap {
    /// Maps `path` read-only in its entirety.
    ///
    /// Empty files yield an empty slice (no mapping is created, since
    /// `mmap(2)` rejects zero-length maps).
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Mmap> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        Ok(Mmap {
            inner: imp::Map::new(&file, len)?,
        })
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        self.inner.as_slice()
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Returns `true` for an empty (zero-length) file.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

// allow (not forbid) for this module only: mapping a file and handing
// out `&[u8]` is irreducibly unsafe, so the unsafe surface lives here
// behind a safe `Map` wrapper, with a SAFETY comment per call site.
// Miri has no mmap(2): under interpretation the buffered fallback
// below runs instead, keeping the Miri lane (`CHECK_SANITIZERS=1` in
// scripts/check.sh) able to drive the slice-reader end to end.
#[cfg(all(unix, not(miri)))]
#[allow(unsafe_code)]
mod imp {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;
    use std::ptr;

    // POSIX mmap(2)/munmap(2). `std` already links the platform C
    // library, so declaring the two symbols avoids an external crate.
    // Constants per POSIX (identical across Linux and the BSDs for
    // these three).
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    // SAFETY: signatures transcribed from mmap(2)/munmap(2); the
    // 64-bit `off_t` matches every Tier-1 Unix target (Linux with
    // 64-bit off_t, macOS, the BSDs).
    unsafe extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// Owned pointer + length of one live mapping (null for empty
    /// files, which are never actually mapped).
    #[derive(Debug)]
    pub(super) struct Map {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ-only and owned exclusively by
    // this struct; shared references to immutable bytes are Send+Sync.
    unsafe impl Send for Map {}
    // SAFETY: see above — no interior mutability, read-only pages.
    unsafe impl Sync for Map {}

    impl Map {
        pub(super) fn new(file: &File, len: usize) -> io::Result<Map> {
            if len == 0 {
                return Ok(Map {
                    ptr: ptr::null_mut(),
                    len: 0,
                });
            }
            // SAFETY: fd is a valid open file descriptor for the whole
            // call, len is non-zero and no larger than the file, and a
            // null addr lets the kernel pick the placement.
            let ptr = unsafe {
                mmap(
                    ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        #[inline]
        pub(super) fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: ptr..ptr+len is a live PROT_READ mapping owned by
            // self; it stays valid for the lifetime of the borrow and
            // nothing in this process writes through it.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            if !self.ptr.is_null() {
                // SAFETY: exactly the region returned by mmap in `new`,
                // unmapped once (ptr is never cloned out of the struct).
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(any(not(unix), miri))]
mod imp {
    use std::fs::File;
    use std::io::{self, Read};

    /// Portable fallback: the file is read into an owned buffer.
    /// Also the implementation under Miri, which interprets no
    /// foreign code.
    #[derive(Debug)]
    pub(super) struct Map {
        bytes: Vec<u8>,
    }

    impl Map {
        pub(super) fn new(file: &File, len: usize) -> io::Result<Map> {
            let mut bytes = Vec::with_capacity(len);
            let mut file = file;
            file.read_to_end(&mut bytes)?;
            Ok(Map { bytes })
        }

        #[inline]
        pub(super) fn as_slice(&self) -> &[u8] {
            &self.bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cbs-trace-mmap-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .expect("create")
            .write_all(&payload)
            .expect("write");
        let map = Mmap::open(&path).expect("map");
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        assert_eq!(&map[..], &payload[..]);
        assert_eq!(map.as_ref(), &payload[..]);
        drop(map);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).expect("create");
        let map = Mmap::open(&path).expect("map");
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(&map[..], &[] as &[u8]);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn missing_file_errors() {
        assert!(Mmap::open(temp_path("missing-never-created")).is_err());
    }
}
