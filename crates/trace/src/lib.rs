//! Block-level I/O trace data model and codecs.
//!
//! `cbs-trace` is the foundation crate of the *cbs-workbench*: it defines
//! the in-memory representation of block-level I/O requests and the on-disk
//! codecs for the two trace families analyzed by the IISWC'20 study
//! *"An In-Depth Analysis of Cloud Block Storage Workloads in Large-Scale
//! Production"*:
//!
//! * the **AliCloud** format released at `github.com/alibaba/block-traces`
//!   (`device_id,opcode,offset,length,timestamp` CSV rows, timestamps in
//!   microseconds), parsed by [`codec::alicloud`];
//! * the **MSRC** format released by Microsoft Research Cambridge on SNIA
//!   (`Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime` CSV
//!   rows, timestamps in Windows 100 ns ticks), parsed by [`codec::msrc`].
//!
//! Both codecs normalize into the same [`IoRequest`] record so that every
//! downstream analysis is format-agnostic.
//!
//! # Example
//!
//! ```
//! use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};
//! use cbs_trace::codec::alicloud::{AliCloudReader, AliCloudWriter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Write two requests in the AliCloud CSV format...
//! let mut buf = Vec::new();
//! {
//!     let mut w = AliCloudWriter::new(&mut buf);
//!     w.write_request(&IoRequest::new(
//!         VolumeId::new(3),
//!         OpKind::Write,
//!         4096,
//!         8192,
//!         Timestamp::from_micros(1_000_000),
//!     ))?;
//!     w.write_request(&IoRequest::new(
//!         VolumeId::new(3),
//!         OpKind::Read,
//!         0,
//!         4096,
//!         Timestamp::from_micros(2_000_000),
//!     ))?;
//! }
//!
//! // ...and read them back.
//! let reqs: Vec<IoRequest> = AliCloudReader::new(&buf[..])
//!     .collect::<Result<_, _>>()?;
//! assert_eq!(reqs.len(), 2);
//! assert_eq!(reqs[0].op(), OpKind::Write);
//! assert_eq!(reqs[1].len(), 4096);
//! # Ok(())
//! # }
//! ```

// deny (not forbid): the mmap module needs a local allow(unsafe_code)
// for the two mmap(2)/munmap(2) calls backing the zero-copy reader.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod block;
pub mod codec;
pub mod error;
pub mod hash;
pub mod iter;
pub mod mmap;
pub mod op;
pub mod request;
pub mod slice;
pub mod time;
pub mod trace;
pub mod volume;

pub use batch::{BlockAccessColumn, RequestBatch, RequestBatchRef};
pub use block::{BlockId, BlockSize, BlockSpan};
pub use codec::cbt::{CbtReader, CbtSliceReader, CbtWriter};
pub use codec::parallel::{DecodeStats, ParallelDecoder};
pub use error::{CbtError, ParseRecordError, TraceError};
pub use iter::MergeByTime;
pub use mmap::Mmap;
pub use op::OpKind;
pub use request::IoRequest;
pub use time::{TimeDelta, Timestamp};
pub use trace::{Trace, VolumeView};
pub use volume::VolumeId;
