//! Volume identity: [`VolumeId`].

use core::fmt;

/// Identifier of a virtual disk (*volume*) within a trace corpus.
///
/// In the AliCloud release this is the `device_id` column; in the MSRC
/// release it is a dense id assigned to each `(hostname, disk-number)`
/// pair by the reader (see [`crate::codec::msrc::VolumeRegistry`]).
///
/// # Example
///
/// ```
/// use cbs_trace::VolumeId;
///
/// let v = VolumeId::new(42);
/// assert_eq!(v.get(), 42);
/// assert_eq!(v.to_string(), "vol-42");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VolumeId(u32);

impl VolumeId {
    /// Creates a volume id from its raw integer value.
    #[inline]
    pub const fn new(id: u32) -> Self {
        VolumeId(id)
    }

    /// Returns the raw integer value.
    #[inline]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize`, convenient for indexing dense
    /// per-volume arrays.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VolumeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vol-{}", self.0)
    }
}

impl From<u32> for VolumeId {
    #[inline]
    fn from(id: u32) -> Self {
        VolumeId(id)
    }
}

impl From<VolumeId> for u32 {
    #[inline]
    fn from(v: VolumeId) -> u32 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_raw_value() {
        let v = VolumeId::new(7);
        assert_eq!(v.get(), 7);
        assert_eq!(u32::from(v), 7);
        assert_eq!(VolumeId::from(7u32), v);
        assert_eq!(v.as_usize(), 7usize);
    }

    #[test]
    fn orders_by_raw_value() {
        assert!(VolumeId::new(1) < VolumeId::new(2));
        assert_eq!(VolumeId::default(), VolumeId::new(0));
    }

    #[test]
    fn display_format() {
        assert_eq!(VolumeId::new(1000).to_string(), "vol-1000");
    }
}
