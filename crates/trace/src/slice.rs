//! Trace slicing and filtering: time windows, volume subsets, and
//! op-kind projections.
//!
//! Field studies routinely analyze sub-traces — one day of a corpus,
//! the top-k volumes, reads only (the paper's Finding 7 removes writes
//! entirely). These helpers produce new [`Trace`]s without touching
//! the originals.

use std::collections::HashSet;

use crate::{IoRequest, OpKind, Timestamp, Trace, VolumeId};

impl Trace {
    /// Returns the sub-trace of requests with `start <= ts < end`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    ///
    /// # Example
    ///
    /// ```
    /// use cbs_trace::{IoRequest, OpKind, Timestamp, Trace, VolumeId};
    ///
    /// let mk = |s| IoRequest::new(VolumeId::new(0), OpKind::Read, 0, 512, Timestamp::from_secs(s));
    /// let trace = Trace::from_requests(vec![mk(10), mk(20), mk(30)]);
    /// let window = trace.slice_time(Timestamp::from_secs(15), Timestamp::from_secs(30));
    /// assert_eq!(window.request_count(), 1);
    /// ```
    pub fn slice_time(&self, start: Timestamp, end: Timestamp) -> Trace {
        assert!(start < end, "empty time window");
        self.requests()
            .iter()
            .filter(|r| r.ts() >= start && r.ts() < end)
            .copied()
            .collect()
    }

    /// Returns the sub-trace of one day (day `index`, midnight to
    /// midnight relative to the trace epoch).
    pub fn slice_day(&self, index: u64) -> Trace {
        self.slice_time(Timestamp::from_days(index), Timestamp::from_days(index + 1))
    }

    /// Returns the sub-trace containing only the given volumes.
    pub fn filter_volumes<I>(&self, volumes: I) -> Trace
    where
        I: IntoIterator<Item = VolumeId>,
    {
        let keep: HashSet<VolumeId> = volumes.into_iter().collect();
        self.requests()
            .iter()
            .filter(|r| keep.contains(&r.volume()))
            .copied()
            .collect()
    }

    /// Returns the sub-trace of one operation kind — e.g.
    /// `filter_op(OpKind::Read)` is the paper's "removing write
    /// requests" experiment (Finding 7).
    pub fn filter_op(&self, op: OpKind) -> Trace {
        self.requests()
            .iter()
            .filter(|r| r.op() == op)
            .copied()
            .collect()
    }

    /// Returns the sub-trace matching an arbitrary predicate.
    pub fn filter<F>(&self, mut predicate: F) -> Trace
    where
        F: FnMut(&IoRequest) -> bool,
    {
        self.requests()
            .iter()
            .filter(|r| predicate(r))
            .copied()
            .collect()
    }

    /// The `k` volumes with the most requests, descending; useful for
    /// top-traffic analyses (Fig. 10(b)).
    pub fn top_volumes_by_requests(&self, k: usize) -> Vec<VolumeId> {
        let mut counts: Vec<(VolumeId, usize)> =
            self.volumes().map(|v| (v.id(), v.len())).collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        counts.truncate(k);
        counts.into_iter().map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(v: u32, op: OpKind, secs: u64) -> IoRequest {
        IoRequest::new(
            VolumeId::new(v),
            op,
            u64::from(v) * 4096,
            512,
            Timestamp::from_secs(secs),
        )
    }

    fn sample() -> Trace {
        Trace::from_requests(vec![
            mk(0, OpKind::Read, 10),
            mk(0, OpKind::Write, 90_000), // day 1
            mk(1, OpKind::Write, 20),
            mk(1, OpKind::Write, 30),
            mk(2, OpKind::Read, 100_000), // day 1
        ])
    }

    #[test]
    fn time_slice_is_half_open() {
        let t = sample();
        let w = t.slice_time(Timestamp::from_secs(20), Timestamp::from_secs(30));
        assert_eq!(w.request_count(), 1);
        assert_eq!(w.requests()[0].ts(), Timestamp::from_secs(20));
    }

    #[test]
    fn day_slice() {
        let t = sample();
        assert_eq!(t.slice_day(0).request_count(), 3);
        assert_eq!(t.slice_day(1).request_count(), 2);
        assert_eq!(t.slice_day(2).request_count(), 0);
    }

    #[test]
    #[should_panic(expected = "empty time window")]
    fn rejects_empty_window() {
        let _ = sample().slice_time(Timestamp::from_secs(5), Timestamp::from_secs(5));
    }

    #[test]
    fn volume_filter() {
        let t = sample();
        let sub = t.filter_volumes([VolumeId::new(0), VolumeId::new(2)]);
        assert_eq!(sub.volume_count(), 2);
        assert_eq!(sub.request_count(), 3);
        assert!(sub.volume(VolumeId::new(1)).is_none());
    }

    #[test]
    fn op_filter_reproduces_finding7_setup() {
        let t = sample();
        let reads_only = t.filter_op(OpKind::Read);
        assert_eq!(reads_only.request_count(), 2);
        assert!(reads_only.requests().iter().all(IoRequest::is_read));
        // volume 1 disappears entirely without writes
        assert!(reads_only.volume(VolumeId::new(1)).is_none());
    }

    #[test]
    fn arbitrary_predicate() {
        let t = sample();
        let big_offsets = t.filter(|r| r.offset() >= 4096);
        assert_eq!(big_offsets.request_count(), 3);
    }

    #[test]
    fn top_volumes_ranking() {
        let t = sample();
        let top = t.top_volumes_by_requests(2);
        assert_eq!(top[0], VolumeId::new(0)); // 2 requests, lowest id tie-break
        assert_eq!(top[1], VolumeId::new(1));
        assert_eq!(t.top_volumes_by_requests(100).len(), 3);
    }
}
