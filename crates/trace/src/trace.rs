//! In-memory trace container: [`Trace`] and [`VolumeView`].

use std::collections::HashMap;
use std::ops::Range;

use crate::iter::{is_sorted_by_time, MergeByTime};
use crate::{IoRequest, TimeDelta, Timestamp, VolumeId};

/// An in-memory trace: requests grouped by volume, each volume's
/// requests sorted by timestamp.
///
/// MERGEABLE: traces form a commutative monoid under [`merge`]
/// (request multisets union and re-canonicalize into volume-major
/// time order; the empty trace is the identity), so per-partition
/// sub-traces reassemble into the corpus in any grouping order.
///
/// [`merge`]: Trace::merge
///
/// Every analysis in the workbench is defined per volume first and
/// aggregated per corpus second (exactly the paper's methodology), so the
/// canonical layout is *volume-major*: one contiguous, time-sorted run of
/// requests per volume. A globally time-ordered view is available through
/// [`Trace::iter_time_ordered`] when needed.
///
/// # Example
///
/// ```
/// use cbs_trace::{IoRequest, OpKind, Timestamp, Trace, VolumeId};
///
/// let mk = |v: u32, us: u64| {
///     IoRequest::new(VolumeId::new(v), OpKind::Write, 0, 4096, Timestamp::from_micros(us))
/// };
/// let trace = Trace::from_requests(vec![mk(1, 20), mk(0, 10), mk(1, 5)]);
/// assert_eq!(trace.volume_count(), 2);
/// assert_eq!(trace.request_count(), 3);
/// let v1 = trace.volume(VolumeId::new(1)).unwrap();
/// assert_eq!(v1.requests().len(), 2);
/// assert_eq!(v1.requests()[0].ts().as_micros(), 5); // time-sorted
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Volume-major storage: all requests of a volume are contiguous and
    /// time-sorted.
    requests: Vec<IoRequest>,
    /// Per-volume ranges into `requests`, sorted by volume id.
    index: Vec<(VolumeId, Range<usize>)>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trace from requests in any order.
    ///
    /// Requests are sorted by `(volume, timestamp)`; the sort is stable,
    /// so records with equal keys keep their input order. Input that is
    /// already in volume-major time order (e.g. the output of
    /// [`Trace::requests`] or a per-volume generator) is detected with
    /// one linear scan and not re-sorted.
    pub fn from_requests(mut requests: Vec<IoRequest>) -> Self {
        let sorted = requests
            .windows(2)
            .all(|w| (w[0].volume(), w[0].ts()) <= (w[1].volume(), w[1].ts()));
        if !sorted {
            requests.sort_by_key(|r| (r.volume(), r.ts()));
        }
        let mut index: Vec<(VolumeId, Range<usize>)> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            match index.last_mut() {
                Some((vol, range)) if *vol == req.volume() => range.end = i + 1,
                _ => index.push((req.volume(), i..i + 1)),
            }
        }
        Trace { requests, index }
    }

    /// Builds a trace from a fallible record stream (e.g. a codec
    /// reader), stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first error produced by the stream.
    pub fn from_records<I, E>(records: I) -> Result<Self, E>
    where
        I: IntoIterator<Item = Result<IoRequest, E>>,
    {
        let requests = records.into_iter().collect::<Result<Vec<_>, E>>()?;
        Ok(Self::from_requests(requests))
    }

    /// Total number of requests.
    pub fn request_count(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` if the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Number of distinct volumes.
    pub fn volume_count(&self) -> usize {
        self.index.len()
    }

    /// The ids of all volumes, ascending.
    pub fn volume_ids(&self) -> impl Iterator<Item = VolumeId> + '_ {
        self.index.iter().map(|(v, _)| *v)
    }

    /// Returns the view of one volume, or `None` if it has no requests.
    pub fn volume(&self, id: VolumeId) -> Option<VolumeView<'_>> {
        let pos = self.index.binary_search_by_key(&id, |(v, _)| *v).ok()?;
        let (vol, range) = &self.index[pos];
        Some(VolumeView {
            id: *vol,
            requests: &self.requests[range.clone()],
        })
    }

    /// Iterates over per-volume views, ascending by volume id.
    pub fn volumes(&self) -> impl Iterator<Item = VolumeView<'_>> + '_ {
        self.index.iter().map(|(v, range)| VolumeView {
            id: *v,
            requests: &self.requests[range.clone()],
        })
    }

    /// All requests in volume-major order.
    pub fn requests(&self) -> &[IoRequest] {
        &self.requests
    }

    /// Iterates over all requests in global timestamp order
    /// (k-way merging the per-volume runs).
    pub fn iter_time_ordered(&self) -> impl Iterator<Item = IoRequest> + '_ {
        let sources: Vec<_> = self
            .volumes()
            .map(|v| v.requests().iter().copied())
            .collect();
        MergeByTime::new(sources)
    }

    /// The earliest timestamp in the trace, if non-empty.
    pub fn start(&self) -> Option<Timestamp> {
        self.volumes().filter_map(|v| v.start()).min()
    }

    /// The latest timestamp in the trace, if non-empty.
    pub fn end(&self) -> Option<Timestamp> {
        self.volumes().filter_map(|v| v.end()).max()
    }

    /// The elapsed time between the first and last request, if non-empty.
    pub fn span(&self) -> Option<TimeDelta> {
        Some(self.end()? - self.start()?)
    }

    /// Splits the trace into per-volume request vectors.
    pub fn into_per_volume(self) -> HashMap<VolumeId, Vec<IoRequest>> {
        let mut out: HashMap<VolumeId, Vec<IoRequest>> = HashMap::new();
        let requests = self.requests;
        for (vol, range) in self.index {
            out.insert(vol, requests[range].to_vec());
        }
        out
    }

    /// Merges another trace into this one.
    ///
    /// The result is `from_requests` of the concatenated request
    /// multisets: canonical volume-major time order, independent of
    /// which side a request came from (the stable sort breaks
    /// `(volume, timestamp)` ties by concatenation order, so partition
    /// schemes that keep each volume whole merge bit-identically).
    pub fn merge(self, other: Trace) -> Trace {
        let mut requests = self.requests;
        requests.extend(other.requests);
        Trace::from_requests(requests)
    }
}

impl FromIterator<IoRequest> for Trace {
    fn from_iter<I: IntoIterator<Item = IoRequest>>(iter: I) -> Self {
        Trace::from_requests(iter.into_iter().collect())
    }
}

impl Extend<IoRequest> for Trace {
    fn extend<I: IntoIterator<Item = IoRequest>>(&mut self, iter: I) {
        let mut requests = std::mem::take(&mut self.requests);
        requests.extend(iter);
        *self = Trace::from_requests(requests);
    }
}

/// A borrowed view of one volume's time-sorted requests.
#[derive(Debug, Clone, Copy)]
pub struct VolumeView<'a> {
    id: VolumeId,
    requests: &'a [IoRequest],
}

impl<'a> VolumeView<'a> {
    /// Creates a view over externally managed requests.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is not sorted by timestamp or if any request
    /// targets a different volume than `id`.
    pub fn new(id: VolumeId, requests: &'a [IoRequest]) -> Self {
        assert!(
            is_sorted_by_time(requests),
            "volume view requires time-sorted requests"
        );
        assert!(
            requests.iter().all(|r| r.volume() == id),
            "volume view requires homogeneous volume ids"
        );
        VolumeView { id, requests }
    }

    /// The volume id.
    pub fn id(&self) -> VolumeId {
        self.id
    }

    /// The volume's requests, time-sorted.
    pub fn requests(&self) -> &'a [IoRequest] {
        self.requests
    }

    /// Returns `true` if the volume has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Timestamp of the first request.
    pub fn start(&self) -> Option<Timestamp> {
        self.requests.first().map(|r| r.ts())
    }

    /// Timestamp of the last request.
    pub fn end(&self) -> Option<Timestamp> {
        self.requests.last().map(|r| r.ts())
    }

    /// Elapsed time between first and last request.
    pub fn span(&self) -> Option<TimeDelta> {
        Some(self.end()? - self.start()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    fn mk(v: u32, us: u64) -> IoRequest {
        IoRequest::new(
            VolumeId::new(v),
            OpKind::Read,
            u64::from(v) * 1000,
            512,
            Timestamp::from_micros(us),
        )
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.volume_count(), 0);
        assert_eq!(t.start(), None);
        assert_eq!(t.end(), None);
        assert_eq!(t.span(), None);
        assert_eq!(t.iter_time_ordered().count(), 0);
    }

    #[test]
    fn groups_by_volume_and_sorts_by_time() {
        let t = Trace::from_requests(vec![mk(1, 30), mk(0, 20), mk(1, 10), mk(0, 40)]);
        assert_eq!(t.volume_count(), 2);
        let ids: Vec<_> = t.volume_ids().collect();
        assert_eq!(ids, vec![VolumeId::new(0), VolumeId::new(1)]);
        let v1 = t.volume(VolumeId::new(1)).unwrap();
        assert_eq!(
            v1.requests()
                .iter()
                .map(|r| r.ts().as_micros())
                .collect::<Vec<_>>(),
            vec![10, 30]
        );
        assert_eq!(v1.id(), VolumeId::new(1));
        assert_eq!(v1.len(), 2);
        assert!(!v1.is_empty());
    }

    #[test]
    fn presorted_input_builds_identical_trace() {
        // Behavior preservation for the is-sorted fast path: shuffled
        // input and already-volume-major input produce the same trace,
        // including the stable order of duplicate (volume, ts) keys.
        let shuffled = vec![mk(1, 30), mk(0, 20), mk(1, 10), mk(0, 40), mk(1, 10)];
        let a = Trace::from_requests(shuffled);
        let b = Trace::from_requests(a.requests().to_vec());
        assert_eq!(a.requests(), b.requests());
        assert_eq!(
            a.volume_ids().collect::<Vec<_>>(),
            b.volume_ids().collect::<Vec<_>>()
        );
        for v in a.volume_ids() {
            assert_eq!(
                a.volume(v).unwrap().requests(),
                b.volume(v).unwrap().requests()
            );
        }
    }

    #[test]
    fn missing_volume_is_none() {
        let t = Trace::from_requests(vec![mk(0, 1)]);
        assert!(t.volume(VolumeId::new(5)).is_none());
    }

    #[test]
    fn time_ordered_iteration() {
        let t = Trace::from_requests(vec![mk(1, 30), mk(0, 20), mk(1, 10), mk(0, 40)]);
        let times: Vec<_> = t.iter_time_ordered().map(|r| r.ts().as_micros()).collect();
        assert_eq!(times, vec![10, 20, 30, 40]);
    }

    #[test]
    fn start_end_span() {
        let t = Trace::from_requests(vec![mk(1, 30), mk(0, 5), mk(2, 77)]);
        assert_eq!(t.start(), Some(Timestamp::from_micros(5)));
        assert_eq!(t.end(), Some(Timestamp::from_micros(77)));
        assert_eq!(t.span(), Some(TimeDelta::from_micros(72)));
    }

    #[test]
    fn from_records_propagates_errors() {
        let ok: Vec<Result<IoRequest, String>> = vec![Ok(mk(0, 1)), Ok(mk(0, 2))];
        assert_eq!(Trace::from_records(ok).unwrap().request_count(), 2);
        let bad: Vec<Result<IoRequest, String>> = vec![Ok(mk(0, 1)), Err("bad".to_owned())];
        assert_eq!(Trace::from_records(bad).unwrap_err(), "bad");
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = vec![mk(0, 2), mk(1, 1)].into_iter().collect();
        assert_eq!(t.request_count(), 2);
        t.extend(vec![mk(0, 1), mk(2, 9)]);
        assert_eq!(t.request_count(), 4);
        assert_eq!(t.volume_count(), 3);
        let v0 = t.volume(VolumeId::new(0)).unwrap();
        assert_eq!(v0.requests()[0].ts().as_micros(), 1);
    }

    #[test]
    fn merge_traces() {
        let a = Trace::from_requests(vec![mk(0, 1)]);
        let b = Trace::from_requests(vec![mk(1, 2), mk(0, 3)]);
        let m = a.merge(b);
        assert_eq!(m.request_count(), 3);
        assert_eq!(m.volume_count(), 2);
    }

    #[test]
    fn into_per_volume() {
        let t = Trace::from_requests(vec![mk(0, 1), mk(1, 2), mk(0, 3)]);
        let map = t.into_per_volume();
        assert_eq!(map.len(), 2);
        assert_eq!(map[&VolumeId::new(0)].len(), 2);
        assert_eq!(map[&VolumeId::new(1)].len(), 1);
    }

    #[test]
    fn volume_view_validation() {
        let reqs = vec![mk(3, 1), mk(3, 2)];
        let view = VolumeView::new(VolumeId::new(3), &reqs);
        assert_eq!(view.span(), Some(TimeDelta::from_micros(1)));
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn volume_view_rejects_unsorted() {
        let reqs = vec![mk(3, 2), mk(3, 1)];
        let _ = VolumeView::new(VolumeId::new(3), &reqs);
    }

    #[test]
    #[should_panic(expected = "homogeneous")]
    fn volume_view_rejects_mixed_volumes() {
        let reqs = vec![mk(3, 1), mk(4, 2)];
        let _ = VolumeView::new(VolumeId::new(3), &reqs);
    }
}
