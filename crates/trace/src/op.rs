//! The I/O operation kind: read or write.

use core::fmt;

/// The kind of a block-level I/O operation.
///
/// Both trace families record only reads and writes at the block layer
/// (no flush/trim records are present in either release), so the model is
/// a two-variant enum rather than an open set.
///
/// # Example
///
/// ```
/// use cbs_trace::OpKind;
///
/// assert!(OpKind::Write.is_write());
/// assert_eq!(OpKind::Read.flipped(), OpKind::Write);
/// assert_eq!("R".parse::<OpKind>().unwrap(), OpKind::Read);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
// One byte with Read = 0, Write = 1: column kernels rely on this to
// view `&[OpKind]` as bytes.
#[repr(u8)]
pub enum OpKind {
    /// A read request.
    Read = 0,
    /// A write request.
    Write = 1,
}

impl OpKind {
    /// All operation kinds, in a stable order (reads first).
    pub const ALL: [OpKind; 2] = [OpKind::Read, OpKind::Write];

    /// Returns `true` for [`OpKind::Read`].
    #[inline]
    pub const fn is_read(self) -> bool {
        matches!(self, OpKind::Read)
    }

    /// Returns `true` for [`OpKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, OpKind::Write)
    }

    /// Returns the other kind.
    #[inline]
    pub const fn flipped(self) -> OpKind {
        match self {
            OpKind::Read => OpKind::Write,
            OpKind::Write => OpKind::Read,
        }
    }

    /// Returns the single-letter code used by the AliCloud trace format
    /// (`'R'` / `'W'`).
    #[inline]
    pub const fn as_char(self) -> char {
        match self {
            OpKind::Read => 'R',
            OpKind::Write => 'W',
        }
    }

    /// Returns the word used by the MSRC trace format
    /// (`"Read"` / `"Write"`).
    #[inline]
    pub const fn as_word(self) -> &'static str {
        match self {
            OpKind::Read => "Read",
            OpKind::Write => "Write",
        }
    }

    /// Returns a stable dense index (`Read = 0`, `Write = 1`), useful for
    /// indexing per-kind arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            OpKind::Read => 0,
            OpKind::Write => 1,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_word())
    }
}

/// Error returned when parsing an [`OpKind`] from an unrecognized string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpKindError {
    input: String,
}

impl fmt::Display for ParseOpKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unrecognized operation kind {:?} (expected R/W/Read/Write)",
            self.input
        )
    }
}

impl std::error::Error for ParseOpKindError {}

impl std::str::FromStr for OpKind {
    type Err = ParseOpKindError;

    /// Parses both the AliCloud (`R`/`W`) and MSRC (`Read`/`Write`)
    /// spellings, case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "R" | "r" | "Read" | "read" | "READ" => Ok(OpKind::Read),
            "W" | "w" | "Write" | "write" | "WRITE" => Ok(OpKind::Write),
            other => Err(ParseOpKindError {
                input: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_trace_spellings() {
        assert_eq!("R".parse::<OpKind>().unwrap(), OpKind::Read);
        assert_eq!("W".parse::<OpKind>().unwrap(), OpKind::Write);
        assert_eq!("Read".parse::<OpKind>().unwrap(), OpKind::Read);
        assert_eq!("Write".parse::<OpKind>().unwrap(), OpKind::Write);
        assert_eq!("read".parse::<OpKind>().unwrap(), OpKind::Read);
        assert_eq!("WRITE".parse::<OpKind>().unwrap(), OpKind::Write);
    }

    #[test]
    fn rejects_unknown_kind() {
        let err = "Trim".parse::<OpKind>().unwrap_err();
        assert!(err.to_string().contains("Trim"));
    }

    #[test]
    fn predicates_and_flip() {
        assert!(OpKind::Read.is_read());
        assert!(!OpKind::Read.is_write());
        assert!(OpKind::Write.is_write());
        assert_eq!(OpKind::Write.flipped(), OpKind::Read);
        assert_eq!(OpKind::Read.flipped().flipped(), OpKind::Read);
    }

    #[test]
    fn codec_representations() {
        assert_eq!(OpKind::Read.as_char(), 'R');
        assert_eq!(OpKind::Write.as_char(), 'W');
        assert_eq!(OpKind::Read.as_word(), "Read");
        assert_eq!(OpKind::Write.to_string(), "Write");
    }

    #[test]
    fn dense_index_is_stable() {
        assert_eq!(OpKind::Read.index(), 0);
        assert_eq!(OpKind::Write.index(), 1);
        assert_eq!(OpKind::ALL[OpKind::Read.index()], OpKind::Read);
        assert_eq!(OpKind::ALL[OpKind::Write.index()], OpKind::Write);
    }
}
