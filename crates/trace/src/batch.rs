//! Struct-of-arrays request batches: [`RequestBatch`].
//!
//! The streaming pipeline moves requests between threads and feeds them
//! to analysis kernels in batches. Carrying them as `Vec<IoRequest>`
//! (array-of-structs) makes every kernel loop stride over 32-byte
//! records even when it only needs one field; `RequestBatch` stores
//! each field in its own column so that
//!
//! * batched kernels ([`observe_batch`]) scan exactly the columns they
//!   use at full cache-line density,
//! * the columnar trace codec ([`crate::codec::cbt`]) encodes and
//!   decodes straight out of the columns without transposing, and
//! * channel transfers move five `Vec`s regardless of batch length.
//!
//! A batch imposes no ordering or single-volume invariant of its own —
//! it is a plain container; producers keep whatever ordering contract
//! their consumer requires (the streaming pipeline preserves per-volume
//! timestamp order exactly as it did with `Vec<IoRequest>`).
//!
//! [`observe_batch`]: ../../cbs_analysis/struct.VolumeAnalyzer.html#method.observe_batch

use crate::{BlockId, BlockSize, IoRequest, OpKind, Timestamp, VolumeId};

/// A batch of requests in struct-of-arrays layout.
///
/// All five columns always have identical length. Records can be
/// appended from [`IoRequest`]s ([`push`](Self::push)) or read back out
/// ([`get`](Self::get), [`iter`](Self::iter)); kernels that want raw
/// columns use the slice accessors.
///
/// # Example
///
/// ```
/// use cbs_trace::{IoRequest, OpKind, RequestBatch, Timestamp, VolumeId};
///
/// let mut batch = RequestBatch::new();
/// batch.push(&IoRequest::new(
///     VolumeId::new(3),
///     OpKind::Write,
///     4096,
///     8192,
///     Timestamp::from_secs(1),
/// ));
/// assert_eq!(batch.len(), 1);
/// assert_eq!(batch.offsets()[0], 4096);
/// assert_eq!(batch.get(0).op(), OpKind::Write);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestBatch {
    volumes: Vec<VolumeId>,
    ops: Vec<OpKind>,
    offsets: Vec<u64>,
    lens: Vec<u32>,
    timestamps: Vec<Timestamp>,
}

impl RequestBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with room for `capacity` records in every
    /// column.
    pub fn with_capacity(capacity: usize) -> Self {
        RequestBatch {
            volumes: Vec::with_capacity(capacity),
            ops: Vec::with_capacity(capacity),
            offsets: Vec::with_capacity(capacity),
            lens: Vec::with_capacity(capacity),
            timestamps: Vec::with_capacity(capacity),
        }
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.volumes.len()
    }

    /// Returns `true` if the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.volumes.is_empty()
    }

    /// Appends one request.
    #[inline]
    pub fn push(&mut self, req: &IoRequest) {
        self.push_fields(req.volume(), req.op(), req.offset(), req.len(), req.ts());
    }

    /// Appends one record from its fields (no `IoRequest` round-trip).
    #[inline]
    pub fn push_fields(
        &mut self,
        volume: VolumeId,
        op: OpKind,
        offset: u64,
        len: u32,
        ts: Timestamp,
    ) {
        self.volumes.push(volume);
        self.ops.push(op);
        self.offsets.push(offset);
        self.lens.push(len);
        self.timestamps.push(ts);
    }

    /// Reassembles record `index` as an [`IoRequest`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`, like slice indexing.
    #[inline]
    pub fn get(&self, index: usize) -> IoRequest {
        IoRequest::new(
            self.volumes[index],
            self.ops[index],
            self.offsets[index],
            self.lens[index],
            self.timestamps[index],
        )
    }

    /// The volume-id column.
    #[inline]
    pub fn volumes(&self) -> &[VolumeId] {
        &self.volumes
    }

    /// The operation-kind column.
    #[inline]
    pub fn ops(&self) -> &[OpKind] {
        &self.ops
    }

    /// The byte-offset column.
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The byte-length column.
    #[inline]
    pub fn lens(&self) -> &[u32] {
        &self.lens
    }

    /// The timestamp column.
    #[inline]
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.timestamps
    }

    /// Rewrites the volume column in place. Used when volume ids were
    /// interned against a local registry (e.g. per-chunk during
    /// parallel MSRC decoding) and must be remapped to global ids.
    pub fn remap_volumes<F>(&mut self, mut f: F)
    where
        F: FnMut(VolumeId) -> VolumeId,
    {
        for v in &mut self.volumes {
            *v = f(*v);
        }
    }

    /// Removes all records, keeping the columns' capacity.
    pub fn clear(&mut self) {
        self.volumes.clear();
        self.ops.clear();
        self.offsets.clear();
        self.lens.clear();
        self.timestamps.clear();
    }

    /// Iterates the records as [`IoRequest`]s in batch order.
    pub fn iter(&self) -> impl Iterator<Item = IoRequest> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Expands every record into its block-granular accesses, replacing
    /// the contents of `out` — the shared expansion kernel.
    ///
    /// The result is exactly the concatenation of
    /// [`BlockSize::span_of`] over the records in batch order, paired
    /// with each record's op (zero-length records touch no blocks), but
    /// computed straight off the offset/len/op columns. Consumers that
    /// evaluate many cache configurations over one batch (the sweep
    /// engine, policy benches) expand once and share the column instead
    /// of re-walking `span_of` per configuration.
    pub fn expand_blocks_into(&self, block_size: BlockSize, out: &mut BlockAccessColumn) {
        out.clear();
        let shift = block_size.shift();
        for i in 0..self.len() {
            let len = self.lens[i];
            if len == 0 {
                continue;
            }
            let op = self.ops[i];
            let offset = self.offsets[i];
            let first = offset >> shift;
            let last = (offset + u64::from(len) - 1) >> shift;
            for b in first..=last {
                out.blocks.push(BlockId::new(b));
                out.ops.push(op);
            }
        }
    }

    /// Copies the batch out as a flat request vector.
    pub fn to_requests(&self) -> Vec<IoRequest> {
        self.iter().collect()
    }

    /// Borrows the batch as a [`RequestBatchRef`] column view.
    #[inline]
    pub fn as_ref(&self) -> RequestBatchRef<'_> {
        RequestBatchRef {
            volumes: &self.volumes,
            ops: &self.ops,
            offsets: &self.offsets,
            lens: &self.lens,
            timestamps: &self.timestamps,
        }
    }

    /// Mutable access to all five columns at once, for decoders that
    /// fill a batch column-by-column. Callers must leave every column
    /// at the same length.
    #[inline]
    pub(crate) fn columns_mut(&mut self) -> ColumnsMut<'_> {
        (
            &mut self.volumes,
            &mut self.ops,
            &mut self.offsets,
            &mut self.lens,
            &mut self.timestamps,
        )
    }
}

/// All five column vectors of a [`RequestBatch`], borrowed mutably
/// (volumes, ops, offsets, lens, timestamps).
pub(crate) type ColumnsMut<'a> = (
    &'a mut Vec<VolumeId>,
    &'a mut Vec<OpKind>,
    &'a mut Vec<u64>,
    &'a mut Vec<u32>,
    &'a mut Vec<Timestamp>,
);

/// A borrowed struct-of-arrays view of a batch of requests.
///
/// The zero-copy counterpart of [`RequestBatch`]: five column slices
/// with identical lengths, borrowed from whoever owns the backing
/// storage — an owned batch ([`RequestBatch::as_ref`]) or a decoder's
/// reused column buffers ([`CbtSliceReader::read_batch_ref`]). Handing
/// out a `RequestBatchRef` moves records between pipeline stages
/// without cloning five `Vec`s per block.
///
/// [`CbtSliceReader::read_batch_ref`]:
///     crate::codec::cbt::CbtSliceReader::read_batch_ref
///
/// # Example
///
/// ```
/// use cbs_trace::{IoRequest, OpKind, RequestBatch, Timestamp, VolumeId};
///
/// let mut batch = RequestBatch::new();
/// batch.push(&IoRequest::new(
///     VolumeId::new(3),
///     OpKind::Write,
///     4096,
///     8192,
///     Timestamp::from_secs(1),
/// ));
/// let view = batch.as_ref();
/// assert_eq!(view.len(), 1);
/// assert_eq!(view.offsets()[0], 4096);
/// assert_eq!(view.get(0), batch.get(0));
/// assert_eq!(view.to_batch(), batch);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestBatchRef<'a> {
    volumes: &'a [VolumeId],
    ops: &'a [OpKind],
    offsets: &'a [u64],
    lens: &'a [u32],
    timestamps: &'a [Timestamp],
}

impl<'a> RequestBatchRef<'a> {
    /// Assembles a view from five equal-length column slices.
    ///
    /// # Panics
    ///
    /// Panics if the columns differ in length.
    pub fn from_columns(
        volumes: &'a [VolumeId],
        ops: &'a [OpKind],
        offsets: &'a [u64],
        lens: &'a [u32],
        timestamps: &'a [Timestamp],
    ) -> Self {
        assert!(
            ops.len() == volumes.len()
                && offsets.len() == volumes.len()
                && lens.len() == volumes.len()
                && timestamps.len() == volumes.len(),
            "request batch columns must have identical lengths"
        );
        RequestBatchRef {
            volumes,
            ops,
            offsets,
            lens,
            timestamps,
        }
    }

    /// Number of records in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.volumes.len()
    }

    /// Returns `true` if the view holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.volumes.is_empty()
    }

    /// Reassembles record `index` as an [`IoRequest`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`, like slice indexing.
    #[inline]
    pub fn get(&self, index: usize) -> IoRequest {
        IoRequest::new(
            self.volumes[index],
            self.ops[index],
            self.offsets[index],
            self.lens[index],
            self.timestamps[index],
        )
    }

    /// The volume-id column.
    #[inline]
    pub fn volumes(&self) -> &'a [VolumeId] {
        self.volumes
    }

    /// The operation-kind column.
    #[inline]
    pub fn ops(&self) -> &'a [OpKind] {
        self.ops
    }

    /// The byte-offset column.
    #[inline]
    pub fn offsets(&self) -> &'a [u64] {
        self.offsets
    }

    /// The byte-length column.
    #[inline]
    pub fn lens(&self) -> &'a [u32] {
        self.lens
    }

    /// The timestamp column.
    #[inline]
    pub fn timestamps(&self) -> &'a [Timestamp] {
        self.timestamps
    }

    /// Iterates the records as [`IoRequest`]s in batch order.
    pub fn iter(&self) -> impl Iterator<Item = IoRequest> + 'a {
        let this = *self;
        (0..this.len()).map(move |i| this.get(i))
    }

    /// Copies the view into an owned [`RequestBatch`].
    pub fn to_batch(&self) -> RequestBatch {
        RequestBatch {
            volumes: self.volumes.to_vec(),
            ops: self.ops.to_vec(),
            offsets: self.offsets.to_vec(),
            lens: self.lens.to_vec(),
            timestamps: self.timestamps.to_vec(),
        }
    }
}

/// Block-granular accesses in struct-of-arrays layout: the shared
/// expansion of a [`RequestBatch`].
///
/// Each entry is one `(block, op)` access, in the order
/// [`BlockSize::span_of`] would have produced while walking the batch.
/// Cache simulations that evaluate several policies or capacities over
/// the same batch pay the request → block decomposition once and replay
/// this column per configuration.
///
/// # Example
///
/// ```
/// use cbs_trace::{BlockAccessColumn, BlockSize, IoRequest, OpKind, RequestBatch,
///                 Timestamp, VolumeId};
///
/// let mut batch = RequestBatch::new();
/// batch.push(&IoRequest::new(
///     VolumeId::new(0), OpKind::Write, 4096, 8192, Timestamp::ZERO,
/// ));
/// let mut col = BlockAccessColumn::new();
/// batch.expand_blocks_into(BlockSize::DEFAULT, &mut col);
/// assert_eq!(col.len(), 2); // blocks 1 and 2
/// assert_eq!(col.blocks()[0].get(), 1);
/// assert_eq!(col.ops()[1], OpKind::Write);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockAccessColumn {
    blocks: Vec<BlockId>,
    ops: Vec<OpKind>,
}

impl BlockAccessColumn {
    /// Creates an empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty column with room for `capacity` accesses.
    pub fn with_capacity(capacity: usize) -> Self {
        BlockAccessColumn {
            blocks: Vec::with_capacity(capacity),
            ops: Vec::with_capacity(capacity),
        }
    }

    /// Number of block accesses.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if the column holds no accesses.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Appends one block access.
    #[inline]
    pub fn push(&mut self, block: BlockId, op: OpKind) {
        self.blocks.push(block);
        self.ops.push(op);
    }

    /// The block-id column.
    #[inline]
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// The operation-kind column.
    #[inline]
    pub fn ops(&self) -> &[OpKind] {
        &self.ops
    }

    /// Removes all accesses, keeping the columns' capacity.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.ops.clear();
    }

    /// Iterates the accesses as `(block, op)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, OpKind)> + '_ {
        self.blocks.iter().copied().zip(self.ops.iter().copied())
    }
}

impl From<&[IoRequest]> for RequestBatch {
    fn from(requests: &[IoRequest]) -> Self {
        let mut batch = RequestBatch::with_capacity(requests.len());
        for req in requests {
            batch.push(req);
        }
        batch
    }
}

impl From<Vec<IoRequest>> for RequestBatch {
    fn from(requests: Vec<IoRequest>) -> Self {
        RequestBatch::from(requests.as_slice())
    }
}

impl FromIterator<IoRequest> for RequestBatch {
    fn from_iter<I: IntoIterator<Item = IoRequest>>(iter: I) -> Self {
        let mut batch = RequestBatch::new();
        for req in iter {
            batch.push(&req);
        }
        batch
    }
}

impl Extend<IoRequest> for RequestBatch {
    fn extend<I: IntoIterator<Item = IoRequest>>(&mut self, iter: I) {
        for req in iter {
            self.push(&req);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<IoRequest> {
        (0..n)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new((i % 5) as u32),
                    if i % 3 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    (i as u64) * 4096,
                    512 * (i as u32 % 9 + 1),
                    Timestamp::from_micros(i as u64 * 250),
                )
            })
            .collect()
    }

    #[test]
    fn roundtrips_requests() {
        let reqs = sample(100);
        let batch = RequestBatch::from(reqs.as_slice());
        assert_eq!(batch.len(), 100);
        assert!(!batch.is_empty());
        assert_eq!(batch.to_requests(), reqs);
        for (i, req) in reqs.iter().enumerate() {
            assert_eq!(&batch.get(i), req);
        }
    }

    #[test]
    fn columns_are_consistent() {
        let reqs = sample(17);
        let batch: RequestBatch = reqs.iter().copied().collect();
        assert_eq!(batch.volumes().len(), 17);
        assert_eq!(batch.ops().len(), 17);
        assert_eq!(batch.offsets().len(), 17);
        assert_eq!(batch.lens().len(), 17);
        assert_eq!(batch.timestamps().len(), 17);
        assert_eq!(batch.offsets()[3], reqs[3].offset());
        assert_eq!(batch.lens()[4], reqs[4].len());
        assert_eq!(batch.timestamps()[5], reqs[5].ts());
        assert_eq!(batch.volumes()[6], reqs[6].volume());
        assert_eq!(batch.ops()[7], reqs[7].op());
    }

    #[test]
    fn clear_keeps_nothing() {
        let mut batch = RequestBatch::from(sample(10));
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.iter().count(), 0);
    }

    #[test]
    fn extend_appends() {
        let reqs = sample(6);
        let mut batch = RequestBatch::from(&reqs[..3]);
        batch.extend(reqs[3..].iter().copied());
        assert_eq!(batch.to_requests(), reqs);
    }

    #[test]
    fn expansion_matches_span_of() {
        let bs = BlockSize::DEFAULT;
        let mut reqs = sample(200);
        // Unaligned straddlers and a zero-length record.
        reqs.push(IoRequest::new(
            VolumeId::new(9),
            OpKind::Read,
            4000,
            300,
            Timestamp::ZERO,
        ));
        reqs.push(IoRequest::new(
            VolumeId::new(9),
            OpKind::Write,
            8192,
            0,
            Timestamp::ZERO,
        ));
        let batch = RequestBatch::from(reqs.as_slice());
        let mut col = BlockAccessColumn::new();
        batch.expand_blocks_into(bs, &mut col);
        let expected: Vec<(BlockId, OpKind)> = reqs
            .iter()
            .flat_map(|r| bs.span_of(r).map(move |b| (b, r.op())))
            .collect();
        assert_eq!(col.len(), expected.len());
        assert_eq!(col.iter().collect::<Vec<_>>(), expected);
        assert_eq!(col.blocks().len(), col.ops().len());
    }

    #[test]
    fn expansion_replaces_previous_contents() {
        let bs = BlockSize::DEFAULT;
        let mut col = BlockAccessColumn::with_capacity(8);
        col.push(BlockId::new(77), OpKind::Read);
        RequestBatch::from(sample(5)).expand_blocks_into(bs, &mut col);
        assert!(col.blocks().iter().all(|b| b.get() != 77));
        RequestBatch::new().expand_blocks_into(bs, &mut col);
        assert!(col.is_empty());
        assert_eq!(col.iter().count(), 0);
    }

    #[test]
    fn expansion_respects_block_size() {
        let bs = BlockSize::new(16384).expect("power of two");
        let reqs = sample(50);
        let batch = RequestBatch::from(reqs.as_slice());
        let mut col = BlockAccessColumn::new();
        batch.expand_blocks_into(bs, &mut col);
        let expected: u64 = reqs.iter().map(|r| bs.count(r.offset(), r.len())).sum();
        assert_eq!(col.len() as u64, expected);
    }

    #[test]
    fn equality_is_by_content() {
        let reqs = sample(8);
        let a = RequestBatch::from(reqs.as_slice());
        let b: RequestBatch = reqs.into_iter().collect();
        assert_eq!(a, b);
        assert_ne!(a, RequestBatch::new());
    }
}
