//! Microsecond-granularity trace time: [`Timestamp`] and [`TimeDelta`].
//!
//! All codecs normalize their native clock into microseconds since an
//! arbitrary per-trace epoch (the AliCloud release already uses
//! microseconds; MSRC uses Windows 100 ns ticks, which the MSRC codec
//! divides down). Microseconds in a `u64` cover ~584,000 years, far beyond
//! any trace duration — but replay-time arithmetic (timestamps scaled by
//! a ×0.1…×1000 rate multiplier, deltas summed across remapped volumes)
//! *can* reach the edge, so the `+` operators are overflow-checked in
//! every build profile and the `checked_*`/`saturating_*` variants exist
//! for paths where overflow is an expected input rather than a bug.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Number of microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Number of microseconds per millisecond.
pub const MICROS_PER_MILLI: u64 = 1_000;
/// Number of microseconds per minute.
pub const MICROS_PER_MIN: u64 = 60 * MICROS_PER_SEC;
/// Number of microseconds per hour.
pub const MICROS_PER_HOUR: u64 = 60 * MICROS_PER_MIN;
/// Number of microseconds per day.
pub const MICROS_PER_DAY: u64 = 24 * MICROS_PER_HOUR;

/// A point in trace time, in microseconds since the trace epoch.
///
/// `Timestamp` is a transparent newtype over `u64` ([C-NEWTYPE]): it makes
/// "a point in time" and "a length of time" ([`TimeDelta`]) distinct types
/// so they cannot be confused in analysis code.
///
/// # Example
///
/// ```
/// use cbs_trace::{TimeDelta, Timestamp};
///
/// let t0 = Timestamp::from_secs(10);
/// let t1 = t0 + TimeDelta::from_millis(1_500);
/// assert_eq!(t1.as_micros(), 11_500_000);
/// assert_eq!(t1 - t0, TimeDelta::from_micros(1_500_000));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
// Layout-compatible with its microsecond count, so column kernels can
// view `&[Timestamp]` as `&[u64]`.
#[repr(transparent)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The trace epoch (time zero).
    pub const ZERO: Timestamp = Timestamp(0);
    /// The maximum representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from microseconds since the trace epoch.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// Creates a timestamp from milliseconds since the trace epoch.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis * MICROS_PER_MILLI)
    }

    /// Creates a timestamp from seconds since the trace epoch.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * MICROS_PER_SEC)
    }

    /// Creates a timestamp from minutes since the trace epoch.
    #[inline]
    pub const fn from_mins(mins: u64) -> Self {
        Timestamp(mins * MICROS_PER_MIN)
    }

    /// Creates a timestamp from hours since the trace epoch.
    #[inline]
    pub const fn from_hours(hours: u64) -> Self {
        Timestamp(hours * MICROS_PER_HOUR)
    }

    /// Creates a timestamp from days since the trace epoch.
    #[inline]
    pub const fn from_days(days: u64) -> Self {
        Timestamp(days * MICROS_PER_DAY)
    }

    /// Returns the number of whole microseconds since the trace epoch.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the number of whole seconds since the trace epoch.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Returns the time since the epoch as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the zero-based index of the day this timestamp falls in.
    ///
    /// Day boundaries are multiples of 24 h from the trace epoch, matching
    /// the paper's per-day activeness analysis (Fig. 3).
    #[inline]
    pub const fn day_index(self) -> u64 {
        self.0 / MICROS_PER_DAY
    }

    /// Returns the zero-based index of the interval of length `interval`
    /// this timestamp falls in.
    ///
    /// The paper's fine-grained activeness analysis (Figs. 8-9) uses
    /// 10-minute intervals.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[inline]
    pub fn interval_index(self, interval: TimeDelta) -> u64 {
        assert!(!interval.is_zero(), "interval must be non-zero");
        self.0 / interval.as_micros()
    }

    /// Returns the elapsed time since `earlier`, or `None` if `earlier`
    /// is later than `self`.
    #[inline]
    pub const fn checked_duration_since(self, earlier: Timestamp) -> Option<TimeDelta> {
        match self.0.checked_sub(earlier.0) {
            Some(d) => Some(TimeDelta(d)),
            None => None,
        }
    }

    /// Returns the elapsed time since `earlier`, or [`TimeDelta::ZERO`]
    /// if `earlier` is later than `self`.
    #[inline]
    pub const fn saturating_duration_since(self, earlier: Timestamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// Adds a delta, returning `None` on overflow.
    #[inline]
    pub const fn checked_add(self, delta: TimeDelta) -> Option<Timestamp> {
        match self.0.checked_add(delta.0) {
            Some(t) => Some(Timestamp(t)),
            None => None,
        }
    }

    /// Adds a delta, clamping to [`Timestamp::MAX`] on overflow — the
    /// shape replay schedulers use, where a saturated deadline means
    /// "never", not a wrapped-around early issue.
    #[inline]
    pub const fn saturating_add(self, delta: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_add(delta.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;

    /// Adds a delta.
    ///
    /// # Panics
    ///
    /// Panics on overflow in **all** build profiles. The bare `+` this
    /// replaced wrapped silently in release builds, so a saturated
    /// source timestamp plus a scaled delta could land *before* the
    /// epoch and reorder a replay schedule; use
    /// [`Timestamp::checked_add`] / [`Timestamp::saturating_add`] when
    /// overflow is an expected input, not a bug.
    #[inline]
    fn add(self, rhs: TimeDelta) -> Timestamp {
        match self.0.checked_add(rhs.0) {
            Some(t) => Timestamp(t),
            // cbs-lint: allow(no-panic-in-lib) -- overflow here is arithmetic corruption (584k years of trace time); wrapping silently was the bug this guard fixes
            None => panic!("Timestamp + TimeDelta overflowed: {} + {}", self.0, rhs.0),
        }
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    /// In-place [`Add`]; panics on overflow in all build profiles (see
    /// [`Add`](Timestamp::add)).
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        *self = *self + rhs;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = TimeDelta;

    /// Returns the elapsed time between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self` (standard
    /// integer-underflow behaviour). Use
    /// [`Timestamp::checked_duration_since`] when the ordering is not
    /// statically known.
    #[inline]
    fn sub(self, rhs: Timestamp) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl From<u64> for Timestamp {
    /// Interprets the integer as microseconds since the trace epoch.
    #[inline]
    fn from(micros: u64) -> Self {
        Timestamp(micros)
    }
}

impl From<Timestamp> for u64 {
    #[inline]
    fn from(ts: Timestamp) -> u64 {
        ts.0
    }
}

/// A length of trace time, in microseconds.
///
/// # Example
///
/// ```
/// use cbs_trace::TimeDelta;
///
/// let d = TimeDelta::from_mins(5);
/// assert_eq!(d.as_secs(), 300);
/// assert!(d < TimeDelta::from_hours(1));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeDelta(u64);

impl TimeDelta {
    /// The zero-length delta.
    pub const ZERO: TimeDelta = TimeDelta(0);
    /// The maximum representable delta.
    pub const MAX: TimeDelta = TimeDelta(u64::MAX);

    /// Creates a delta from microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        TimeDelta(micros)
    }

    /// Creates a delta from milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        TimeDelta(millis * MICROS_PER_MILLI)
    }

    /// Creates a delta from seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        TimeDelta(secs * MICROS_PER_SEC)
    }

    /// Creates a delta from minutes.
    #[inline]
    pub const fn from_mins(mins: u64) -> Self {
        TimeDelta(mins * MICROS_PER_MIN)
    }

    /// Creates a delta from hours.
    #[inline]
    pub const fn from_hours(hours: u64) -> Self {
        TimeDelta(hours * MICROS_PER_HOUR)
    }

    /// Creates a delta from days.
    #[inline]
    pub const fn from_days(days: u64) -> Self {
        TimeDelta(days * MICROS_PER_DAY)
    }

    /// Creates a delta from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "seconds must be finite and non-negative, got {secs}"
        );
        let micros = secs * MICROS_PER_SEC as f64;
        // Strict `<`: `u64::MAX as f64` rounds *up* to 2^64, so a `<=`
        // bound admits microsecond values in (u64::MAX, 2^64] whose
        // `as u64` cast silently saturates. Every f64 strictly below
        // 2^64 fits in a u64, and at that magnitude f64s are integral,
        // so `round()` cannot push a passing value over the edge.
        assert!(
            micros < u64::MAX as f64,
            "seconds value {secs} overflows TimeDelta"
        );
        TimeDelta(micros.round() as u64)
    }

    /// Returns the number of whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the number of whole milliseconds.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / MICROS_PER_MILLI
    }

    /// Returns the number of whole seconds.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Returns the delta as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the delta as fractional minutes.
    #[inline]
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MIN as f64
    }

    /// Returns the delta as fractional hours.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_HOUR as f64
    }

    /// Returns the delta as fractional days.
    #[inline]
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_DAY as f64
    }

    /// Returns `true` if the delta is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_add(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: TimeDelta) -> Option<TimeDelta> {
        match self.0.checked_add(rhs.0) {
            Some(d) => Some(TimeDelta(d)),
            None => None,
        }
    }

    /// Checked integer scaling, `None` on overflow.
    #[inline]
    pub const fn checked_mul(self, factor: u64) -> Option<TimeDelta> {
        match self.0.checked_mul(factor) {
            Some(d) => Some(TimeDelta(d)),
            None => None,
        }
    }

    /// Scales the delta by a non-negative factor, rounding to the
    /// nearest microsecond — the rate-multiplier primitive: replaying
    /// at ×`r` stretches every inter-arrival gap by `1/r`.
    ///
    /// Returns `None` if `factor` is negative, NaN, or the product
    /// overflows the microsecond range (same strict 2^64 bound as
    /// [`TimeDelta::from_secs_f64`]). Infinity is rejected as an
    /// overflow rather than a panic, so callers can treat "multiplier
    /// too extreme" uniformly.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Option<TimeDelta> {
        if factor.is_nan() || factor < 0.0 {
            return None;
        }
        let scaled = self.0 as f64 * factor;
        // Strict `<` for the same reason as `from_secs_f64`: 2^64
        // itself must be rejected, not saturated into.
        if scaled < u64::MAX as f64 {
            Some(TimeDelta(scaled.round() as u64))
        } else {
            None
        }
    }

    /// Like [`TimeDelta::mul_f64`] but clamps overflow (and rejects of
    /// NaN/negative factors) to [`TimeDelta::MAX`] / [`TimeDelta::ZERO`]
    /// instead of returning `None`.
    #[inline]
    pub fn saturating_mul_f64(self, factor: f64) -> TimeDelta {
        if factor.is_nan() || factor < 0.0 {
            return TimeDelta::ZERO;
        }
        self.mul_f64(factor).unwrap_or(TimeDelta::MAX)
    }

    /// Checked integer division of two deltas (a dimensionless ratio).
    #[inline]
    pub fn ratio(self, rhs: TimeDelta) -> Option<f64> {
        if rhs.is_zero() {
            None
        } else {
            Some(self.0 as f64 / rhs.0 as f64)
        }
    }
}

impl fmt::Display for TimeDelta {
    /// Formats with an adaptive unit (µs, ms, s, min, h, d).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us < MICROS_PER_MILLI {
            write!(f, "{us}us")
        } else if us < MICROS_PER_SEC {
            write!(f, "{:.2}ms", us as f64 / MICROS_PER_MILLI as f64)
        } else if us < MICROS_PER_MIN {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else if us < MICROS_PER_HOUR {
            write!(f, "{:.2}min", self.as_mins_f64())
        } else if us < MICROS_PER_DAY {
            write!(f, "{:.2}h", self.as_hours_f64())
        } else {
            write!(f, "{:.2}d", self.as_days_f64())
        }
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;

    /// Adds two deltas.
    ///
    /// # Panics
    ///
    /// Panics on overflow in **all** build profiles (the bare `+` this
    /// replaced wrapped silently in release builds). Use
    /// [`TimeDelta::checked_add`] / [`TimeDelta::saturating_add`] when
    /// overflow is an expected input.
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        match self.0.checked_add(rhs.0) {
            Some(d) => TimeDelta(d),
            // cbs-lint: allow(no-panic-in-lib) -- overflow here is arithmetic corruption (584k years of trace time); wrapping silently was the bug this guard fixes
            None => panic!("TimeDelta + TimeDelta overflowed: {} + {}", self.0, rhs.0),
        }
    }
}

impl AddAssign for TimeDelta {
    /// In-place [`Add`]; panics on overflow in all build profiles (see
    /// [`Add`](TimeDelta::add)).
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        *self = *self + rhs;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;

    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl From<u64> for TimeDelta {
    /// Interprets the integer as microseconds.
    #[inline]
    fn from(micros: u64) -> Self {
        TimeDelta(micros)
    }
}

impl From<TimeDelta> for u64 {
    #[inline]
    fn from(delta: TimeDelta) -> u64 {
        delta.0
    }
}

impl std::iter::Sum for TimeDelta {
    fn sum<I: Iterator<Item = TimeDelta>>(iter: I) -> Self {
        iter.fold(TimeDelta::ZERO, |acc, d| acc + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Timestamp::from_secs(1), Timestamp::from_micros(1_000_000));
        assert_eq!(Timestamp::from_mins(2), Timestamp::from_secs(120));
        assert_eq!(Timestamp::from_hours(1), Timestamp::from_mins(60));
        assert_eq!(Timestamp::from_days(1), Timestamp::from_hours(24));
        assert_eq!(TimeDelta::from_millis(1), TimeDelta::from_micros(1000));
        assert_eq!(TimeDelta::from_days(2), TimeDelta::from_hours(48));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(100);
        let d = TimeDelta::from_secs(23);
        assert_eq!((t + d).as_secs(), 123);
        assert_eq!((t + d) - t, d);
        let mut u = t;
        u += d;
        assert_eq!(u, t + d);
    }

    #[test]
    fn checked_duration_since_handles_ordering() {
        let a = Timestamp::from_secs(5);
        let b = Timestamp::from_secs(9);
        assert_eq!(b.checked_duration_since(a), Some(TimeDelta::from_secs(4)));
        assert_eq!(a.checked_duration_since(b), None);
        assert_eq!(a.saturating_duration_since(b), TimeDelta::ZERO);
    }

    #[test]
    fn day_and_interval_indices() {
        let ten_min = TimeDelta::from_mins(10);
        assert_eq!(Timestamp::ZERO.day_index(), 0);
        assert_eq!(Timestamp::from_hours(23).day_index(), 0);
        assert_eq!(Timestamp::from_hours(24).day_index(), 1);
        assert_eq!(Timestamp::from_mins(9).interval_index(ten_min), 0);
        assert_eq!(Timestamp::from_mins(10).interval_index(ten_min), 1);
        assert_eq!(Timestamp::from_mins(25).interval_index(ten_min), 2);
    }

    #[test]
    #[should_panic(expected = "interval must be non-zero")]
    fn interval_index_rejects_zero() {
        let _ = Timestamp::ZERO.interval_index(TimeDelta::ZERO);
    }

    #[test]
    fn fractional_accessors() {
        let d = TimeDelta::from_mins(90);
        assert!((d.as_hours_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_days_f64() - 0.0625).abs() < 1e-12);
        assert!((d.as_mins_f64() - 90.0).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            TimeDelta::from_secs_f64(0.0000015),
            TimeDelta::from_micros(2)
        );
        assert_eq!(
            TimeDelta::from_secs_f64(1.25),
            TimeDelta::from_micros(1_250_000)
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = TimeDelta::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "overflows TimeDelta")]
    fn from_secs_f64_rejects_saturating_boundary() {
        // Regression: `u64::MAX as f64` rounds up to 2^64 exactly, and
        // this seconds value multiplies back to 2^64 exactly, so the
        // old `micros <= u64::MAX as f64` bound admitted it and the
        // `as u64` cast silently saturated. The strict `<` bound must
        // reject it.
        let secs = u64::MAX as f64 / MICROS_PER_SEC as f64;
        let _ = TimeDelta::from_secs_f64(secs);
    }

    #[test]
    fn from_secs_f64_accepts_values_below_the_boundary() {
        // The largest delta the guard admits converts without
        // saturation: the result must round-trip to its own input.
        let below = f64::from_bits((u64::MAX as f64).to_bits() - 1); // 2^64 - 2048
        let d = TimeDelta::from_secs_f64(below / 2.0 / MICROS_PER_SEC as f64);
        assert!(d.as_micros() < u64::MAX / 2 + 2048);
        assert!(d.as_micros() > u64::MAX / 2 - 4096);
    }

    #[test]
    #[should_panic(expected = "Timestamp + TimeDelta overflowed")]
    fn timestamp_add_panics_on_overflow_in_release_too() {
        // Built and run with `--release` by the tier-1 gate: the old
        // bare `+` wrapped here instead of panicking.
        let t = Timestamp::MAX + TimeDelta::from_micros(1);
        let _ = std::hint::black_box(t);
    }

    #[test]
    #[should_panic(expected = "TimeDelta + TimeDelta overflowed")]
    fn delta_add_panics_on_overflow_in_release_too() {
        let d = TimeDelta::MAX + TimeDelta::from_micros(1);
        let _ = std::hint::black_box(d);
    }

    #[test]
    fn saturating_and_checked_add() {
        assert_eq!(
            Timestamp::MAX.saturating_add(TimeDelta::from_secs(1)),
            Timestamp::MAX
        );
        assert_eq!(Timestamp::MAX.checked_add(TimeDelta::from_micros(1)), None);
        assert_eq!(
            Timestamp::from_secs(1).saturating_add(TimeDelta::from_secs(2)),
            Timestamp::from_secs(3)
        );
        assert_eq!(TimeDelta::MAX.checked_add(TimeDelta::from_micros(1)), None);
        assert_eq!(
            TimeDelta::from_secs(1).checked_add(TimeDelta::from_secs(2)),
            Some(TimeDelta::from_secs(3))
        );
    }

    #[test]
    fn checked_mul_scales_and_guards() {
        assert_eq!(
            TimeDelta::from_millis(3).checked_mul(4),
            Some(TimeDelta::from_millis(12))
        );
        assert_eq!(TimeDelta::MAX.checked_mul(2), None);
        assert_eq!(TimeDelta::ZERO.checked_mul(u64::MAX), Some(TimeDelta::ZERO));
    }

    #[test]
    fn mul_f64_rounds_and_guards() {
        // ×10 slowdown of a 1 µs gap (replaying at ×0.1).
        assert_eq!(
            TimeDelta::from_micros(1).mul_f64(10.0),
            Some(TimeDelta::from_micros(10))
        );
        // ×1000 speedup compresses 1 s to 1 ms.
        assert_eq!(
            TimeDelta::from_secs(1).mul_f64(1e-3),
            Some(TimeDelta::from_millis(1))
        );
        // Rounds to nearest microsecond.
        assert_eq!(
            TimeDelta::from_micros(3).mul_f64(0.5),
            Some(TimeDelta::from_micros(2))
        );
        assert_eq!(
            TimeDelta::from_micros(5).mul_f64(0.0),
            Some(TimeDelta::ZERO)
        );
        // NaN, negative, and overflowing factors are rejected.
        assert_eq!(TimeDelta::from_secs(1).mul_f64(f64::NAN), None);
        assert_eq!(TimeDelta::from_secs(1).mul_f64(-1.0), None);
        assert_eq!(TimeDelta::MAX.mul_f64(2.0), None);
        assert_eq!(TimeDelta::from_secs(1).mul_f64(f64::INFINITY), None);
        // The saturating twin clamps instead.
        assert_eq!(TimeDelta::MAX.saturating_mul_f64(2.0), TimeDelta::MAX);
        assert_eq!(
            TimeDelta::from_secs(1).saturating_mul_f64(f64::NAN),
            TimeDelta::ZERO
        );
        assert_eq!(
            TimeDelta::from_secs(2).saturating_mul_f64(0.5),
            TimeDelta::from_secs(1)
        );
    }

    #[test]
    fn display_is_adaptive() {
        assert_eq!(TimeDelta::from_micros(500).to_string(), "500us");
        assert_eq!(TimeDelta::from_millis(20).to_string(), "20.00ms");
        assert_eq!(TimeDelta::from_secs(3).to_string(), "3.00s");
        assert_eq!(TimeDelta::from_mins(5).to_string(), "5.00min");
        assert_eq!(TimeDelta::from_hours(3).to_string(), "3.00h");
        assert_eq!(TimeDelta::from_days(2).to_string(), "2.00d");
    }

    #[test]
    fn ratio_guards_zero() {
        let d = TimeDelta::from_secs(10);
        assert_eq!(d.ratio(TimeDelta::ZERO), None);
        assert_eq!(d.ratio(TimeDelta::from_secs(4)), Some(2.5));
    }

    #[test]
    fn sum_of_deltas() {
        let total: TimeDelta = [1u64, 2, 3].into_iter().map(TimeDelta::from_secs).sum();
        assert_eq!(total, TimeDelta::from_secs(6));
    }
}
