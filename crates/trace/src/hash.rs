//! Fast non-cryptographic hashing for hot-path maps: [`FxHasher`].
//!
//! The analysis kernels perform one hash-map operation per *block
//! touch* (tens of millions per second), where the default SipHash
//! hasher costs more than the rest of the probe combined. `FxHasher`
//! is the classic multiply-rotate word hasher popularized by the Rust
//! compiler: one rotate, one xor and one multiply per word, which is
//! 2-3× faster on small integer keys while mixing well enough for
//! block ids and volume ids.
//!
//! This is **not** a DoS-resistant hasher: keys here come from trace
//! files the user chose to analyze, not from untrusted network input,
//! so hash-flooding resistance buys nothing.
//!
//! # Example
//!
//! ```
//! use cbs_trace::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, u32> = FxHashMap::default();
//! m.insert(42, 1);
//! assert_eq!(m.get(&42), Some(&1));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word hasher (FxHash): fast on integer keys.
///
/// See the [module docs](self) for when this is appropriate.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

/// The odd multiplier used by FxHash (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Byte-slice keys are not on any hot path; fold 8 bytes at a
        // time and finish with the length so prefixes hash differently.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | u64::from(b);
        }
        self.mix(tail ^ (bytes.len() as u64) << 56);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // A final rotate spreads entropy into the low bits hashbrown
        // uses for bucket selection.
        self.state.rotate_left(26)
    }
}

/// `BuildHasher` for [`FxHasher`] (stateless, so `Default` suffices).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`] — drop-in for hot integer-keyed
/// maps.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one<H: std::hash::Hash>(v: H) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_distinct() {
        assert_eq!(hash_one(7u64), hash_one(7u64));
        assert_ne!(hash_one(7u64), hash_one(8u64));
        assert_ne!(hash_one(0u64), hash_one(1u64));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 4096, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 4096)), Some(&i));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn sequential_block_ids_spread_low_bits() {
        // hashbrown picks buckets from low bits; sequential ids must
        // not collapse onto a few residues.
        let mut low7 = FxHashSet::default();
        for i in 0..128u64 {
            low7.insert(hash_one(i) & 0x7f);
        }
        assert!(low7.len() > 64, "only {} distinct low-7 values", low7.len());
    }

    #[test]
    fn byte_slices_hash_by_content_and_length() {
        assert_eq!(
            hash_one(b"abcdefgh".as_slice()),
            hash_one(b"abcdefgh".as_slice())
        );
        assert_ne!(
            hash_one(b"abcdefgh".as_slice()),
            hash_one(b"abcdefg".as_slice())
        );
        assert_ne!(hash_one(b"".as_slice()), hash_one(b"\0".as_slice()));
    }
}
