//! `cbs-convert` — one-shot CSV → CBT trace conversion.
//!
//! Converts an AliCloud or MSR-Cambridge CSV trace into the columnar
//! binary trace format (CBT, see `cbs_trace::codec::cbt`) so large
//! corpora are parsed once and every later ingest reads delta/varint
//! columns at near-memcpy speed.
//!
//! ```text
//! cbs-convert alicloud <input.csv> <output.cbt>
//! cbs-convert msrc     <input.csv> <output.cbt> [--volumes <names.csv>]
//! cbs-convert info     <trace.cbt>
//! ```
//!
//! `-` as the input path reads stdin. MSRC conversion drops the
//! response-time column (CBT carries request fields only) and, with
//! `--volumes`, writes a sidecar mapping `id,hostname_disk` per line so
//! the interned volume ids stay interpretable. `--metrics` (any mode)
//! attaches a `cbs-obs` registry to the decoder/reader and dumps its
//! JSON export to stderr after the summary line — the quickest way to
//! see decode/CBT stage counters (bytes, records, CRC failures,
//! malformed-line position) for a real trace file.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::process::ExitCode;
use std::time::Instant;

use cbs_obs::Registry;
use cbs_trace::codec::msrc::VolumeRegistry;
use cbs_trace::codec::parallel::ParallelDecoder;
use cbs_trace::{CbtReader, CbtWriter};

const USAGE: &str = "usage: cbs-convert alicloud <input.csv> <output.cbt>
       cbs-convert msrc     <input.csv> <output.cbt> [--volumes <names.csv>]
       cbs-convert info     <trace.cbt>

Converts CSV traces to the columnar binary trace format (CBT).
`-` as the input path reads from stdin.
`--metrics` (any mode) dumps pipeline stage counters as JSON to stderr.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cbs-convert: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut args: Vec<String> = args.to_vec();
    let metrics = if let Some(i) = args.iter().position(|a| a == "--metrics") {
        args.remove(i);
        Some(Registry::new())
    } else {
        None
    };
    let mode = args.first().map(String::as_str);
    let result = match mode {
        Some("alicloud") if args.len() == 3 => {
            convert_alicloud(&args[1], &args[2], metrics.as_ref())
        }
        Some("msrc") if args.len() == 3 => convert_msrc(&args[1], &args[2], None, metrics.as_ref()),
        Some("msrc") if args.len() == 5 && args[3] == "--volumes" => {
            convert_msrc(&args[1], &args[2], Some(&args[4]), metrics.as_ref())
        }
        Some("info") if args.len() == 2 => info(&args[1], metrics.as_ref()),
        Some("-h" | "--help") => {
            println!("{USAGE}");
            return Ok(());
        }
        _ => return Err(format!("bad arguments\n{USAGE}")),
    };
    // Dump even on failure: the counters show how far the pipeline got
    // (e.g. `decode.malformed_line` pinpoints a bad record).
    if let Some(registry) = &metrics {
        eprintln!("{}", registry.to_json());
    }
    result
}

fn open_input(path: &str) -> Result<Box<dyn Read + Send>, String> {
    if path == "-" {
        return Ok(Box::new(io::stdin()));
    }
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    Ok(Box::new(BufReader::new(file)))
}

fn create_output(path: &str) -> Result<BufWriter<File>, String> {
    let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    Ok(BufWriter::new(file))
}

fn with_metrics(decoder: ParallelDecoder, metrics: Option<&Registry>) -> ParallelDecoder {
    match metrics {
        Some(registry) => decoder.with_registry(registry),
        None => decoder,
    }
}

fn convert_alicloud(input: &str, output: &str, metrics: Option<&Registry>) -> Result<(), String> {
    let reader = open_input(input)?;
    let out = create_output(output)?;
    let start = Instant::now();
    let mut writer = CbtWriter::new(out);
    let mut write_error: Option<String> = None;
    let stats = with_metrics(ParallelDecoder::new(), metrics)
        .decode_alicloud_batches(reader, |batch| {
            if write_error.is_none() {
                if let Err(e) = writer.write_batch(&batch) {
                    write_error = Some(format!("write {output}: {e}"));
                }
            }
        })
        .map_err(|e| format!("decode {input}: {e}"))?;
    if let Some(msg) = write_error {
        return Err(msg);
    }
    let out_bytes = finish_writer(writer, output)?;
    report("alicloud", stats.records, stats.bytes, out_bytes, start);
    Ok(())
}

fn convert_msrc(
    input: &str,
    output: &str,
    volumes: Option<&str>,
    metrics: Option<&Registry>,
) -> Result<(), String> {
    let reader = open_input(input)?;
    let out = create_output(output)?;
    let start = Instant::now();
    let mut writer = CbtWriter::new(out);
    let mut registry = VolumeRegistry::new();
    let mut write_error: Option<String> = None;
    let stats = with_metrics(ParallelDecoder::new(), metrics)
        .decode_msrc_batches(reader, &mut registry, |batch| {
            if write_error.is_none() {
                if let Err(e) = writer.write_batch(&batch) {
                    write_error = Some(format!("write {output}: {e}"));
                }
            }
        })
        .map_err(|e| format!("decode {input}: {e}"))?;
    if let Some(msg) = write_error {
        return Err(msg);
    }
    let out_bytes = finish_writer(writer, output)?;
    if let Some(path) = volumes {
        let mut sidecar = create_output(path)?;
        for (id, name) in registry.iter() {
            writeln!(sidecar, "{},{}", id.get(), name).map_err(|e| format!("write {path}: {e}"))?;
        }
        sidecar.flush().map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("volumes  {} names -> {path}", registry.len());
    }
    report("msrc", stats.records, stats.bytes, out_bytes, start);
    Ok(())
}

fn finish_writer(writer: CbtWriter<BufWriter<File>>, output: &str) -> Result<u64, String> {
    let mut out = writer
        .finish()
        .map_err(|e| format!("write {output}: {e}"))?;
    out.flush().map_err(|e| format!("write {output}: {e}"))?;
    let file = out
        .into_inner()
        .map_err(|e| format!("write {output}: {e}"))?;
    let len = file
        .metadata()
        .map_err(|e| format!("stat {output}: {e}"))?
        .len();
    Ok(len)
}

fn report(format: &str, records: u64, in_bytes: u64, out_bytes: u64, start: Instant) {
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    eprintln!(
        "{format}  {records} records  {:.1} MiB csv -> {:.1} MiB cbt ({:.2}x)  \
         {:.2}s  {:.0} records/s",
        in_bytes as f64 / (1 << 20) as f64,
        out_bytes as f64 / (1 << 20) as f64,
        in_bytes as f64 / out_bytes.max(1) as f64,
        secs,
        records as f64 / secs,
    );
}

fn info(path: &str, metrics: Option<&Registry>) -> Result<(), String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut reader = CbtReader::new(BufReader::new(file));
    if let Some(registry) = metrics {
        reader = reader.with_registry(registry);
    }
    let mut blocks = 0u64;
    let mut records = 0u64;
    let mut volumes = std::collections::BTreeSet::new();
    let mut first_ts = None;
    let mut last_ts = None;
    loop {
        match reader.read_batch() {
            Ok(None) => break,
            Ok(Some(batch)) => {
                blocks += 1;
                records += batch.len() as u64;
                volumes.extend(batch.volumes().iter().copied());
                if let Some(ts) = batch.timestamps().first() {
                    first_ts.get_or_insert(*ts);
                }
                if let Some(ts) = batch.timestamps().last() {
                    last_ts = Some(*ts);
                }
            }
            Err(e) => return Err(format!("read {path}: {e}")),
        }
    }
    println!("blocks   {blocks}");
    println!("records  {records}");
    println!("volumes  {}", volumes.len());
    if let (Some(first), Some(last)) = (first_ts, last_ts) {
        println!("span     {} .. {} us", first.as_micros(), last.as_micros());
    }
    Ok(())
}
