//! Property-based tests for the trace data model and codecs.

use proptest::prelude::*;

use cbs_trace::codec::alicloud::{self, AliCloudReader, AliCloudWriter};
use cbs_trace::codec::msrc::{self, MsrcReader, MsrcWriter, VolumeRegistry};
use cbs_trace::iter::{is_sorted_by_time, sort_by_time};
use cbs_trace::{
    BlockSize, CbtReader, CbtWriter, IoRequest, MergeByTime, OpKind, RequestBatch, TimeDelta,
    Timestamp, Trace, VolumeId,
};

fn arb_op() -> impl Strategy<Value = OpKind> {
    prop_oneof![Just(OpKind::Read), Just(OpKind::Write)]
}

prop_compose! {
    fn arb_request()(
        volume in 0u32..64,
        op in arb_op(),
        offset in 0u64..(1 << 40),
        len in 0u32..(1 << 22),
        ts in 0u64..(1 << 45),
    ) -> IoRequest {
        IoRequest::new(VolumeId::new(volume), op, offset, len, Timestamp::from_micros(ts))
    }
}

proptest! {
    /// AliCloud format ⇄ record round-trips exactly.
    #[test]
    fn alicloud_record_roundtrip(req in arb_request()) {
        let line = alicloud::format_record(&req);
        let back = alicloud::parse_record(&line).unwrap();
        prop_assert_eq!(back, req);
    }

    /// AliCloud stream round-trips through writer + reader.
    #[test]
    fn alicloud_stream_roundtrip(reqs in proptest::collection::vec(arb_request(), 0..200)) {
        let mut buf = Vec::new();
        AliCloudWriter::new(&mut buf).write_all(&reqs).unwrap();
        let back: Vec<IoRequest> = AliCloudReader::new(&buf[..])
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(back, reqs);
    }

    /// MSRC format round-trips the request, response time, and volume name.
    #[test]
    fn msrc_record_roundtrip(req in arb_request(), response_us in 0u64..(1 << 30)) {
        let response = TimeDelta::from_micros(response_us);
        let line = msrc::format_record(&req, "hostx", req.volume().get(), response);
        let mut reg = VolumeRegistry::new();
        let rec = msrc::parse_record(&line, &mut reg).unwrap();
        // Volume ids are re-assigned densely by the registry; compare the rest.
        prop_assert_eq!(rec.request().op(), req.op());
        prop_assert_eq!(rec.request().offset(), req.offset());
        prop_assert_eq!(rec.request().len(), req.len());
        prop_assert_eq!(rec.request().ts(), req.ts());
        prop_assert_eq!(rec.response_time(), response);
        let expected_name = format!("hostx_{}", req.volume().get());
        prop_assert_eq!(reg.name_of(rec.request().volume()), Some(expected_name.as_str()));
    }

    /// MSRC stream round-trips through writer + reader with named volumes.
    #[test]
    fn msrc_stream_roundtrip(reqs in proptest::collection::vec(arb_request(), 0..100)) {
        let mut buf = Vec::new();
        {
            let mut w = MsrcWriter::new(&mut buf);
            for r in &reqs {
                w.write_named(r, &format!("host_{}", r.volume().get()), TimeDelta::ZERO)
                    .unwrap();
            }
        }
        let recs: Vec<_> = MsrcReader::new(&buf[..]).collect::<Result<Vec<_>, _>>().unwrap();
        prop_assert_eq!(recs.len(), reqs.len());
        for (rec, req) in recs.iter().zip(&reqs) {
            prop_assert_eq!(rec.request().offset(), req.offset());
            prop_assert_eq!(rec.request().len(), req.len());
            prop_assert_eq!(rec.request().ts(), req.ts());
            prop_assert_eq!(rec.request().op(), req.op());
        }
    }

    /// Block spans cover exactly the bytes of the request: every touched
    /// byte falls in an emitted block and every emitted block overlaps
    /// the byte range.
    #[test]
    fn block_span_covers_range(
        offset in 0u64..(1 << 40),
        len in 0u32..(1 << 18),
        shift in 9u32..17,
    ) {
        let bs = BlockSize::new(1 << shift).unwrap();
        let blocks: Vec<_> = bs.span(offset, len).collect();
        prop_assert_eq!(blocks.len() as u64, bs.count(offset, len));
        if len == 0 {
            prop_assert!(blocks.is_empty());
        } else {
            // first block contains `offset`, last contains the final byte
            prop_assert_eq!(*blocks.first().unwrap(), bs.block_of(offset));
            prop_assert_eq!(*blocks.last().unwrap(), bs.block_of(offset + u64::from(len) - 1));
            // blocks are consecutive
            for w in blocks.windows(2) {
                prop_assert_eq!(w[1].get(), w[0].get() + 1);
            }
        }
    }

    /// Merging sorted runs yields a sorted, complete permutation.
    #[test]
    fn merge_by_time_is_sorted_permutation(
        mut runs in proptest::collection::vec(
            proptest::collection::vec(arb_request(), 0..50),
            0..6,
        )
    ) {
        for run in &mut runs {
            sort_by_time(run);
        }
        let expected: usize = runs.iter().map(Vec::len).sum();
        let merged: Vec<_> =
            MergeByTime::new(runs.iter().cloned().map(Vec::into_iter).collect()).collect();
        prop_assert_eq!(merged.len(), expected);
        prop_assert!(is_sorted_by_time(&merged));
        // multiset equality via sorted comparison
        let mut all: Vec<_> = runs.concat();
        let mut merged_sorted = merged.clone();
        let key = |r: &IoRequest| (r.ts(), r.volume(), r.offset(), r.len(), r.op().index());
        all.sort_by_key(key);
        merged_sorted.sort_by_key(key);
        prop_assert_eq!(all, merged_sorted);
    }

    /// Trace construction preserves every request and sorts per volume.
    #[test]
    fn trace_grouping_invariants(reqs in proptest::collection::vec(arb_request(), 0..300)) {
        let trace = Trace::from_requests(reqs.clone());
        prop_assert_eq!(trace.request_count(), reqs.len());
        let mut seen = 0usize;
        for view in trace.volumes() {
            prop_assert!(is_sorted_by_time(view.requests()));
            prop_assert!(view.requests().iter().all(|r| r.volume() == view.id()));
            seen += view.len();
        }
        prop_assert_eq!(seen, reqs.len());
        // global time order is sorted as well
        let merged: Vec<_> = trace.iter_time_ordered().collect();
        prop_assert!(is_sorted_by_time(&merged));
    }
}

fn encode_cbt(reqs: &[IoRequest], block_capacity: usize) -> Vec<u8> {
    let mut writer = CbtWriter::with_block_capacity(Vec::new(), block_capacity);
    writer
        .write_batch(&RequestBatch::from(reqs))
        .expect("Vec sink never fails");
    writer.finish().expect("Vec sink never fails")
}

fn decode_cbt(bytes: &[u8]) -> Result<Vec<IoRequest>, cbs_trace::CbtError> {
    let mut reader = CbtReader::new(bytes);
    let mut out = Vec::new();
    while let Some(batch) = reader.read_batch()? {
        out.extend(batch.iter());
    }
    Ok(out)
}

proptest! {
    /// CSV → CBT → decode is bit-identical to direct CSV decoding for
    /// the AliCloud dialect, at every block capacity.
    #[test]
    fn cbt_matches_direct_alicloud_decode(
        reqs in proptest::collection::vec(arb_request(), 0..400),
        block_capacity in 1usize..300,
    ) {
        let mut csv = Vec::new();
        AliCloudWriter::new(&mut csv).write_all(&reqs).unwrap();
        let direct: Vec<IoRequest> = AliCloudReader::new(&csv[..])
            .collect::<Result<_, _>>()
            .unwrap();
        let via_cbt = decode_cbt(&encode_cbt(&direct, block_capacity)).unwrap();
        prop_assert_eq!(via_cbt, direct);
    }

    /// The same property for the MSRC dialect, going through the
    /// columnar batch decoder (the `cbs-convert` path): the requests a
    /// CBT file yields are bit-identical to a direct sequential read.
    #[test]
    fn cbt_matches_direct_msrc_decode(
        reqs in proptest::collection::vec(arb_request(), 0..300),
        block_capacity in 1usize..300,
    ) {
        let mut csv = Vec::new();
        {
            let mut w = MsrcWriter::new(&mut csv);
            for r in &reqs {
                w.write_record(r, "host", r.volume().get() % 5, TimeDelta::from_micros(9))
                    .unwrap();
            }
        }
        let mut seq_reader = MsrcReader::new(&csv[..]);
        let mut direct = Vec::new();
        for item in &mut seq_reader {
            direct.push(item.unwrap().into_request());
        }

        let decoder = cbs_trace::ParallelDecoder::new().with_threads(2).with_chunk_size(4096);
        let mut registry = VolumeRegistry::new();
        let mut writer = CbtWriter::with_block_capacity(Vec::new(), block_capacity);
        decoder
            .decode_msrc_batches(&csv[..], &mut registry, |batch| {
                writer.write_batch(&batch).unwrap();
            })
            .unwrap();
        let bytes = writer.finish().unwrap();
        let via_cbt = decode_cbt(&bytes).unwrap();
        prop_assert_eq!(via_cbt, direct);
    }

    /// Truncating a CBT stream anywhere either raises an error or — when
    /// the cut falls exactly on a block boundary, which the format cannot
    /// distinguish from a clean end of stream — yields a strict prefix of
    /// whole blocks, never garbled or reordered records.
    #[test]
    fn cbt_truncation_never_yields_wrong_records(
        reqs in proptest::collection::vec(arb_request(), 1..200),
        block_capacity in 1usize..64,
        cut_seed in 0usize..10_000,
    ) {
        let bytes = encode_cbt(&reqs, block_capacity);
        let cut = cut_seed % bytes.len(); // strictly shorter than the stream
        match decode_cbt(&bytes[..cut]) {
            Err(_) => {}
            Ok(decoded) => {
                prop_assert!(decoded.len() < reqs.len());
                prop_assert_eq!(decoded.len() % block_capacity, 0, "partial block yielded");
                prop_assert_eq!(&decoded[..], &reqs[..decoded.len()]);
            }
        }
    }

    /// The zero-copy slice reader (the mmap path) is bit-identical to
    /// the buffered reader on the same stream: same records, same
    /// per-block boundaries, and the same error at the same point for
    /// truncated or corrupted input, with both poisoning afterwards.
    #[test]
    fn cbt_slice_reader_matches_buffered(
        reqs in proptest::collection::vec(arb_request(), 0..200),
        block_capacity in 1usize..64,
        damage_seed in 0usize..10_000,
        flip in 0u8..=255,
    ) {
        let mut bytes = encode_cbt(&reqs, block_capacity);
        // flip == 0 leaves the stream clean; otherwise damage one byte
        // (any byte: header, block header, payload) or truncate.
        if flip != 0 && !bytes.is_empty() {
            let pos = damage_seed % bytes.len();
            if damage_seed % 3 == 0 {
                bytes.truncate(pos);
            } else {
                bytes[pos] ^= flip;
            }
        }

        let mut buffered = CbtReader::new(&bytes[..]);
        let mut sliced = cbs_trace::CbtSliceReader::new(&bytes);
        loop {
            let b = buffered.read_batch();
            let s = sliced.read_batch_ref();
            match (b, s) {
                (Ok(Some(bb)), Ok(Some(sb))) => {
                    prop_assert_eq!(bb.as_ref(), sb);
                }
                (Ok(None), Ok(None)) => break,
                (Err(be), Err(se)) => {
                    prop_assert_eq!(format!("{be:?}"), format!("{se:?}"));
                    // Both must now be poisoned.
                    prop_assert!(matches!(
                        buffered.read_batch(),
                        Err(cbs_trace::CbtError::Poisoned)
                    ));
                    prop_assert!(matches!(
                        sliced.read_batch_ref(),
                        Err(cbs_trace::CbtError::Poisoned)
                    ));
                    break;
                }
                (b, s) => prop_assert!(
                    false,
                    "readers diverged: buffered={:?} sliced={:?}",
                    b.map(|o| o.map(|x| x.len())),
                    s.map(|o| o.map(|x| x.len()))
                ),
            }
        }
    }

    /// `Mmap::open` + slice reader decodes a real on-disk CBT file to
    /// exactly the records that were written.
    #[test]
    fn cbt_mmap_roundtrip(
        reqs in proptest::collection::vec(arb_request(), 0..120),
        block_capacity in 1usize..48,
    ) {
        let bytes = encode_cbt(&reqs, block_capacity);
        let mut path = std::env::temp_dir();
        path.push(format!(
            "cbs-trace-proptest-{}-{}.cbt",
            std::process::id(),
            reqs.len()
        ));
        std::fs::write(&path, &bytes).expect("write temp file");
        let map = cbs_trace::Mmap::open(&path).expect("map");
        let mut reader = cbs_trace::CbtSliceReader::new(&map);
        let mut decoded = Vec::new();
        while let Some(batch) = reader.read_batch_ref().expect("clean stream") {
            decoded.extend(batch.iter());
        }
        drop(reader);
        drop(map);
        std::fs::remove_file(&path).expect("cleanup");
        prop_assert_eq!(decoded, reqs);
    }

    /// Flipping any byte of a CBT stream is either detected (magic,
    /// version, block header, or checksum failure) or harmless — flips in
    /// the header's unvalidated flags/reserved bytes — never silently
    /// wrong records.
    #[test]
    fn cbt_corruption_never_yields_wrong_records(
        reqs in proptest::collection::vec(arb_request(), 1..200),
        block_capacity in 1usize..64,
        pos_seed in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let bytes = encode_cbt(&reqs, block_capacity);
        let pos = pos_seed % bytes.len();
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= flip;
        match decode_cbt(&corrupted) {
            Err(_) => {}
            Ok(decoded) => {
                // Only the 6 flags/reserved header bytes are ignored by
                // design; nothing else may pass unnoticed.
                prop_assert!((10..16).contains(&pos), "undetected flip at byte {}", pos);
                prop_assert_eq!(decoded, reqs);
            }
        }
    }
}

proptest! {
    /// Parallel chunked decoding is byte-equivalent to sequential
    /// reading for every chunk size: records that straddle chunk
    /// boundaries are never mis-parsed, dropped, or reordered.
    #[test]
    fn parallel_decode_matches_sequential_across_chunk_sizes(
        reqs in proptest::collection::vec(arb_request(), 0..400),
        chunk_size in 4096usize..16384,
        threads in 1usize..5,
    ) {
        let mut buf = Vec::new();
        AliCloudWriter::new(&mut buf).write_all(&reqs).unwrap();
        let sequential: Vec<IoRequest> = AliCloudReader::new(&buf[..])
            .collect::<Result<_, _>>()
            .unwrap();
        let decoder = cbs_trace::ParallelDecoder::new()
            .with_threads(threads)
            .with_chunk_size(chunk_size);
        let parallel = decoder.decode_alicloud_slice(&buf).unwrap();
        prop_assert_eq!(parallel, sequential);
    }

    /// The same boundary property for MSRC, including deterministic
    /// first-appearance volume-id assignment across chunks.
    #[test]
    fn parallel_msrc_decode_matches_sequential(
        reqs in proptest::collection::vec(arb_request(), 0..300),
        chunk_size in 4096usize..16384,
        threads in 1usize..5,
    ) {
        let mut buf = Vec::new();
        {
            let mut w = MsrcWriter::new(&mut buf);
            for r in &reqs {
                w.write_record(r, "host", r.volume().get() % 7, TimeDelta::from_micros(5))
                    .unwrap();
            }
        }
        let mut seq_reader = MsrcReader::new(&buf[..]);
        let mut sequential = Vec::new();
        for item in &mut seq_reader {
            sequential.push(item.unwrap());
        }
        let seq_registry = seq_reader.into_registry();

        let decoder = cbs_trace::ParallelDecoder::new()
            .with_threads(threads)
            .with_chunk_size(chunk_size);
        let (parallel, par_registry) = decoder.decode_msrc_slice(&buf).unwrap();
        prop_assert_eq!(parallel, sequential);
        prop_assert_eq!(par_registry.len(), seq_registry.len());
        for (id, name) in seq_registry.iter() {
            prop_assert_eq!(par_registry.name_of(id), Some(name));
        }
    }
}

proptest! {
    /// `Trace::merge` is associative and commutative on the canonical
    /// request layout, with the empty trace as identity — the algebra
    /// `cbs-lint`'s `mergeable-audit` (CBS-L13) demands of the tag.
    #[test]
    fn trace_merge_is_associative(
        a in proptest::collection::vec(arb_request(), 0..120),
        b in proptest::collection::vec(arb_request(), 0..120),
        c in proptest::collection::vec(arb_request(), 0..120),
    ) {
        let t = Trace::from_requests;

        let left = t(a.clone()).merge(t(b.clone())).merge(t(c.clone()));
        let right = t(a.clone()).merge(t(b.clone()).merge(t(c.clone())));
        prop_assert_eq!(left.requests(), right.requests());

        // Commutativity needs distinct (volume, ts) keys: the stable
        // sort breaks exact ties by input order. Deduplicate by key to
        // test the law on the lawful domain.
        let mut seen = std::collections::HashSet::new();
        let uniq = |reqs: &[IoRequest], seen: &mut std::collections::HashSet<(u32, u64)>| {
            reqs.iter()
                .filter(|r| seen.insert((r.volume().get(), r.ts().as_micros())))
                .copied()
                .collect::<Vec<_>>()
        };
        let ua = uniq(&a, &mut seen);
        let ub = uniq(&b, &mut seen);
        let ab = t(ua.clone()).merge(t(ub.clone()));
        let ba = t(ub).merge(t(ua));
        prop_assert_eq!(ab.requests(), ba.requests());

        let with_identity = t(a.clone()).merge(Trace::new());
        prop_assert_eq!(with_identity.requests(), t(a.clone()).requests());
    }
}
