//! Property tests for the MERGEABLE metric algebra.
//!
//! ROADMAP item 1 (agent/controller fan-out) assumes partial metrics
//! merge lawfully: combining per-worker state must give the same
//! answer no matter how the reductions are grouped or ordered. These
//! tests pin the monoid laws — associativity, commutativity, identity —
//! for [`Counter`], [`Histogram`], [`Gauge`], [`SpanTimer`], and
//! [`Registry`], and are the associativity evidence `cbs-lint`'s
//! `mergeable-audit` rule (CBS-L13) requires.

use proptest::prelude::*;

use cbs_obs::{Counter, Gauge, Histogram, Registry, SpanTimer};

/// A counter holding the given total.
fn counter(total: u64) -> Counter {
    let c = Counter::new();
    c.add(total);
    c
}

/// A histogram holding the given samples.
fn histogram(samples: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Full observable state of a histogram, for equality checks: the
/// snapshot covers count/sum/min/max and the bucketed quantiles.
fn observe(h: &Histogram) -> (u64, u64, u64, u64, u64, u64, u64) {
    let s = h.snapshot();
    (s.count, s.sum, s.min, s.max, s.p50, s.p90, s.p99)
}

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..=u64::MAX, 0..40)
}

proptest! {
    /// `merge` on counters is associative:
    /// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`.
    #[test]
    fn counter_merge_is_associative(
        a in (0u64..=u64::MAX),
        b in (0u64..=u64::MAX),
        c in (0u64..=u64::MAX),
    ) {
        let left = counter(a);
        left.merge(&counter(b));
        left.merge(&counter(c));

        let right_tail = counter(b);
        right_tail.merge(&counter(c));
        let right = counter(a);
        right.merge(&right_tail);

        prop_assert_eq!(left.get(), right.get());
    }

    /// Counter merge commutes and a fresh counter is the identity.
    #[test]
    fn counter_merge_commutes_with_identity(a in (0u64..=u64::MAX), b in (0u64..=u64::MAX)) {
        let ab = counter(a);
        ab.merge(&counter(b));
        let ba = counter(b);
        ba.merge(&counter(a));
        prop_assert_eq!(ab.get(), ba.get());

        let with_identity = counter(a);
        with_identity.merge(&Counter::new());
        prop_assert_eq!(with_identity.get(), a);
    }

    /// `merge` on histograms is associative across every observable:
    /// buckets (via quantiles), count, sum, min, max.
    #[test]
    fn histogram_merge_is_associative(
        a in arb_samples(),
        b in arb_samples(),
        c in arb_samples(),
    ) {
        let left = histogram(&a);
        left.merge(&histogram(&b));
        left.merge(&histogram(&c));

        let right_tail = histogram(&b);
        right_tail.merge(&histogram(&c));
        let right = histogram(&a);
        right.merge(&right_tail);

        prop_assert_eq!(observe(&left), observe(&right));
    }

    /// Histogram merge equals recording the concatenated samples
    /// directly (the homomorphism that makes fan-out exact), commutes,
    /// and has the empty histogram as identity.
    #[test]
    fn histogram_merge_matches_direct_recording(
        a in arb_samples(),
        b in arb_samples(),
    ) {
        let merged = histogram(&a);
        merged.merge(&histogram(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(observe(&merged), observe(&histogram(&both)));

        let flipped = histogram(&b);
        flipped.merge(&histogram(&a));
        prop_assert_eq!(observe(&merged), observe(&flipped));

        let with_identity = histogram(&a);
        with_identity.merge(&Histogram::new());
        prop_assert_eq!(observe(&with_identity), observe(&histogram(&a)));
    }

    /// `Gauge::merge` is max-merge: associative, commutative, with the
    /// zero gauge as identity — never last-write-wins.
    #[test]
    fn gauge_merge_is_associative_max(
        a in (0u64..=u64::MAX),
        b in (0u64..=u64::MAX),
        c in (0u64..=u64::MAX),
    ) {
        let gauge = |v: u64| {
            let g = Gauge::new();
            g.set(v);
            g
        };

        let left = gauge(a);
        left.merge(&gauge(b));
        left.merge(&gauge(c));

        let right_tail = gauge(b);
        right_tail.merge(&gauge(c));
        let right = gauge(a);
        right.merge(&right_tail);
        prop_assert_eq!(left.get(), right.get());
        prop_assert_eq!(left.get(), a.max(b).max(c), "max, not last-write-wins");

        let flipped = gauge(b);
        flipped.merge(&gauge(a));
        let ab = gauge(a);
        ab.merge(&gauge(b));
        prop_assert_eq!(ab.get(), flipped.get());

        let with_identity = gauge(a);
        with_identity.merge(&Gauge::new());
        prop_assert_eq!(with_identity.get(), a);
    }

    /// `SpanTimer::merge` is associative and equals recording the
    /// concatenated durations, like the histogram backing it.
    #[test]
    fn span_timer_merge_is_associative(
        a in arb_samples(),
        b in arb_samples(),
        c in arb_samples(),
    ) {
        let timer = |samples: &[u64]| {
            let t = SpanTimer::new();
            for &s in samples {
                t.record_nanos(s);
            }
            t
        };

        let left = timer(&a);
        left.merge(&timer(&b));
        left.merge(&timer(&c));

        let right_tail = timer(&b);
        right_tail.merge(&timer(&c));
        let right = timer(&a);
        right.merge(&right_tail);
        prop_assert_eq!(left.snapshot(), right.snapshot());

        let merged = timer(&a);
        merged.merge(&timer(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged.snapshot(), timer(&both).snapshot());

        let with_identity = timer(&a);
        with_identity.merge(&SpanTimer::new());
        prop_assert_eq!(with_identity.snapshot(), timer(&a).snapshot());
    }

    /// `Registry::merge` is associative name-wise: every kind folds
    /// with its own law (counters add, gauges max, histograms add),
    /// the empty registry is the identity, and the JSON export —
    /// deterministic by construction — is byte-identical across
    /// groupings.
    #[test]
    fn registry_merge_is_associative(
        counts in proptest::collection::vec(0u64..1_000_000, 3..4),
        levels in proptest::collection::vec(0u64..1_000_000, 3..4),
        samples_a in arb_samples(),
        samples_b in arb_samples(),
    ) {
        let registry = |count: u64, level: u64, samples: &[u64]| {
            let r = Registry::new();
            r.counter("part.events").add(count);
            r.gauge("part.hwm").set(level);
            let h = r.histogram("part.sizes");
            for &s in samples {
                h.record(s);
            }
            r
        };

        let empty: [u64; 0] = [];
        // Clones share the same store, so build fresh partials for
        // each grouping instead of merging shared handles twice.
        let left = {
            let l = registry(counts[0], levels[0], &samples_a);
            l.merge(&registry(counts[1], levels[1], &samples_b));
            l.merge(&registry(counts[2], levels[2], &empty));
            l
        };
        let right = {
            let tail = registry(counts[1], levels[1], &samples_b);
            tail.merge(&registry(counts[2], levels[2], &empty));
            let r = registry(counts[0], levels[0], &samples_a);
            r.merge(&tail);
            r
        };
        prop_assert_eq!(left.to_json(), right.to_json());
        prop_assert_eq!(left.counter("part.events").get(), counts.iter().sum::<u64>());
        prop_assert_eq!(left.gauge("part.hwm").get(), *levels.iter().max().expect("non-empty"));

        let with_identity = registry(counts[0], levels[0], &samples_a);
        with_identity.merge(&Registry::new());
        prop_assert_eq!(
            with_identity.to_json(),
            registry(counts[0], levels[0], &samples_a).to_json()
        );

        // Self-merge through a clone is a no-op, not a double-count.
        let solo = registry(counts[0], levels[0], &samples_a);
        let alias = solo.clone();
        solo.merge(&alias);
        prop_assert_eq!(solo.counter("part.events").get(), counts[0]);
    }
}
