//! Property tests for the MERGEABLE metric algebra.
//!
//! ROADMAP item 1 (agent/controller fan-out) assumes partial metrics
//! merge lawfully: combining per-worker state must give the same
//! answer no matter how the reductions are grouped or ordered. These
//! tests pin the monoid laws — associativity, commutativity, identity —
//! for [`Counter`] and [`Histogram`], and are the associativity
//! evidence `cbs-lint`'s `mergeable-audit` rule (CBS-L13) requires.

use proptest::prelude::*;

use cbs_obs::{Counter, Histogram};

/// A counter holding the given total.
fn counter(total: u64) -> Counter {
    let c = Counter::new();
    c.add(total);
    c
}

/// A histogram holding the given samples.
fn histogram(samples: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Full observable state of a histogram, for equality checks: the
/// snapshot covers count/sum/min/max and the bucketed quantiles.
fn observe(h: &Histogram) -> (u64, u64, u64, u64, u64, u64, u64) {
    let s = h.snapshot();
    (s.count, s.sum, s.min, s.max, s.p50, s.p90, s.p99)
}

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..=u64::MAX, 0..40)
}

proptest! {
    /// `merge` on counters is associative:
    /// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`.
    #[test]
    fn counter_merge_is_associative(
        a in (0u64..=u64::MAX),
        b in (0u64..=u64::MAX),
        c in (0u64..=u64::MAX),
    ) {
        let left = counter(a);
        left.merge(&counter(b));
        left.merge(&counter(c));

        let right_tail = counter(b);
        right_tail.merge(&counter(c));
        let right = counter(a);
        right.merge(&right_tail);

        prop_assert_eq!(left.get(), right.get());
    }

    /// Counter merge commutes and a fresh counter is the identity.
    #[test]
    fn counter_merge_commutes_with_identity(a in (0u64..=u64::MAX), b in (0u64..=u64::MAX)) {
        let ab = counter(a);
        ab.merge(&counter(b));
        let ba = counter(b);
        ba.merge(&counter(a));
        prop_assert_eq!(ab.get(), ba.get());

        let with_identity = counter(a);
        with_identity.merge(&Counter::new());
        prop_assert_eq!(with_identity.get(), a);
    }

    /// `merge` on histograms is associative across every observable:
    /// buckets (via quantiles), count, sum, min, max.
    #[test]
    fn histogram_merge_is_associative(
        a in arb_samples(),
        b in arb_samples(),
        c in arb_samples(),
    ) {
        let left = histogram(&a);
        left.merge(&histogram(&b));
        left.merge(&histogram(&c));

        let right_tail = histogram(&b);
        right_tail.merge(&histogram(&c));
        let right = histogram(&a);
        right.merge(&right_tail);

        prop_assert_eq!(observe(&left), observe(&right));
    }

    /// Histogram merge equals recording the concatenated samples
    /// directly (the homomorphism that makes fan-out exact), commutes,
    /// and has the empty histogram as identity.
    #[test]
    fn histogram_merge_matches_direct_recording(
        a in arb_samples(),
        b in arb_samples(),
    ) {
        let merged = histogram(&a);
        merged.merge(&histogram(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(observe(&merged), observe(&histogram(&both)));

        let flipped = histogram(&b);
        flipped.merge(&histogram(&a));
        prop_assert_eq!(observe(&merged), observe(&flipped));

        let with_identity = histogram(&a);
        with_identity.merge(&Histogram::new());
        prop_assert_eq!(observe(&with_identity), observe(&histogram(&a)));
    }
}
