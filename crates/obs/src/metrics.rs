//! The recording primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! All three are thin `Arc`s over atomics: cloning a handle observes
//! and mutates the same underlying metric, which is how one metric is
//! shared between a registry, a producer thread, and shard workers.
//! Every mutation is a relaxed atomic operation — values are exact
//! under concurrency (each event is counted exactly once), only
//! cross-metric ordering is unspecified, which is fine for telemetry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
///
/// MERGEABLE: counters form a commutative monoid under [`merge`]
/// (totals add; a fresh counter is the identity), so per-worker
/// counters can be combined into one fleet-wide total in any grouping
/// order — the algebra ROADMAP item 1's fan-out rests on.
///
/// ```
/// let c = cbs_obs::Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
///
/// [`merge`]: Counter::merge
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

// ORDERING: a counter is one independent monotonic cell. Relaxed is
// exact for the value itself (every fetch_add lands), and no other
// memory is published through it, so no Acquire/Release pairing exists
// to preserve.
impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping, like the underlying atomic).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Folds `other`'s total into this counter (wrapping, like `add`).
    ///
    /// Merging is associative and commutative, and a fresh counter is
    /// the identity: `merge(merge(a, b), c)` equals
    /// `merge(a, merge(b, c))` for any grouping of partial counts.
    /// `other` is read, not drained — merge each partial exactly once.
    pub fn merge(&self, other: &Counter) {
        self.add(other.get());
    }
}

/// A settable level: current value plus helpers for tracking extremes.
///
/// Unlike a [`Counter`], a gauge can go down (`dec`, `set`). The
/// in-flight-batches depth of a shard channel and its high-water mark
/// are the motivating uses.
///
/// MERGEABLE: gauges form a commutative monoid under [`merge`], which
/// takes the **maximum** of the two levels (a zero gauge is the
/// identity). Last-write-wins would be wrong across partitions — when
/// per-worker registries are folded, the merge order is arbitrary, so
/// the only lawful combination for a level is an order-independent
/// one. Max is exact for high-water marks (`stream.shard*.inflight_hwm`
/// and friends: the corpus-wide HWM is the max of per-partition HWMs)
/// and is the documented convention for every gauge in
/// [`METRIC_NAMES`](crate::METRIC_NAMES); instantaneous levels
/// (`stream.shards`, `sweep.lanes`) report the largest partition,
/// which for homogeneous workers equals every partition.
///
/// [`merge`]: Gauge::merge
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

// ORDERING: like Counter, a gauge is a single telemetry cell that
// synchronizes nothing else — set/inc/dec/fetch_max are all Relaxed.
// Readers may observe a slightly stale level, never a torn one.
impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds one and returns the new level (e.g. "one more batch in
    /// flight").
    #[inline]
    pub fn inc(&self) -> u64 {
        self.value.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Subtracts one. Callers must pair every `dec` with a prior `inc`;
    /// like the underlying atomic, under-flowing wraps.
    #[inline]
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Raises the stored value to `v` if `v` is larger — a lock-free
    /// high-water mark.
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Folds `other` into this gauge by taking the maximum level.
    ///
    /// Max — not last-write-wins — is the lawful cross-partition
    /// combination: it is associative and commutative with the zero
    /// gauge as identity, and for high-water-mark gauges it is exact
    /// (the fleet-wide HWM is the max of per-partition HWMs). `other`
    /// is read, not drained — merge each partial exactly once.
    pub fn merge(&self, other: &Gauge) {
        self.record_max(other.get());
    }
}

/// Log-linear sub-bucket resolution: each power-of-two octave splits
/// into `2^SUB_BITS` equal-width sub-buckets, bounding the relative
/// quantile error at `1/2^SUB_BITS` = 12.5%. (The previous pure
/// power-of-two layout had a 2× error band — at the issue-lag scales
/// the replay lane curve measures, a p50 of "somewhere in 4.2–8.4 ms"
/// was too coarse to rank lane counts.)
const SUB_BITS: u32 = 3;

/// Values below `2^(SUB_BITS+1)` get one exact bucket each (an octave
/// narrower than `2^SUB_BITS` values cannot be split into `2^SUB_BITS`
/// non-empty sub-buckets).
const LINEAR_BUCKETS: usize = 1 << (SUB_BITS + 1);

/// Total bucket count: 16 exact small-value buckets plus 8 sub-buckets
/// for each of the 60 remaining octaves `[2^e, 2^(e+1))`,
/// `e ∈ 4..=63` — 496 in all, ~4 KiB of counters per histogram.
const BUCKETS: usize = LINEAR_BUCKETS + (63 - SUB_BITS as usize) * (1 << SUB_BITS);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram of `u64` samples (latencies in nanoseconds,
/// request sizes in bytes, batch lengths, …).
///
/// MERGEABLE: histograms with the same (fixed) bucket layout form a
/// commutative monoid under [`merge`] — buckets, counts and sums add,
/// extremes take min/max — so per-shard histograms combine into one
/// distribution in any grouping order.
///
/// Buckets are **log-linear**: each power-of-two octave splits into 8
/// equal-width sub-buckets (values below 16 get one exact bucket
/// each), so recording is still branch-free (`leading_zeros` plus a
/// shift) and the memory footprint constant (496 × 8 B of buckets).
/// Quantiles are approximate: the reported value is the upper bound of
/// the sub-bucket containing the quantile, clamped to the observed
/// maximum — within 12.5% (one eighth) of the true sample, vs. the 2×
/// band of a pure power-of-two layout. Because bucket boundaries never
/// move, merging loses no precision beyond what recording already
/// lost.
///
/// ```
/// let h = cbs_obs::Histogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 4);
/// assert_eq!(snap.sum, 106);
/// assert_eq!(snap.min, 1);
/// assert_eq!(snap.max, 100);
/// ```
///
/// [`merge`]: Histogram::merge
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

/// Index of the bucket holding `v`: small values map one-to-one,
/// larger values to (octave, sub-bucket) where the sub-bucket is the
/// `SUB_BITS` bits below the leading one.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_BUCKETS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let sub = ((v >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    LINEAR_BUCKETS + ((exp - SUB_BITS - 1) as usize) * (1 << SUB_BITS) + sub
}

/// Largest value stored in bucket `b` (inclusive upper bound).
fn bucket_upper_bound(b: usize) -> u64 {
    if b < LINEAR_BUCKETS {
        return b as u64;
    }
    let rel = b - LINEAR_BUCKETS;
    let exp = (rel >> SUB_BITS) as u32 + SUB_BITS + 1; // 4..=63
    let sub = (rel & ((1 << SUB_BITS) - 1)) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    // For the top sub-bucket of octave 63 this lands exactly on
    // u64::MAX without overflowing: 2^63 + 8·2^60 - 1.
    (1u64 << exp) + sub * width + (width - 1)
}

// ORDERING: every bucket/count/sum/min/max cell is updated with an
// independent Relaxed RMW — each sample is recorded exactly once, and
// cross-cell consistency is explicitly not promised (see `snapshot`
// docs). Nothing is published through the histogram, so Relaxed loads
// are likewise sufficient on the read side.
impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &self.inner;
        inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or `None` before the first record.
    pub fn mean(&self) -> Option<f64> {
        let count = self.count();
        (count > 0).then(|| self.sum() as f64 / count as f64)
    }

    /// Approximate quantile (`q` clamped to `[0, 1]`): the upper bound
    /// of the bucket containing the `q`-th sample, clamped to the
    /// observed maximum. `None` before the first record.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let snapshot_count = self.count();
        if snapshot_count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q = 1.0 maps to the last.
        let target = ((q * snapshot_count as f64).ceil() as u64).clamp(1, snapshot_count);
        let mut seen = 0u64;
        for (b, bucket) in self.inner.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Some(bucket_upper_bound(b).min(self.inner.max.load(Ordering::Relaxed)));
            }
        }
        Some(self.inner.max.load(Ordering::Relaxed))
    }

    /// Folds `other`'s samples into this histogram: buckets, count and
    /// sum add (wrapping), min/max take the extremes.
    ///
    /// Merging is associative and commutative with the empty histogram
    /// as identity, so per-shard histograms reduce in any grouping
    /// order. `other` is read, not drained — merge each partial exactly
    /// once. Like `snapshot`, merging concurrent with writers may fold
    /// in a partially recorded sample.
    pub fn merge(&self, other: &Histogram) {
        let (a, b) = (&self.inner, &other.inner);
        for (mine, theirs) in a.buckets.iter().zip(&b.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        a.count
            .fetch_add(b.count.load(Ordering::Relaxed), Ordering::Relaxed);
        a.sum
            .fetch_add(b.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        a.min
            .fetch_min(b.min.load(Ordering::Relaxed), Ordering::Relaxed);
        a.max
            .fetch_max(b.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A consistent-enough copy of the current state (buckets are read
    /// without a global lock, so a concurrent `record` may be partially
    /// visible; totals are exact once writers quiesce).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.inner.min.load(Ordering::Relaxed)
            },
            max: self.inner.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }
}

/// Point-in-time summary of a [`Histogram`] (or a [`crate::SpanTimer`],
/// whose samples are nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Approximate median (bucket upper bound).
    pub p50: u64,
    /// Approximate 90th percentile (bucket upper bound).
    pub p90: u64,
    /// Approximate 99th percentile (bucket upper bound).
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 12, "clones share the same cell");
    }

    #[test]
    fn gauge_levels_and_high_water() {
        let g = Gauge::new();
        assert_eq!(g.inc(), 1);
        assert_eq!(g.inc(), 2);
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(7);
        g.record_max(3);
        assert_eq!(g.get(), 7, "record_max never lowers");
        g.record_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn bucket_layout() {
        // Linear region: one exact bucket per value below 16.
        for v in 0..LINEAR_BUCKETS as u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
        // First log-linear octave [16, 32): 8 sub-buckets of width 2.
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(17), 16);
        assert_eq!(bucket_of(18), 17);
        assert_eq!(bucket_of(31), 23);
        assert_eq!(bucket_upper_bound(16), 17);
        assert_eq!(bucket_upper_bound(23), 31);
        // Octaves tile contiguously: bucket_of(32) starts the next one.
        assert_eq!(bucket_of(32), 24);
        // Top of the range lands in the last bucket, whose upper bound
        // is exactly u64::MAX (no overflow).
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
        // Every bucket index round-trips: upper bound maps back to it,
        // and bounds are strictly increasing.
        let mut prev = None;
        for b in 0..BUCKETS {
            let ub = bucket_upper_bound(b);
            assert_eq!(bucket_of(ub), b, "bucket {b} upper bound {ub}");
            if let Some(p) = prev {
                assert!(ub > p, "bounds must increase: bucket {b}");
            }
            prev = Some(ub);
        }
    }

    /// Satellite check for the log-linear layout: against an exact
    /// sorted reference, reported quantiles stay within the
    /// `1/2^SUB_BITS` = 12.5% relative-error bound on adversarial
    /// distributions (uniform, heavy-tailed, point masses, wide range).
    #[test]
    fn quantile_error_bounded_vs_exact_reference() {
        // Deterministic LCG so the test is reproducible.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let distributions: Vec<Vec<u64>> = vec![
            // Uniform over the ×1000 issue-lag scale (0..20ms in ns).
            (0..4096).map(|_| next() % 20_000_000).collect(),
            // Heavy tail: mostly small, occasional huge.
            (0..4096)
                .map(|i| {
                    if i % 97 == 0 {
                        next() % (1 << 40)
                    } else {
                        next() % 1000
                    }
                })
                .collect(),
            // Point masses (buckets with huge counts).
            (0..4096)
                .map(|i| [7u64, 8_388_607, 17_339_469][i % 3])
                .collect(),
            // Full-width range including extremes.
            (0..1024).map(|_| next()).chain([0, u64::MAX]).collect(),
        ];
        for (d, samples) in distributions.into_iter().enumerate() {
            let h = Histogram::new();
            for &v in &samples {
                h.record(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.5, 0.9, 0.99] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                let approx = h.quantile(q).expect("non-empty");
                // The bucket upper bound can only overshoot, and by at
                // most width/span = 1/2^SUB_BITS of the true value
                // (clamped to max, so never above the largest sample).
                assert!(approx >= exact, "dist {d} q{q}: {approx} < exact {exact}");
                let err = (approx - exact) as f64 / (exact.max(1)) as f64;
                assert!(
                    err <= 0.125 + 1e-9,
                    "dist {d} q{q}: err {err} ({approx} vs {exact})"
                );
            }
        }
    }

    #[test]
    fn histogram_summary() {
        let h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let mean = h.mean().expect("non-empty");
        assert!((mean - 500.5).abs() < 1e-9, "{mean}");
        let p50 = h.quantile(0.5).expect("non-empty");
        // Exact median is 500; the bucket answer may overshoot by at
        // most one power of two.
        assert!((500..=1023).contains(&p50), "{p50}");
        assert_eq!(h.quantile(1.0), Some(1000), "clamped to observed max");
        let snap = h.snapshot();
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.count, 1000);
    }

    #[test]
    fn histogram_zero_and_extremes() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(h.quantile(0.0), Some(0));
    }

    #[test]
    fn concurrent_counts_are_exact() {
        let c = Counter::new();
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.count(), 40_000);
    }
}
