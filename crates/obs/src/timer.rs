//! Wall-clock timing that records into metrics: [`SpanTimer`] and
//! [`Stopwatch`].
//!
//! This module is the single place library code is allowed to touch
//! `std::time::Instant` — the `no-adhoc-timing` lint in `cbs-lint`
//! forbids it in every other library crate, so all timing is named,
//! registered, and exported instead of scattered across ad-hoc
//! `Instant::now()` pairs.

use std::time::Instant;

use crate::metrics::{Histogram, HistogramSnapshot};

/// A started wall clock whose elapsed time the caller reads out
/// explicitly — the building block for accumulating time into a
/// [`crate::Counter`] (e.g. backpressure stall nanoseconds) without the
/// RAII shape of a [`SpanTimer`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since [`start`](Stopwatch::start), saturating at
    /// `u64::MAX` (584 years).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A named duration metric: each completed span records its elapsed
/// nanoseconds into a shared [`Histogram`].
///
/// MERGEABLE: span timers merge exactly like the histograms backing
/// them ([`merge`] folds the other timer's duration samples in;
/// a fresh timer is the identity), so per-worker timing distributions
/// combine into one fleet-wide distribution in any grouping order.
///
/// [`merge`]: SpanTimer::merge
///
/// ```
/// let timer = cbs_obs::SpanTimer::new();
/// {
///     let _guard = timer.start(); // recorded on drop
/// }
/// timer.record_nanos(1_500); // manual recording also works
/// assert_eq!(timer.count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpanTimer {
    hist: Histogram,
}

impl SpanTimer {
    /// Creates a timer with no recorded spans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a span; its wall-clock duration is recorded when the
    /// returned guard drops.
    pub fn start(&self) -> RunningSpan<'_> {
        RunningSpan {
            owner: self,
            clock: Stopwatch::start(),
        }
    }

    /// Records an externally measured duration.
    pub fn record_nanos(&self, nanos: u64) {
        self.hist.record(nanos);
    }

    /// Number of completed spans.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Total nanoseconds across all completed spans.
    pub fn total_nanos(&self) -> u64 {
        self.hist.sum()
    }

    /// Distribution summary of the recorded spans (nanoseconds).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.hist.snapshot()
    }

    /// Folds `other`'s recorded spans into this timer (see
    /// [`Histogram::merge`] for the exact semantics). `other` is read,
    /// not drained — merge each partial exactly once.
    pub fn merge(&self, other: &SpanTimer) {
        self.hist.merge(&other.hist);
    }
}

/// An in-flight span from [`SpanTimer::start`]; records on drop.
#[derive(Debug)]
pub struct RunningSpan<'a> {
    owner: &'a SpanTimer,
    clock: Stopwatch,
}

impl RunningSpan<'_> {
    /// Abandons the span without recording it (e.g. the guarded work
    /// failed and its duration would pollute the distribution).
    pub fn cancel(self) {
        std::mem::forget(self);
    }
}

impl Drop for RunningSpan<'_> {
    fn drop(&mut self) {
        self.owner.record_nanos(self.clock.elapsed_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
    }

    #[test]
    fn span_records_on_drop() {
        let timer = SpanTimer::new();
        {
            let _guard = timer.start();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(timer.count(), 1);
        assert!(
            timer.total_nanos() >= 2_000_000,
            "{}ns",
            timer.total_nanos()
        );
    }

    #[test]
    fn cancel_discards_the_span() {
        let timer = SpanTimer::new();
        timer.start().cancel();
        assert_eq!(timer.count(), 0);
    }

    #[test]
    fn manual_recording() {
        let timer = SpanTimer::new();
        timer.record_nanos(100);
        timer.record_nanos(300);
        assert_eq!(timer.count(), 2);
        assert_eq!(timer.total_nanos(), 400);
    }
}
