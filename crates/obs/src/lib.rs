//! `cbs-obs` — dependency-free observability for the ingest pipeline.
//!
//! The paper's corpora are ~20.2 billion requests over 31 days; at that
//! scale a silent failure mode (a shard worker dying early while the
//! producer happily decodes the rest, a corrupt block read as clean
//! EOF) wastes hours and corrupts findings. This crate gives every
//! pipeline stage cheap, always-on eyes:
//!
//! * [`Counter`] — monotonically increasing `u64` (relaxed atomic add);
//! * [`Gauge`] — settable `u64` level with a high-water-mark helper;
//! * [`Histogram`] — fixed log-linear buckets (8 sub-buckets per
//!   power-of-two octave) with count/sum/min/max and approximate
//!   quantiles (≤12.5% relative error), safe to hammer from many
//!   threads;
//! * [`SpanTimer`] / [`Stopwatch`] — wall-clock timing that records
//!   into a histogram of nanoseconds, so *all* timing flows through one
//!   audited place (the `no-adhoc-timing` lint forbids raw
//!   `std::time::Instant` in library crates outside this one);
//! * [`Registry`] — named metrics with deterministic human and JSON
//!   export, mirroring `cbs-lint`'s output discipline.
//!
//! # Overhead budget
//!
//! Every recording primitive is one (histograms: two or three) relaxed
//! atomic read-modify-write. Pipeline instrumentation records at
//! *batch* granularity — per flushed batch, per decoded chunk, per CBT
//! block — never per request on a hot path, so the measured cost on
//! the 10M-request streaming benchmark is under 1% (see
//! `EXPERIMENTS.md`). Handles are cheap `Arc` clones and everything is
//! lock-free after creation; the registry's mutex is touched only on
//! metric creation and export.
//!
//! # Example
//!
//! ```
//! use cbs_obs::Registry;
//!
//! let registry = Registry::new();
//! let decoded = registry.counter("decode.records");
//! decoded.add(8192);
//! let timer = registry.span("decode.chunk");
//! {
//!     let _guard = timer.start(); // records elapsed nanos on drop
//! }
//! assert_eq!(decoded.get(), 8192);
//! assert!(registry.to_json().contains("\"decode.records\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;
pub mod names;
pub mod registry;
pub mod timer;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use names::METRIC_NAMES;
pub use registry::{MetricKind, MetricSample, MetricValue, Registry};
pub use timer::{RunningSpan, SpanTimer, Stopwatch};
