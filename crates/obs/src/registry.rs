//! The metric [`Registry`]: named handles plus deterministic human and
//! JSON export.
//!
//! A registry is a cheap clonable handle (`Arc` inside); every pipeline
//! stage that takes "an optional registry" receives a clone and
//! registers its metrics by name. Names are dotted paths
//! (`stream.shard0.requests`), exported in lexicographic order so two
//! exports of the same state are byte-identical — the property the
//! `ingest_perf` smoke gate checks.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::timer::SpanTimer;

/// The kind of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic event count.
    Counter,
    /// Settable level.
    Gauge,
    /// Sample distribution.
    Histogram,
    /// Duration distribution (nanoseconds).
    Span,
}

impl MetricKind {
    /// Lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::Span => "span",
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Span(SpanTimer),
}

impl Metric {
    fn value(&self) -> MetricValue {
        match self {
            Metric::Counter(c) => MetricValue::Counter(c.get()),
            Metric::Gauge(g) => MetricValue::Gauge(g.get()),
            Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            Metric::Span(s) => MetricValue::Span(s.snapshot()),
        }
    }
}

/// Point-in-time value of one registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(u64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
    /// Span-duration summary (nanoseconds).
    Span(HistogramSnapshot),
}

impl MetricValue {
    /// The kind of metric this value came from.
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
            MetricValue::Span(_) => MetricKind::Span,
        }
    }
}

/// One row of a [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: MetricValue,
}

impl MetricSample {
    /// The scalar for counters/gauges, the sample count for
    /// histograms/spans — the number reconciliation gates compare.
    pub fn scalar(&self) -> u64 {
        match self.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => v,
            MetricValue::Histogram(h) | MetricValue::Span(h) => h.count,
        }
    }
}

/// A named-metric registry with deterministic export. See the
/// [module docs](self).
///
/// MERGEABLE: registries merge name-wise under [`merge`] — each metric
/// folds into the same-named metric of the same kind using its own
/// merge law (counters add, gauges take the max, histograms and spans
/// add buckets; an empty registry is the identity) — so per-worker
/// registries combine into one fleet-wide registry in any grouping
/// order.
///
/// [`merge`]: Registry::merge
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T, F, G>(&self, name: &str, make: F, extract: G) -> T
    where
        T: Clone + Default,
        F: FnOnce(T) -> Metric,
        G: Fn(&Metric) -> Option<T>,
    {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = metrics.get(name) {
            if let Some(handle) = extract(existing) {
                return handle;
            }
            // Same name, different kind: hand back a detached metric so
            // the caller stays functional; the registered one keeps its
            // original kind. (Registering the same name twice with
            // different kinds is a caller bug, but never a panic.)
            return T::default();
        }
        let handle = T::default();
        metrics.insert(name.to_owned(), make(handle.clone()));
        handle
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use. If `name` is already registered as a different kind,
    /// a detached (unregistered) counter is returned.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(name, Metric::Counter, |m| match m {
            Metric::Counter(c) => Some(c.clone()),
            _ => None,
        })
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use (same collision rule as [`counter`](Registry::counter)).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(name, Metric::Gauge, |m| match m {
            Metric::Gauge(g) => Some(g.clone()),
            _ => None,
        })
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use (same collision rule as [`counter`](Registry::counter)).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.get_or_insert(name, Metric::Histogram, |m| match m {
            Metric::Histogram(h) => Some(h.clone()),
            _ => None,
        })
    }

    /// Returns the span timer registered under `name`, creating it on
    /// first use (same collision rule as [`counter`](Registry::counter)).
    pub fn span(&self, name: &str) -> SpanTimer {
        self.get_or_insert(name, Metric::Span, |m| match m {
            Metric::Span(s) => Some(s.clone()),
            _ => None,
        })
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time values of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, metric)| MetricSample {
                name: name.clone(),
                value: metric.value(),
            })
            .collect()
    }

    /// JSON export: one object keyed by metric name, values tagged with
    /// their kind. Deterministic — equal states render byte-identically.
    ///
    /// ```json
    /// {"decode.records":{"type":"counter","value":8192}}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, sample) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json_into(&sample.name, &mut out);
            out.push_str("\":");
            match sample.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{v}}}");
                }
                MetricValue::Histogram(h) => render_summary_json(&mut out, "histogram", &h),
                MetricValue::Span(h) => render_summary_json(&mut out, "span", &h),
            }
        }
        out.push('}');
        out
    }

    /// Folds every metric of `other` into this registry by name.
    ///
    /// Metrics absent here are created; present ones combine with
    /// their kind's merge law (counter totals add, gauge levels take
    /// the max, histogram/span buckets add). A name registered here
    /// with a *different* kind keeps its kind and ignores the other
    /// side — the same never-panic collision rule as
    /// [`counter`](Registry::counter). `other` is read, not drained —
    /// merge each partial exactly once; merging a registry with itself
    /// (or a clone sharing the same store) is a no-op rather than a
    /// double-count.
    pub fn merge(&self, other: &Registry) {
        if Arc::ptr_eq(&self.metrics, &other.metrics) {
            return;
        }
        // Clone the handles out first so the two locks are never held
        // at once (a merge in each direction on two threads would
        // otherwise deadlock).
        let theirs: Vec<(String, Metric)> = other
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, metric)| (name.clone(), metric.clone()))
            .collect();
        for (name, metric) in theirs {
            match metric {
                Metric::Counter(c) => self.counter(&name).merge(&c),
                Metric::Gauge(g) => self.gauge(&name).merge(&g),
                Metric::Histogram(h) => self.histogram(&name).merge(&h),
                Metric::Span(s) => self.span(&name).merge(&s),
            }
        }
    }

    /// Human-readable export: one aligned line per metric, sorted by
    /// name.
    pub fn render(&self) -> String {
        let samples = self.snapshot();
        let width = samples.iter().map(|s| s.name.len()).max().unwrap_or(0);
        let mut out = String::new();
        for sample in &samples {
            let _ = write!(
                out,
                "{:width$}  {:9}  ",
                sample.name,
                sample.value.kind().as_str()
            );
            match sample.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{v}");
                }
                MetricValue::Histogram(h) | MetricValue::Span(h) => {
                    let _ = writeln!(
                        out,
                        "count={} sum={} min={} max={} p50={} p99={}",
                        h.count, h.sum, h.min, h.max, h.p50, h.p99
                    );
                }
            }
        }
        out
    }
}

fn render_summary_json(out: &mut String, kind: &str, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"type\":\"{kind}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
         \"p50\":{},\"p90\":{},\"p99\":{}}}",
        h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
    );
}

/// Escapes `s` as JSON string content (quotes, backslashes, control
/// characters).
fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_state() {
        let r = Registry::new();
        r.counter("a.events").add(3);
        r.counter("a.events").add(4);
        assert_eq!(r.counter("a.events").get(), 7);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn kind_collision_returns_detached_handle() {
        let r = Registry::new();
        r.counter("x").add(5);
        let g = r.gauge("x"); // wrong kind for this name
        g.set(99);
        assert_eq!(r.counter("x").get(), 5, "registered counter untouched");
        assert_eq!(r.len(), 1);
        match &r.snapshot()[0].value {
            MetricValue::Counter(v) => assert_eq!(*v, 5),
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let r = Registry::new();
        r.gauge("b.level").set(2);
        r.counter("a.events").inc();
        r.span("c.took").record_nanos(10);
        r.histogram("d.sizes").record(4096);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a.events", "b.level", "c.took", "d.sizes"]);
        let scalars: Vec<u64> = snap.iter().map(MetricSample::scalar).collect();
        assert_eq!(scalars, vec![1, 2, 1, 1]);
    }

    #[test]
    fn json_export_is_deterministic_and_tagged() {
        let r = Registry::new();
        r.counter("decode.records").add(8192);
        r.gauge("stream.hwm").set(4);
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b, "equal state must render byte-identically");
        assert!(a.contains("\"decode.records\":{\"type\":\"counter\",\"value\":8192}"));
        assert!(a.contains("\"stream.hwm\":{\"type\":\"gauge\",\"value\":4}"));
        assert!(a.starts_with('{') && a.ends_with('}'));
    }

    #[test]
    fn empty_registry_renders_empty() {
        let r = Registry::new();
        assert!(r.is_empty());
        assert_eq!(r.to_json(), "{}");
        assert_eq!(r.render(), "");
    }

    #[test]
    fn json_escapes_names() {
        let r = Registry::new();
        r.counter("weird\"name\\with\nstuff").inc();
        let json = r.to_json();
        assert!(json.contains("weird\\\"name\\\\with\\nstuff"), "{json}");
    }

    #[test]
    fn render_lists_every_metric() {
        let r = Registry::new();
        r.counter("a").add(1);
        r.span("b").record_nanos(100);
        let text = r.render();
        assert!(text.contains("counter"), "{text}");
        assert!(text.contains("span"), "{text}");
        assert!(text.contains("count=1"), "{text}");
    }

    #[test]
    fn clones_share_the_same_store() {
        let r = Registry::new();
        let clone = r.clone();
        clone.counter("shared").add(2);
        assert_eq!(r.counter("shared").get(), 2);
    }
}
