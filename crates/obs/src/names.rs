//! The canonical metric-name registry.
//!
//! Metric names are stringly-typed at emission sites
//! (`registry.counter("cbt.records")`), so nothing in the type system
//! stops a typo from silently splitting one logical metric into two.
//! This table is the single source of truth: `cbs-lint`'s
//! `obs-metric-registry` rule (CBS-L12) checks that every metric-name
//! literal in non-test library code matches an entry exactly, that no
//! entry is stale (emitted by no scanned code), and that no name is
//! registered twice.
//!
//! Naming scheme: `<subsystem>.<metric>` with `_nanos`/`_bytes`
//! suffixes for units. Families emitted through `format!` register a
//! wildcard name with `*` standing for the interpolation — e.g.
//! `format!("stream.shard{s}.requests")` matches
//! `stream.shard*.requests`.
//!
//! # Cross-partition merge semantics
//!
//! When per-worker registries are folded ([`Registry::merge`]), each
//! kind combines with its merge law: counter totals and
//! histogram/span buckets **add**; gauges take the **max** (see
//! [`Gauge::merge`]). Max is the registered convention for every
//! gauge in this table: it is exact for high-water marks —
//! `stream.shard*.inflight_hwm` fleet-wide is the max of the
//! per-partition HWMs — and for configuration levels
//! (`stream.shards`, `sweep.lanes`, `sweep.sampled_ppm`,
//! `decode.malformed_line`) it reports the largest partition, which
//! is the whole answer when workers are configured identically.
//! Last-write-wins would depend on merge order and is therefore
//! never used.
//!
//! [`Registry::merge`]: crate::Registry::merge
//! [`Gauge::merge`]: crate::Gauge::merge
//!
//! The table is meaningful only for whole-workspace scans: a scoped
//! `cbs-lint crates/obs` run sees the registry but not the emission
//! sites in other crates, and will report entries as stale. Run the
//! lint from the workspace root (as `scripts/check.sh` does).

/// Every metric name the workspace emits, with a one-line doc.
///
/// Keep sorted by name; `cbs-lint` flags duplicates and stale entries.
pub const METRIC_NAMES: &[(&str, &str)] = &[
    (
        "*.read_accesses",
        "cache sim: read accesses, prefixed by the simulation label",
    ),
    (
        "*.read_hits",
        "cache sim: read hits, prefixed by the simulation label",
    ),
    (
        "*.write_accesses",
        "cache sim: write accesses, prefixed by the simulation label",
    ),
    (
        "*.write_hits",
        "cache sim: write hits, prefixed by the simulation label",
    ),
    ("cbt.block_decode", "span: per-block CBT decode latency"),
    ("cbt.blocks", "CBT blocks decoded"),
    ("cbt.bytes", "compressed CBT bytes consumed"),
    ("cbt.corrupt_blocks", "CBT blocks skipped as undecodable"),
    ("cbt.crc_failures", "CBT blocks failing CRC verification"),
    ("cbt.records", "records decoded from CBT blocks"),
    (
        "decode.bytes",
        "raw text bytes consumed by the parallel decoder",
    ),
    ("decode.chunks", "chunks fed to parallel decode workers"),
    ("decode.lines", "text lines seen by the parallel decoder"),
    (
        "decode.malformed_line",
        "1-based line number of the first malformed record (0 = none)",
    ),
    ("decode.records", "records decoded from text traces"),
    (
        "replay.backend_nanos",
        "per-request backend service time, nanoseconds",
    ),
    ("replay.bytes", "payload bytes issued by the replayer"),
    (
        "replay.feed_backpressure_nanos",
        "feeder nanoseconds blocked on full lane channels",
    ),
    (
        "replay.issue_lag_nanos",
        "per-request issue lag (actual minus target issue time)",
    ),
    (
        "replay.lane*.backend_nanos",
        "per-lane backend service time, nanoseconds",
    ),
    ("replay.lane*.bytes", "per-lane payload bytes issued"),
    (
        "replay.lane*.issue_lag_nanos",
        "per-lane issue lag (actual minus target issue time)",
    ),
    ("replay.lane*.reads", "per-lane read requests issued"),
    ("replay.lane*.requests", "per-lane requests issued"),
    (
        "replay.lane*.sleep_nanos",
        "per-lane nanoseconds slept ahead of deadlines",
    ),
    ("replay.lane*.writes", "per-lane write requests issued"),
    ("replay.lanes", "number of replay issue lanes in this run"),
    ("replay.reads", "read requests issued by the replayer"),
    ("replay.requests", "requests issued by the replayer"),
    (
        "replay.sleep_nanos",
        "nanoseconds the replay scheduler slept ahead of deadlines",
    ),
    ("replay.writes", "write requests issued by the replayer"),
    ("reuse.compactions", "reuse-distance tree compactions run"),
    (
        "reuse.dead_entries",
        "tombstoned entries awaiting compaction",
    ),
    (
        "reuse.live_entries",
        "live entries in the reuse-distance tree",
    ),
    (
        "stream.backpressure_nanos",
        "producer nanoseconds blocked on full shard channels",
    ),
    (
        "stream.batches",
        "batches emitted by the streaming producer",
    ),
    (
        "stream.observed",
        "requests observed by the streaming ingest",
    ),
    (
        "stream.shard*.analyze_nanos",
        "per-shard nanoseconds spent analyzing batches",
    ),
    ("stream.shard*.batches", "per-shard batches received"),
    (
        "stream.shard*.inflight",
        "per-shard batches currently queued",
    ),
    (
        "stream.shard*.inflight_hwm",
        "per-shard high-water mark of queued batches",
    ),
    ("stream.shard*.requests", "per-shard requests routed"),
    ("stream.shards", "number of streaming shards in this run"),
    ("sweep.accesses", "block accesses fed to the cache sweep"),
    (
        "sweep.backpressure_nanos",
        "sweep producer nanoseconds blocked on backpressure",
    ),
    ("sweep.batches", "batches fed to the cache sweep"),
    (
        "sweep.expand_nanos",
        "nanoseconds expanding requests into block accesses",
    ),
    (
        "sweep.lane.*.accesses",
        "per-lane accesses simulated, keyed by lane label",
    ),
    (
        "sweep.lane.*.nanos",
        "per-lane simulation nanoseconds, keyed by lane label",
    ),
    ("sweep.lanes", "number of policy lanes in the sweep"),
    (
        "sweep.sampled_accesses",
        "accesses surviving spatial sampling",
    ),
    ("sweep.sampled_ppm", "parts-per-million of accesses sampled"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_and_unique() {
        for pair in METRIC_NAMES.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "METRIC_NAMES out of order or duplicated: {} then {}",
                pair[0].0,
                pair[1].0
            );
        }
    }

    #[test]
    fn every_entry_documented() {
        for (name, doc) in METRIC_NAMES {
            assert!(!doc.is_empty(), "{name} has no doc");
            assert!(!name.is_empty());
        }
    }
}
