//! SHARDS accuracy gate (ISSUE 5 satellite d).
//!
//! Runs the sweep engine's sampled miss-ratio-curve lane next to the
//! exact Mattson stack lane over the AliCloud-like bench corpus and
//! asserts the spatially-sampled estimate stays within a stated ε of
//! the exact curve at every evaluated capacity. The full-size
//! measurement (10 M requests, rates 0.1/0.01/0.001) lives in
//! `cache_perf shards` and is recorded in `EXPERIMENTS.md`; this test
//! keeps the bound honest in CI at bench-fixture scale.

use cbs_cache::SweepGrid;
use cbs_synth::presets::{self, CorpusConfig};
use cbs_trace::IoRequest;

/// Max |exact − sampled| miss ratio at `rate`, evaluated at powers of
/// two from 512 up to 1 Mi blocks.
///
/// A SHARDS sample at rate `r` rescales each sampled reuse distance by
/// `1/r`, so the estimated curve has a resolution of about `1/r`
/// blocks, and the SHARDS-adj correction concentrates its mass at
/// distance 0 — both make the head of the curve (capacities below a
/// few hundred blocks) a quantisation artifact rather than a sampling
/// error. ε is therefore stated over the bend-and-tail region, which
/// is also where the benchmark grid (4 Ki – 1 Mi blocks) lives.
fn max_abs_error(requests: &[IoRequest], rate: f64) -> (f64, f64) {
    let eval: Vec<usize> = (9..=20).map(|i| 1usize << i).collect();
    let report = SweepGrid::new()
        .with_workers(0)
        .with_sample_rate(rate)
        .expect("valid rate")
        .lru_capacity(1)
        .expect("non-zero capacity")
        .with_sampled_mrc()
        .sweep(requests.iter().copied());
    let exact = report.lru_mrc().expect("stack lane ran");
    let sampled = report.sampled_mrc().expect("sampled mrc requested");
    let err = eval
        .iter()
        .map(|&c| (exact.miss_ratio_at(c) - sampled.miss_ratio_at(c)).abs())
        .fold(0.0f64, f64::max);
    (err, report.sampled_fraction())
}

#[test]
fn sampled_mrc_tracks_exact_curve_within_epsilon() {
    // 1 M requests from the AliCloud-like preset: big enough that
    // rate 0.01 still samples ~10 K requests, small enough to stay a
    // sub-minute CI test. The 10 M-request `cache_perf shards` run
    // records the production-scale errors in `EXPERIMENTS.md`.
    const N: usize = 1_000_000;
    let config = CorpusConfig::new(64, 4, 4242).with_intensity_scale(0.05);
    let requests: Vec<IoRequest> = presets::alicloud_like(&config).stream().take(N).collect();
    assert_eq!(requests.len(), N, "corpus smaller than requested");

    let (err_10pct, frac_10pct) = max_abs_error(&requests, 0.1);
    assert!(
        err_10pct < 0.05,
        "rate 0.1: max |exact - sampled| = {err_10pct} >= 0.05"
    );
    let (err_1pct, frac_1pct) = max_abs_error(&requests, 0.01);
    assert!(
        err_1pct < 0.05,
        "rate 0.01: max |exact - sampled| = {err_1pct} >= 0.05"
    );

    // The sampled fraction should land near the configured rate —
    // that is where the ~1/rate cost reduction comes from. (Accesses,
    // not blocks: a heavy-tailed popularity skews it around the rate.)
    assert!(
        (0.02..0.5).contains(&frac_10pct),
        "rate 0.1 sampled fraction {frac_10pct} implausible"
    );
    assert!(
        (0.001..0.1).contains(&frac_1pct),
        "rate 0.01 sampled fraction {frac_1pct} implausible"
    );
}
