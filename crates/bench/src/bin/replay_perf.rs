//! Replay performance measurement harness.
//!
//! Produces the numbers recorded in `EXPERIMENTS.md` and
//! `BENCH_replay.json`: achieved-vs-offered throughput of the
//! open-loop replay engine at a rate multiplier over a synthetic
//! corpus, per-request issue-lag percentiles, and re-analysis
//! equivalence (the replayed stream fed back through `Workbench` must
//! be metric-identical to analyzing the source directly).
//!
//! Peak RSS (`VmHWM`) is a process-lifetime high-water mark, so the
//! orchestrator re-execs itself with phase arguments and each phase
//! runs in a fresh subprocess:
//!
//! ```sh
//! cargo run --release -p cbs-bench --bin replay_perf                       # all phases
//! cargo run --release -p cbs-bench --bin replay_perf --lanes 1,2,4,8       # custom lane curve
//! cargo run --release -p cbs-bench --bin replay_perf replay 1000 1000 null identity
//! cargo run --release -p cbs-bench --bin replay_perf lanes 1000 1000 null 4
//! cargo run --release -p cbs-bench --bin replay_perf smoke                 # CI gate
//! ```
//!
//! `replay <thousands> <multiplier> <backend> <remap>` replays the
//! first `thousands`·1000 requests of the fixed one-hour synthetic
//! corpus at ×`multiplier` onto `null`/`mem`/`file`/`direct`, remapped
//! by `identity`/`fanout:N`/`merge:N`, and prints a single-line JSON
//! object; the orchestrator assembles the lines into
//! `BENCH_replay.json`. `lanes <thousands> <multiplier> <backend>
//! <count>` replays the same prefix through the multi-lane issue
//! engine ([`LaneSet`]) with `count` per-volume lanes and additionally
//! reports feeder backpressure and the per-lane lag breakdown.
//!
//! Budgets (env-overridable): the orchestrated null-backend ×1000 row
//! and every lane-curve row assert `achieved_offered_ratio >=
//! REPLAY_PERF_MIN_RATIO` (default 0.95 — the acceptance criterion);
//! on multi-core hosts the best lane count must additionally bring
//! merged p99 issue lag under `REPLAY_PERF_MAX_BEST_P99_NANOS`
//! (default 1 ms — single-core hosts record the curve but can't beat
//! the decode ceiling, see EXPERIMENTS.md); the `smoke` phase
//! asserts `REPLAY_SMOKE_MIN_RATIO` (default 0.90) on a small corpus
//! plus re-analysis equivalence, remap conservation, and single-lane
//! parity of the `REPLAY_SMOKE_LANES`-lane (default 2) engine.

use std::io::Write as _;

use cbs_core::Workbench;
use cbs_replay::{
    DirectFileBackend, FileBackend, LaneSet, MemBackend, MultiLaneReport, NullBackend, Remap,
    ReplayReport, Replayer, StorageBackend, Timing,
};
use cbs_synth::presets::{self, CorpusConfig};
use cbs_trace::{IoRequest, Trace};

/// The fixed replay corpus: one hour of AliCloud-like traffic across
/// 128 volumes. Intensity is tuned so the stream comfortably exceeds
/// the largest `replay` target (so `.take(n)` yields exactly `n`)
/// while the ×1000-compressed offered rate (~0.7M rps) stays inside
/// what a single replay thread can physically issue (~3.6M rps) —
/// the bench measures scheduler fidelity, not an unpayable debt.
fn corpus() -> cbs_synth::CorpusGenerator {
    let intensity = env_f64("REPLAY_CORPUS_INTENSITY", 0.03);
    let config = CorpusConfig::new(128, 0, 90210)
        .with_extra_hours(1)
        .with_intensity_scale(intensity);
    presets::alicloud_like(&config)
}

fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A process-unique scratch directory for the file-backed backends.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cbs_replay_perf_{}_{tag}", std::process::id()))
}

/// Pulls a numeric field out of a single-line JSON row emitted by a
/// phase subprocess (first occurrence wins; nested `p99`s come after
/// the merged one by construction).
fn row_f64(row: &str, key: &str) -> f64 {
    let tag = format!("\"{key}\": ");
    row.split(&tag)
        .nth(1)
        .and_then(|rest| rest.split([',', '}']).next())
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("field {key:?} missing from row {row}"))
}

/// Materializes exactly `n` requests of the fixed corpus.
fn materialize(n: usize) -> Vec<IoRequest> {
    let requests: Vec<IoRequest> = corpus().stream().take(n).collect();
    assert_eq!(
        requests.len(),
        n,
        "corpus too small: raise intensity_scale in corpus()"
    );
    requests
}

/// Runs one replay over `requests` and returns (report, replayed copy).
fn run_replay<B: StorageBackend>(
    backend: B,
    multiplier: f64,
    remap: Remap,
    requests: &[IoRequest],
) -> (ReplayReport, Vec<IoRequest>) {
    let mut replayer = Replayer::new(backend)
        .with_timing(Timing::multiplier(multiplier).expect("multiplier in range"))
        .with_remap(remap);
    let mut replayed = Vec::with_capacity(requests.len());
    let report = replayer
        .run_observed(requests.iter().copied(), |req| replayed.push(req))
        .expect("replay failed");
    (report, replayed)
}

/// The measured phase: replay, then re-analyze the replayed stream and
/// compare against direct analysis of the source.
fn phase_replay(thousands: u64, multiplier: f64, backend: &str, remap_spec: &str) {
    let n = (thousands * 1000) as usize;
    let remap = Remap::parse(remap_spec).expect("remap spec");
    let requests = materialize(n);

    let (report, replayed) = match backend {
        "null" => run_replay(NullBackend::new(), multiplier, remap, &requests),
        "mem" => run_replay(MemBackend::new(), multiplier, remap, &requests),
        "file" => {
            let dir = scratch_dir("file");
            let out = run_replay(
                FileBackend::new(&dir).expect("file backend"),
                multiplier,
                remap,
                &requests,
            );
            let _ = std::fs::remove_dir_all(&dir);
            out
        }
        "direct" => {
            let dir = scratch_dir("direct");
            let b = DirectFileBackend::new(&dir).expect("direct backend");
            if let Some(reason) = b.fallback_reason() {
                eprintln!("note: buffered fallback — {reason}");
            }
            let out = run_replay(b, multiplier, remap, &requests);
            let _ = std::fs::remove_dir_all(&dir);
            out
        }
        other => panic!("unknown backend {other:?}; expected null|mem|file|direct"),
    };
    assert_eq!(report.requests, n as u64);

    // Re-analysis equivalence: identity remap must reproduce the
    // source metrics exactly; fan-out/merge relocate volumes, so for
    // them equivalence is checked on totals (the per-volume laws are
    // proptested in crates/replay/tests/remap_laws.rs).
    let direct = Workbench::new(Trace::from_requests(requests.clone())).analyze();
    let re = Workbench::new(Trace::from_requests(replayed)).analyze();
    let identical = match remap {
        Remap::Identity => direct.metrics() == re.metrics(),
        _ => {
            let sum = |a: &cbs_core::Analysis| {
                a.metrics()
                    .iter()
                    .fold((0u64, 0u64), |(r, w), m| (r + m.reads, w + m.writes))
            };
            sum(&direct) == sum(&re)
        }
    };
    assert!(identical, "replayed stream re-analyzed differently");

    let volumes = direct.trace().volume_count();
    println!(
        "{{\"phase\": \"replay\", \"backend\": \"{}\", \"remap\": \"{}\", \
         \"rate_multiplier\": {}, \"requests\": {}, \"bytes\": {}, \
         \"volumes\": {}, \"wall_nanos\": {}, \"offered_nanos\": {}, \
         \"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \
         \"achieved_offered_ratio\": {:.4}, \
         \"issue_lag\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}, \
         \"seconds\": {:.3}, \"reanalysis_identical\": {}, \"peak_rss_kb\": {}}}",
        backend,
        remap.label(),
        multiplier,
        report.requests,
        report.bytes,
        volumes,
        report.wall_nanos,
        report.offered_nanos,
        report.offered_rps(),
        report.achieved_rps(),
        report.achieved_offered_ratio(),
        report.issue_lag.p50,
        report.issue_lag.p90,
        report.issue_lag.p99,
        report.issue_lag.max,
        report.wall_nanos as f64 / 1e9,
        identical,
        peak_rss_kb(),
    );
}

/// Runs one multi-lane identity replay over `requests` and returns
/// (merged report + per-lane breakdown, replayed copy).
fn run_lane_replay<B: StorageBackend + Send>(
    lanes: usize,
    make_backend: impl FnMut(usize) -> B,
    multiplier: f64,
    requests: &[IoRequest],
) -> (MultiLaneReport, Vec<IoRequest>) {
    // Lookahead = lanes × depth × LANE_BATCH_REQUESTS pre-decoded
    // requests. Deeper channels keep the feeder runnable longer; on
    // few-core hosts that steals CPU from the issue lanes during
    // compressed bursts, so the engine default (8) measures best —
    // REPLAY_LANE_DEPTH overrides for lookahead experiments.
    let depth = env_f64(
        "REPLAY_LANE_DEPTH",
        cbs_replay::DEFAULT_LANE_CHANNEL_DEPTH as f64,
    ) as usize;
    let mut set = LaneSet::new(lanes, make_backend)
        .with_timing(Timing::multiplier(multiplier).expect("multiplier in range"))
        .with_channel_depth(depth);
    let mut replayed = Vec::with_capacity(requests.len());
    let report = set
        .run_observed(requests.iter().copied(), |req| replayed.push(req))
        .expect("lane replay failed");
    (report, replayed)
}

/// The lane-curve phase: replay through `lanes` per-volume issue lanes
/// and report merged schedule fidelity plus the per-lane breakdown.
fn phase_lanes(thousands: u64, multiplier: f64, backend: &str, lanes: usize) {
    let n = (thousands * 1000) as usize;
    let requests = materialize(n);

    let (multi, replayed) = match backend {
        "null" => run_lane_replay(lanes, |_| NullBackend::new(), multiplier, &requests),
        "mem" => run_lane_replay(lanes, |_| MemBackend::new(), multiplier, &requests),
        "file" => {
            let dir = scratch_dir("lanes_file");
            let out = run_lane_replay(
                lanes,
                |lane| FileBackend::new(dir.join(format!("lane{lane}"))).expect("file backend"),
                multiplier,
                &requests,
            );
            let _ = std::fs::remove_dir_all(&dir);
            out
        }
        "direct" => {
            let dir = scratch_dir("lanes_direct");
            let out = run_lane_replay(
                lanes,
                |lane| {
                    let b = DirectFileBackend::new(dir.join(format!("lane{lane}")))
                        .expect("direct backend");
                    if let Some(reason) = b.fallback_reason() {
                        eprintln!("note: lane {lane} buffered fallback — {reason}");
                    }
                    b
                },
                multiplier,
                &requests,
            );
            let _ = std::fs::remove_dir_all(&dir);
            out
        }
        other => panic!("unknown backend {other:?}; expected null|mem|file|direct"),
    };
    assert_eq!(multi.merged.requests, n as u64);
    assert_eq!(multi.lanes(), lanes, "engine must materialize every lane");

    let direct = Workbench::new(Trace::from_requests(requests.clone())).analyze();
    let re = Workbench::new(Trace::from_requests(replayed)).analyze();
    let identical = direct.metrics() == re.metrics();
    assert!(identical, "lane-replayed stream re-analyzed differently");

    let report = &multi.merged;
    let per_lane: Vec<String> = multi
        .per_lane
        .iter()
        .map(|l| {
            format!(
                "{{\"lane\": {}, \"requests\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
                l.lane, l.requests, l.issue_lag.p50, l.issue_lag.p99, l.issue_lag.max
            )
        })
        .collect();
    println!(
        "{{\"phase\": \"lanes\", \"backend\": \"{}\", \"remap\": \"identity\", \
         \"rate_multiplier\": {}, \"lanes\": {}, \"requests\": {}, \"bytes\": {}, \
         \"volumes\": {}, \"wall_nanos\": {}, \"offered_nanos\": {}, \
         \"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \
         \"achieved_offered_ratio\": {:.4}, \"backpressure_nanos\": {}, \
         \"issue_lag\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}, \
         \"per_lane_lag\": [{}], \
         \"seconds\": {:.3}, \"reanalysis_identical\": {}, \"peak_rss_kb\": {}}}",
        backend,
        multiplier,
        lanes,
        report.requests,
        report.bytes,
        direct.trace().volume_count(),
        report.wall_nanos,
        report.offered_nanos,
        report.offered_rps(),
        report.achieved_rps(),
        report.achieved_offered_ratio(),
        multi.feed_backpressure_nanos,
        report.issue_lag.p50,
        report.issue_lag.p90,
        report.issue_lag.p99,
        report.issue_lag.max,
        per_lane.join(", "),
        report.wall_nanos as f64 / 1e9,
        identical,
        peak_rss_kb(),
    );
}

/// CI gate: small corpus, strict invariants, env-overridable ratio
/// budget. Prints a human line, not JSON.
fn phase_smoke() {
    const N: usize = 100_000;
    // The corpus's first 100K requests sit in its densest burst
    // region: at ×1000 they'd offer ~4.4M rps, above the ~3.6M rps a
    // single issue thread can physically sustain — the gate would then
    // measure host speed, not scheduler fidelity. ×250 offers ~1.1M
    // rps, 3× headroom, while still exercising the compressed path
    // (the 1M-request ×1000 acceptance row lives in the orchestrated
    // run, whose span makes its offered rate sustainable).
    const SMOKE_RATE: f64 = 250.0;
    let requests = materialize(N);
    let min_ratio = env_f64("REPLAY_SMOKE_MIN_RATIO", 0.90);

    // 1. Null-backend identity replay: keeps up with the offered
    //    schedule and re-analyzes metric-identical.
    let (report, replayed) = run_replay(NullBackend::new(), SMOKE_RATE, Remap::Identity, &requests);
    assert_eq!(report.requests, N as u64);
    assert_eq!(
        report.issue_lag.count, N as u64,
        "one lag sample per request"
    );
    let ratio = report.achieved_offered_ratio();
    assert!(
        ratio >= min_ratio,
        "replay fell behind: achieved/offered {ratio:.3} < floor {min_ratio} \
         (override with REPLAY_SMOKE_MIN_RATIO)"
    );
    let direct = Workbench::new(Trace::from_requests(requests.clone())).analyze();
    let re = Workbench::new(Trace::from_requests(replayed)).analyze();
    assert_eq!(
        direct.metrics(),
        re.metrics(),
        "null replay re-analyzed differently from the source"
    );

    // 2. Remap conservation through the full engine: fanout:4 then
    //    merge:4 is the identity on metrics; counts conserved at every
    //    step.
    let (fan_report, fanned) =
        run_replay(NullBackend::new(), SMOKE_RATE, Remap::FanOut(4), &requests);
    assert_eq!(fan_report.requests, N as u64);
    assert_eq!(
        fan_report.bytes, report.bytes,
        "fan-out must conserve bytes"
    );
    let (_, folded) = run_replay(NullBackend::new(), SMOKE_RATE, Remap::Merge(4), &fanned);
    let re_folded = Workbench::new(Trace::from_requests(folded)).analyze();
    assert_eq!(
        direct.metrics(),
        re_folded.metrics(),
        "fanout:4 ∘ merge:4 is not the identity"
    );

    // 3. Mem backend: writes materialize pages, deterministically.
    let run_mem = || {
        let mut replayer = Replayer::new(MemBackend::new())
            .with_timing(Timing::multiplier(1000.0).expect("valid rate"));
        replayer
            .run(requests.iter().copied().take(2000))
            .expect("mem replay");
        replayer.backend().page_count()
    };
    let pages = run_mem();
    assert!(pages > 0, "writes never materialized a page");
    assert_eq!(pages, run_mem(), "mem backend is non-deterministic");

    // 4. Multi-lane parity: the merged lane report equals the
    //    single-lane report on every conserved quantity, keeps up with
    //    the same offered schedule, and re-analyzes identical.
    let lanes: usize = std::env::var("REPLAY_SMOKE_LANES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let (multi, lane_replayed) =
        run_lane_replay(lanes, |_| NullBackend::new(), SMOKE_RATE, &requests);
    assert_eq!(multi.lanes(), lanes);
    assert_eq!(
        multi.merged.requests, report.requests,
        "lane fold lost requests"
    );
    assert_eq!(multi.merged.bytes, report.bytes, "lane fold lost bytes");
    assert_eq!(multi.merged.reads, report.reads, "lane fold lost reads");
    assert_eq!(multi.merged.writes, report.writes, "lane fold lost writes");
    assert_eq!(
        multi.merged.offered_nanos, report.offered_nanos,
        "feeder must offer exactly the single-lane schedule"
    );
    assert_eq!(
        multi.merged.issue_lag.count, report.issue_lag.count,
        "one merged lag sample per request"
    );
    let lane_ratio = multi.merged.achieved_offered_ratio();
    assert!(
        lane_ratio >= min_ratio,
        "{lanes}-lane replay fell behind: achieved/offered {lane_ratio:.3} < floor {min_ratio} \
         (override with REPLAY_SMOKE_MIN_RATIO / REPLAY_SMOKE_LANES)"
    );
    let re_lanes = Workbench::new(Trace::from_requests(lane_replayed)).analyze();
    assert_eq!(
        direct.metrics(),
        re_lanes.metrics(),
        "{lanes}-lane replay re-analyzed differently from the source"
    );

    // 5. Config validation: out-of-range multipliers and zero remap
    //    factors cannot reach the scheduler.
    assert!(Timing::multiplier(1000.1).is_err());
    assert!(Timing::multiplier(0.05).is_err());
    assert!(Remap::parse("fanout:0").is_err());
    assert!(Remap::parse("bogus").is_err());

    println!(
        "smoke ok: {N} requests, ×{SMOKE_RATE} null replay achieved/offered {ratio:.3} \
         (floor {min_ratio}), p99 issue lag {} ns, re-analysis identical, \
         fanout∘merge identity verified, mem backend {pages} pages deterministic, \
         {lanes}-lane report single-lane-identical (achieved/offered {lane_ratio:.3})",
        report.issue_lag.p99
    );
}

/// Run each phase as a fresh subprocess (isolated `VmHWM`) and write
/// the collected JSON lines to `BENCH_replay.json`. `lane_counts` is
/// the `--lanes` curve (default 1,2,4,8).
fn orchestrate(lane_counts: &[usize]) {
    let exe = std::env::current_exe().expect("current_exe");
    let run = |args: &[&str]| -> String {
        eprintln!("→ replay_perf {}", args.join(" "));
        let out = std::process::Command::new(&exe)
            .args(args)
            .output()
            .expect("spawn phase subprocess");
        assert!(
            out.status.success(),
            "phase {:?} failed:\n{}",
            args,
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("phase stdout utf-8");
        let line = stdout
            .lines()
            .last()
            .expect("phase printed no JSON")
            .to_owned();
        eprintln!("  {line}");
        line
    };

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut results = Vec::new();
    // The acceptance row: 1M requests, null backend, ×1000.
    let main_row = run(&["replay", "1000", "1000", "null", "identity"]);
    let min_ratio = env_f64("REPLAY_PERF_MIN_RATIO", 0.95);
    let ratio = row_f64(&main_row, "achieved_offered_ratio");
    assert!(
        ratio >= min_ratio,
        "acceptance: null ×1000 achieved/offered {ratio:.3} < {min_ratio} \
         (override with REPLAY_PERF_MIN_RATIO)"
    );
    results.push(main_row);
    // Remap variants at the same scale.
    results.push(run(&["replay", "1000", "1000", "null", "fanout:4"]));
    results.push(run(&["replay", "1000", "1000", "null", "merge:4"]));
    // Real work per request: in-memory page store (smaller corpus so
    // the materialized pages stay modest, gentler multiplier so the
    // offered rate stays inside the page-copy bandwidth).
    results.push(run(&["replay", "250", "50", "mem", "identity"]));
    // A slower multiplier point for the rate sweep (smaller corpus so
    // the offered schedule still compresses to seconds).
    results.push(run(&["replay", "100", "100", "null", "identity"]));

    // The lane-scaling curve at the acceptance scale: every row must
    // keep up with the offered schedule, and the best lane count must
    // bring merged p99 issue lag under the budget (default 1 ms).
    // The p99 budget presumes lanes can actually run in parallel: the
    // corpus's compressed bursts offer ~4.6M rps sustained, above the
    // ~4M rps decode-alone ceiling of one core, so on a single-core
    // host every engine saturates and the budget is reported, not
    // asserted (the ratio floor still is).
    let max_best_p99 = env_f64("REPLAY_PERF_MAX_BEST_P99_NANOS", 1_000_000.0);
    let mut best_p99 = f64::INFINITY;
    for &count in lane_counts {
        let row = run(&["lanes", "1000", "1000", "null", &count.to_string()]);
        let lane_ratio = row_f64(&row, "achieved_offered_ratio");
        assert!(
            lane_ratio >= min_ratio,
            "acceptance: {count}-lane ×1000 achieved/offered {lane_ratio:.3} < {min_ratio} \
             (override with REPLAY_PERF_MIN_RATIO)"
        );
        best_p99 = best_p99.min(row_f64(&row, "p99"));
        results.push(row);
    }
    if cores >= 2 {
        assert!(
            best_p99 <= max_best_p99,
            "acceptance: best lane-curve p99 issue lag {best_p99} ns > {max_best_p99} ns \
             (override with REPLAY_PERF_MAX_BEST_P99_NANOS)"
        );
    } else {
        eprintln!(
            "note: single-core host — lane-curve best p99 {best_p99} ns recorded, \
             {max_best_p99} ns budget not asserted (bursts exceed one core's decode ceiling)"
        );
    }

    // O_DIRECT vs buffered fidelity on the real VFS path: slowed
    // pacing (×0.25) over a short prefix so the offered rate (~1.2K
    // rps) sits inside O_DIRECT's per-op service rate and the
    // comparison isolates backend service time, not scheduler debt.
    results.push(run(&["replay", "3", "0.25", "file", "identity"]));
    results.push(run(&["replay", "3", "0.25", "direct", "identity"]));

    let mut f = std::fs::File::create("BENCH_replay.json").expect("create BENCH_replay.json");
    writeln!(
        f,
        "{{\n  \"bench\": \"replay\",\n  \"cores\": {cores},\n  \"results\": [\n    {}\n  ]\n}}",
        results.join(",\n    ")
    )
    .expect("write BENCH_replay.json");
    eprintln!("wrote BENCH_replay.json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("replay") => {
            let thousands: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
            let multiplier: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1000.0);
            let backend = args.get(3).map(String::as_str).unwrap_or("null");
            let remap = args.get(4).map(String::as_str).unwrap_or("identity");
            phase_replay(thousands, multiplier, backend, remap);
        }
        Some("lanes") => {
            let thousands: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
            let multiplier: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1000.0);
            let backend = args.get(3).map(String::as_str).unwrap_or("null");
            let lanes: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(2);
            phase_lanes(thousands, multiplier, backend, lanes);
        }
        Some("smoke") => phase_smoke(),
        Some("--lanes") => {
            let counts: Vec<usize> = args
                .get(1)
                .map(|s| s.split(',').filter_map(|c| c.trim().parse().ok()).collect())
                .unwrap_or_default();
            assert!(
                !counts.is_empty(),
                "--lanes expects a comma-separated list, e.g. --lanes 1,2,4,8"
            );
            orchestrate(&counts);
        }
        Some(other) => {
            eprintln!("unknown phase {other:?}; expected replay|lanes|smoke|--lanes");
            std::process::exit(2);
        }
        None => orchestrate(&[1, 2, 4, 8]),
    }
}
