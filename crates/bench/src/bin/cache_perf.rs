//! Cache-sweep performance measurement harness.
//!
//! Produces the numbers recorded in `EXPERIMENTS.md` and
//! `BENCH_cache.json`: the naive per-(policy, capacity) `CacheSim`
//! loop (one CBT decode + block expansion + simulation per pair)
//! A/B'd against the single-pass sweep engine, exact and
//! SHARDS-sampled, over the same policy × capacity grid and the same
//! trace — plus the measured SHARDS approximation error per sampling
//! rate.
//!
//! Like `ingest_perf`, the orchestrator re-execs itself so each phase
//! runs in a fresh subprocess (isolated `VmHWM` peak RSS):
//!
//! ```sh
//! cargo run --release -p cbs-bench --bin cache_perf             # all phases
//! cargo run --release -p cbs-bench --bin cache_perf naive 10    # one phase
//! cargo run --release -p cbs-bench --bin cache_perf smoke       # CI gate
//! ```
//!
//! Each phase prints a single-line JSON object; the orchestrator
//! assembles them into `BENCH_cache.json`, asserts the naive and
//! exact-sweep `"grid"` stats are byte-identical, and records the
//! wall-clock speedups. `--threads N` sets the sweep's lane worker
//! count to `N - 1` (one core stays with the decode/expand producer);
//! the default matches the machine.

use std::io::Write as _;
use std::time::Instant;

use cbs_cache::{policy_by_name, CacheSim, CacheStats, SweepGrid, POLICY_NAMES};
use cbs_obs::Registry;
use cbs_synth::presets::{self, CorpusConfig};
use cbs_trace::{BlockAccessColumn, BlockSize, CbtReader, CbtWriter, IoRequest};

/// The benchmark grid: every policy at five capacities (16 MiB to
/// 4 GiB of 4 KiB blocks) — a Fig. 18-style ablation surface.
const CAPACITIES: [usize; 5] = [4_096, 16_384, 65_536, 262_144, 1_048_576];

/// The same corpus family the ingest benchmarks use.
fn big_corpus() -> cbs_synth::CorpusGenerator {
    let config = CorpusConfig::new(128, 4, 4242).with_intensity_scale(0.05);
    presets::alicloud_like(&config)
}

fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

/// Writes `millions`M corpus requests to a temp CBT file (untimed
/// setup shared by the naive and sweep phases) and returns its path.
fn write_corpus_cbt(millions: u64) -> std::path::PathBuf {
    let n = (millions * 1_000_000) as usize;
    let path = std::env::temp_dir().join(format!("cache_perf_{}.cbt", std::process::id()));
    let file = std::fs::File::create(&path).expect("create temp cbt");
    let mut writer = CbtWriter::new(std::io::BufWriter::new(file));
    let mut written = 0usize;
    for req in big_corpus().stream().take(n) {
        writer.write_request(&req).expect("encode cbt");
        written += 1;
    }
    writer
        .finish()
        .expect("finish cbt")
        .flush()
        .expect("flush cbt");
    assert_eq!(written, n, "corpus smaller than requested target");
    path
}

/// The identity + stats of every grid pair as a deterministic JSON
/// array. The orchestrator byte-compares this between the naive and
/// exact-sweep phases: equal strings mean bit-identical integer hit
/// counts (the miss ratios derive from them).
fn grid_json(entries: &[(String, usize, CacheStats)]) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|(policy, capacity, stats)| {
            format!(
                "{{\"policy\":\"{policy}\",\"capacity\":{capacity},\
                 \"read_accesses\":{},\"read_hits\":{},\
                 \"write_accesses\":{},\"write_hits\":{}}}",
                stats.read_accesses(),
                stats.read_hits(),
                stats.write_accesses(),
                stats.write_hits()
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// The naive baseline: one full CBT decode + block expansion +
/// `CacheSim` run per (policy, capacity) pair — what ablation scripts
/// did before the sweep engine.
fn phase_naive(millions: u64) {
    let path = write_corpus_cbt(millions);
    let n = millions * 1_000_000;
    let block_size = BlockSize::DEFAULT;

    let start = Instant::now();
    let mut entries = Vec::new();
    let mut pair_seconds = Vec::new();
    for &name in POLICY_NAMES {
        for &capacity in &CAPACITIES {
            let pair_start = Instant::now();
            let policy = policy_by_name(name, capacity).expect("known policy");
            let mut sim = CacheSim::new(policy, block_size);
            let mut scratch = BlockAccessColumn::new();
            let file = std::fs::File::open(&path).expect("open temp cbt");
            let mut reader = CbtReader::new(std::io::BufReader::new(file));
            let mut decoded = 0u64;
            while let Some(batch) = reader.read_batch().expect("decode cbt") {
                decoded += batch.len() as u64;
                sim.run_batch(&batch, &mut scratch);
            }
            assert_eq!(decoded, n, "cbt file shorter than written");
            let secs = pair_start.elapsed().as_secs_f64();
            pair_seconds.push(format!(
                "{{\"policy\":\"{name}\",\"capacity\":{capacity},\"seconds\":{secs:.3}}}"
            ));
            entries.push((name.to_owned(), capacity, sim.stats()));
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    println!(
        "{{\"phase\":\"naive\",\"requests\":{n},\"pairs\":{},\"n_threads\":1,\
         \"seconds\":{secs:.3},\"grid\":{},\"pair_seconds\":[{}],\"peak_rss_kb\":{}}}",
        entries.len(),
        grid_json(&entries),
        pair_seconds.join(","),
        peak_rss_kb()
    );
}

/// Builds the benchmark grid: exact when `sampled` is false (every
/// pair an exact lane), otherwise the headline configuration — LRU
/// capacities on the collapsed exact stack lane, every other policy as
/// a SHARDS-sampled lane, plus the sampled MRC.
fn bench_grid(workers: usize, sampled: bool, registry: &Registry) -> SweepGrid {
    let mut grid = SweepGrid::new()
        .with_workers(workers)
        .with_registry(registry);
    for &name in POLICY_NAMES {
        for &capacity in &CAPACITIES {
            grid = if sampled && name != "lru" {
                grid.sampled_policy(name, capacity).expect("known policy")
            } else {
                grid.policy(name, capacity).expect("known policy")
            };
        }
    }
    if sampled {
        grid = grid.with_sampled_mrc();
    }
    grid
}

/// Drives a sweep from the CBT file and prints its JSON line.
fn phase_sweep(millions: u64, workers: usize, sampled: bool) {
    let path = write_corpus_cbt(millions);
    let n = millions * 1_000_000;
    let registry = Registry::new();
    let grid = bench_grid(workers, sampled, &registry);

    let start = Instant::now();
    let mut sweep = grid.start();
    let file = std::fs::File::open(&path).expect("open temp cbt");
    let mut reader = CbtReader::new(std::io::BufReader::new(file));
    while let Some(batch) = reader.read_batch().expect("decode cbt") {
        sweep.observe_batch(&batch);
    }
    let report = sweep.finish();
    let secs = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    assert_eq!(report.requests(), n, "cbt file shorter than written");

    let phase = if sampled {
        "sweep_sampled"
    } else {
        "sweep_exact"
    };
    let entries: Vec<(String, usize, CacheStats)> = report
        .lanes()
        .iter()
        .filter(|l| !l.sampled)
        .map(|l| (l.policy.clone(), l.capacity, l.stats))
        .collect();
    let lane_nanos: Vec<String> = report
        .lanes()
        .iter()
        .map(|l| {
            format!(
                "{{\"policy\":\"{}\",\"capacity\":{},\"sampled\":{},\"nanos\":{},\
                 \"accesses\":{}}}",
                l.policy, l.capacity, l.sampled, l.nanos, l.accesses
            )
        })
        .collect();
    println!(
        "{{\"phase\":\"{phase}\",\"requests\":{n},\"pairs\":{},\"n_threads\":{},\
         \"seconds\":{secs:.3},\"accesses\":{},\"sampled_accesses\":{},\
         \"sampled_fraction\":{:.6},\"expand_nanos\":{},\"sample_rate\":{},\
         \"grid\":{},\"lanes\":[{}],\"metrics\":{},\"peak_rss_kb\":{}}}",
        report.lanes().len(),
        workers + 1,
        report.accesses(),
        report.sampled_accesses(),
        report.sampled_fraction(),
        report.expand_nanos(),
        report.sample_rate(),
        grid_json(&entries),
        lane_nanos.join(","),
        registry.to_json(),
        peak_rss_kb()
    );
}

/// Measures the SHARDS miss-ratio-curve approximation error per
/// sampling rate against the exact stack-lane curve, over an
/// AliCloud-like corpus. The sweep engine runs both curves; the error
/// is the max absolute miss-ratio gap over the evaluation capacities.
fn phase_shards(millions: u64) {
    let n = (millions * 1_000_000) as usize;
    let requests: Vec<IoRequest> = big_corpus().stream().take(n).collect();
    assert_eq!(requests.len(), n, "corpus smaller than requested target");
    // Bend-and-tail region (512 – 1 Mi blocks): the sampler's rescaled
    // distances have a resolution of ~1/rate and the SHARDS-adj
    // correction lands at distance 0, so the head of the curve is a
    // quantisation artifact; ε is stated where the benchmark grid
    // (4 Ki – 1 Mi) actually operates. Mirrors tests/shards_error.rs.
    let eval: Vec<usize> = (9..=20).map(|i| 1usize << i).collect();

    let mut rows = Vec::new();
    for rate in [0.1, 0.01, 0.001] {
        let start = Instant::now();
        let report = SweepGrid::new()
            .with_workers(0)
            .with_sample_rate(rate)
            .expect("valid rate")
            .lru_capacity(1)
            .expect("non-zero")
            .with_sampled_mrc()
            .sweep(requests.iter().copied());
        let secs = start.elapsed().as_secs_f64();
        let exact = report.lru_mrc().expect("stack lane ran");
        let sampled = report.sampled_mrc().expect("sampled mrc requested");
        let max_err = eval
            .iter()
            .map(|&c| (exact.miss_ratio_at(c) - sampled.miss_ratio_at(c)).abs())
            .fold(0.0f64, f64::max);
        rows.push(format!(
            "{{\"rate\":{rate},\"sampled_fraction\":{:.6},\"max_abs_error\":{max_err:.6},\
             \"seconds\":{secs:.3}}}",
            report.sampled_fraction()
        ));
    }
    println!(
        "{{\"phase\":\"shards\",\"requests\":{n},\"n_threads\":1,\"rates\":[{}],\
         \"peak_rss_kb\":{}}}",
        rows.join(","),
        peak_rss_kb()
    );
}

/// Fast CI gate over a small in-process corpus: asserts every exact
/// sweep lane is bit-identical to a fresh per-pair `CacheSim`, asserts
/// the sweep's single pass beats the naive re-decode loop on wall
/// clock, and sanity-checks the sampled path.
fn phase_smoke() {
    const N: usize = 300_000;
    let config = CorpusConfig::new(16, 2, 777).with_intensity_scale(0.05);
    let requests: Vec<IoRequest> = presets::alicloud_like(&config).stream().take(N).collect();
    assert_eq!(requests.len(), N, "smoke corpus too small");
    let capacities = [512usize, 4_096];
    let block_size = BlockSize::DEFAULT;

    // Naive loop: re-expand the request stream once per pair.
    let naive_start = Instant::now();
    let mut naive = Vec::new();
    for &name in POLICY_NAMES {
        for &capacity in &capacities {
            let policy = policy_by_name(name, capacity).expect("known policy");
            let mut sim = CacheSim::new(policy, block_size);
            sim.run(&requests);
            naive.push((name.to_owned(), capacity, sim.stats()));
        }
    }
    let naive_secs = naive_start.elapsed().as_secs_f64();

    // Sweep: one traversal, one expansion, every lane.
    let registry = Registry::new();
    let sweep_start = Instant::now();
    let report = SweepGrid::new()
        .with_registry(&registry)
        .grid(POLICY_NAMES, &capacities)
        .expect("known policies")
        .sweep(requests.iter().copied());
    let sweep_secs = sweep_start.elapsed().as_secs_f64();

    // Bit-identical reconciliation across every pair.
    assert_eq!(report.lanes().len(), naive.len(), "lane count mismatch");
    for (name, capacity, stats) in &naive {
        let got = report
            .stats(name, *capacity)
            .expect("sweep lane for naive pair");
        assert_eq!(
            &got, stats,
            "sweep diverges from CacheSim at {name}@{capacity}"
        );
    }
    let sweep_entries: Vec<(String, usize, CacheStats)> = report
        .lanes()
        .iter()
        .map(|l| (l.policy.clone(), l.capacity, l.stats))
        .collect();
    assert_eq!(
        grid_json(&sweep_entries),
        grid_json(&naive),
        "grid JSON diverges between sweep and naive"
    );
    // The registry's accounting must reconcile with the report.
    assert_eq!(registry.counter("sweep.accesses").get(), report.accesses());
    // Physical lanes: the stack lane collapses every LRU pair into one.
    assert_eq!(
        registry.gauge("sweep.lanes").get(),
        (report.lanes().len() - capacities.len() + 1) as u64
    );

    // The sweep does strictly less work than the naive loop (one
    // expansion instead of one per pair), so it must not be slower.
    assert!(
        sweep_secs <= naive_secs,
        "sweep ({sweep_secs:.3}s) slower than naive loop ({naive_secs:.3}s)"
    );

    // Sampled mode: bounded error against the exact curve.
    let sampled = SweepGrid::new()
        .with_sample_rate(0.05)
        .expect("valid rate")
        .lru_capacity(capacities[1])
        .expect("non-zero")
        .sampled_policy("fifo", capacities[1])
        .expect("known policy")
        .with_sampled_mrc()
        .sweep(requests.iter().copied());
    let frac = sampled.sampled_fraction();
    assert!(
        frac > 0.01 && frac < 0.25,
        "sampled fraction {frac} far from the 0.05 rate"
    );
    let exact_mrc = sampled.lru_mrc().expect("stack lane ran");
    let approx_mrc = sampled.sampled_mrc().expect("sampled mrc requested");
    let err =
        (exact_mrc.miss_ratio_at(capacities[1]) - approx_mrc.miss_ratio_at(capacities[1])).abs();
    assert!(err < 0.05, "sampled MRC error {err} exceeds 0.05");

    println!(
        "smoke ok: {N} requests, {} pairs bit-identical to CacheSim, \
         sweep {sweep_secs:.3}s vs naive {naive_secs:.3}s ({:.2}x), \
         sampled MRC error {err:.4} at rate 0.05",
        naive.len(),
        naive_secs / sweep_secs
    );
}

/// Extracts the `"grid":[...]` slice of a phase's JSON line.
fn grid_slice(line: &str) -> &str {
    let start = line.find("\"grid\":[").expect("phase line has a grid");
    let rest = &line[start..];
    let end = rest.find(']').expect("grid array closes");
    &rest[..=end]
}

/// Extracts the `"seconds":X` value of a phase's JSON line.
fn seconds_of(line: &str) -> f64 {
    let start = line.find("\"seconds\":").expect("phase line has seconds") + "\"seconds\":".len();
    line[start..]
        .split(&[',', '}'][..])
        .next()
        .and_then(|s| s.parse().ok())
        .expect("seconds parses")
}

/// Run each phase as a fresh subprocess, verify the naive and
/// exact-sweep grids agree bit-for-bit, and write `BENCH_cache.json`
/// with the speedup summary.
fn orchestrate(millions: u64, shards_millions: u64, threads: usize) {
    let exe = std::env::current_exe().expect("current_exe");
    let run = |args: &[String]| -> String {
        eprintln!("→ cache_perf {}", args.join(" "));
        let out = std::process::Command::new(&exe)
            .args(args)
            .arg("--threads")
            .arg(threads.to_string())
            .output()
            .expect("spawn phase subprocess");
        assert!(
            out.status.success(),
            "phase {:?} failed:\n{}",
            args,
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("phase stdout utf-8");
        let line = stdout
            .lines()
            .last()
            .expect("phase printed no JSON")
            .to_owned();
        eprintln!("  {line}");
        line
    };

    let naive = run(&["naive".into(), millions.to_string()]);
    let exact = run(&["sweep-exact".into(), millions.to_string()]);
    let sampled = run(&["sweep-sampled".into(), millions.to_string()]);
    let shards = run(&["shards".into(), shards_millions.to_string()]);

    assert_eq!(
        grid_slice(&naive),
        grid_slice(&exact),
        "exact sweep grid diverges from the naive loop"
    );
    let naive_secs = seconds_of(&naive);
    let exact_speedup = naive_secs / seconds_of(&exact);
    let sampled_speedup = naive_secs / seconds_of(&sampled);
    let summary = format!(
        "{{\"phase\":\"summary\",\"grids_bit_identical\":true,\
         \"exact_sweep_speedup\":{exact_speedup:.2},\
         \"sampled_sweep_speedup\":{sampled_speedup:.2}}}"
    );
    eprintln!("  {summary}");

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let results = [naive, exact, sampled, shards, summary];
    let mut f = std::fs::File::create("BENCH_cache.json").expect("create BENCH_cache.json");
    writeln!(
        f,
        "{{\n  \"bench\": \"cache\",\n  \"cores\": {cores},\n  \"results\": [\n    {}\n  ]\n}}",
        results.join(",\n    ")
    )
    .expect("write BENCH_cache.json");
    eprintln!("wrote BENCH_cache.json");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = std::thread::available_parallelism().map_or(1, |c| c.get());
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let value = args.get(i + 1).and_then(|s| s.parse().ok());
        match value {
            Some(n) if n >= 1 => {
                threads = n;
                args.drain(i..=i + 1);
            }
            _ => {
                eprintln!("--threads expects a positive integer");
                std::process::exit(2);
            }
        }
    }
    // One core stays with the CBT-decode/expand producer; the rest run
    // sweep lanes. On a single-core host the sweep runs inline.
    let workers = threads.saturating_sub(1);
    let millions = |i: usize, default: u64| -> u64 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    match args.first().map(String::as_str) {
        Some("naive") => phase_naive(millions(1, 10)),
        Some("sweep-exact") => phase_sweep(millions(1, 10), workers, false),
        Some("sweep-sampled") => phase_sweep(millions(1, 10), workers, true),
        Some("shards") => phase_shards(millions(1, 2)),
        Some("smoke" | "--smoke") => phase_smoke(),
        Some(other) => {
            eprintln!(
                "unknown phase {other:?}; expected \
                 naive|sweep-exact|sweep-sampled|shards|smoke"
            );
            std::process::exit(2);
        }
        None => orchestrate(10, 2, threads),
    }
}
