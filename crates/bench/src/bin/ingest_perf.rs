//! Ingest performance measurement harness.
//!
//! Produces the numbers recorded in `EXPERIMENTS.md` and
//! `BENCH_ingest.json`: chunked parallel decode throughput (MB/s,
//! records/s, CSV vs CBT, 1 vs N threads) and end-to-end analyze
//! throughput with peak RSS — batch, streaming, streaming from
//! columnar batches, and streaming from a CBT file.
//!
//! Peak RSS (`VmHWM` in `/proc/self/status`) is a process-lifetime
//! high-water mark, so the orchestrator re-execs itself with a phase
//! argument and each phase runs in a fresh subprocess:
//!
//! ```sh
//! cargo run --release -p cbs-bench --bin ingest_perf           # all phases
//! cargo run --release -p cbs-bench --bin ingest_perf stream 10 # one phase
//! cargo run --release -p cbs-bench --bin ingest_perf smoke     # CI gate
//! ```
//!
//! `--threads N` pins the worker-thread count used by the decode
//! phase (default: the core count); when `N == 1` the redundant
//! `parallel_n_threads` measurement is skipped because it would repeat
//! `parallel_1_thread`. Every phase records the thread count it
//! actually used.
//!
//! `--shards 1,2,4,8` sets the shard counts the orchestrator sweeps
//! through `stream-shards` phases (one subprocess per count), producing
//! the scaling curve in `EXPERIMENTS.md` together with the per-shard
//! load split and imbalance the skew-aware router achieved. The
//! `stream-cbt-mmap` phase measures the zero-copy re-ingest path:
//! `Mmap` + `CbtSliceReader` lending borrowed batches straight to
//! `observe_request_batch_ref`, no per-batch row materialization.
//!
//! `--workers 1,2,4,8` sets the worker counts the `analyze-partitioned`
//! phase sweeps the corpus-partitioned driver through (one subprocess,
//! one curve row per count, every run asserted bit-identical to the
//! sequential baseline before its timing is reported).
//!
//! Each phase prints a single-line JSON object; the orchestrator
//! assembles them into `BENCH_ingest.json`. Streaming phases attach a
//! `cbs-obs` registry and embed its export under `"metrics"` plus
//! coarse stage timings under `"stages"`; set `INGEST_PERF_NO_OBS=1`
//! to run the stream phase without a registry and measure the
//! observability overhead by A/B comparison (see `EXPERIMENTS.md`).

use std::io::Write as _;
use std::time::Instant;

use cbs_core::{PartitionedWorkbench, StreamingWorkbench, Workbench};
use cbs_obs::{Registry, Stopwatch};
use cbs_synth::presets::{self, CorpusConfig};
use cbs_trace::codec::alicloud::{AliCloudReader, AliCloudWriter};
use cbs_trace::{CbtReader, CbtSliceReader, CbtWriter, Mmap, ParallelDecoder, RequestBatch, Trace};

/// A corpus whose lazy stream comfortably exceeds the largest
/// `--stream` target so `.take(n)` yields exactly `n` requests.
fn big_corpus() -> cbs_synth::CorpusGenerator {
    let config = CorpusConfig::new(128, 4, 4242).with_intensity_scale(0.05);
    presets::alicloud_like(&config)
}

/// The same corpus with every address region clamped to 64 MiB, so the
/// aggregate working set saturates after a few million requests. Used
/// to show streaming RSS tracks *unique blocks*, not request count.
fn bounded_corpus() -> cbs_synth::CorpusGenerator {
    const REGION_CAP: u64 = 64 << 20;
    let profiles = big_corpus()
        .profiles()
        .iter()
        .map(|p| {
            let mut p = p.clone();
            p.read_spatial.region_len = p.read_spatial.region_len.min(REGION_CAP);
            p.write_spatial.region_len = p.write_spatial.region_len.min(REGION_CAP);
            if let Some(job) = &mut p.daily_rewrite {
                job.region_len = job.region_len.min(REGION_CAP);
            }
            p
        })
        .collect();
    cbs_synth::CorpusGenerator::new(profiles).expect("clamped profiles stay valid")
}

fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

/// Requests per stage-timing chunk: coarse enough that the two
/// `Stopwatch` reads per chunk vanish against ~8k observe calls.
const STAGE_CHUNK: usize = 8192;

/// Stream-analyze `millions`M requests without materializing them,
/// splitting wall time into generate vs observe stages per
/// [`STAGE_CHUNK`] requests and exporting pipeline metrics.
fn phase_stream(millions: u64, bounded: bool) {
    let n = (millions * 1_000_000) as usize;
    let generator = if bounded {
        bounded_corpus()
    } else {
        big_corpus()
    };
    let phase = if bounded {
        "stream_bounded_wss"
    } else {
        "stream"
    };
    let registry = Registry::new();
    // INGEST_PERF_NO_OBS=1 drops the registry so the observability
    // overhead itself can be measured (`"metrics"` comes out empty).
    let workbench = if std::env::var_os("INGEST_PERF_NO_OBS").is_some() {
        StreamingWorkbench::new()
    } else {
        StreamingWorkbench::new().with_registry(&registry)
    };
    let shards = workbench.shards();
    let start = Instant::now();
    let mut session = workbench.start();
    let mut stream = generator.stream().take(n);
    let mut buf = Vec::with_capacity(STAGE_CHUNK);
    let (mut generate_nanos, mut observe_nanos) = (0u64, 0u64);
    loop {
        buf.clear();
        let clock = Stopwatch::start();
        buf.extend(stream.by_ref().take(STAGE_CHUNK));
        generate_nanos += clock.elapsed_nanos();
        if buf.is_empty() {
            break;
        }
        let clock = Stopwatch::start();
        for &req in &buf {
            session.observe(req);
        }
        observe_nanos += clock.elapsed_nanos();
    }
    let observed = session.observed();
    let volumes = session.finish().len();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(observed, n as u64, "corpus smaller than requested target");
    println!(
        "{{\"phase\":\"{phase}\",\"requests\":{observed},\"volumes\":{volumes},\
         \"n_threads\":{shards},\"seconds\":{secs:.3},\"requests_per_sec\":{:.0},\
         \"stages\":{{\"generate_nanos\":{generate_nanos},\"observe_nanos\":{observe_nanos}}},\
         \"metrics\":{},\"peak_rss_kb\":{}}}",
        observed as f64 / secs,
        registry.to_json(),
        peak_rss_kb()
    );
}

/// Stream-analyze `millions`M requests fed as columnar
/// [`RequestBatch`]es through [`cbs_core::StreamingSession::observe_request_batch`]
/// — the entry point CBT re-ingest uses, without the decode cost.
fn phase_stream_batched(millions: u64) {
    const FEED_BATCH: usize = 8192;
    let n = (millions * 1_000_000) as usize;
    let registry = Registry::new();
    let workbench = StreamingWorkbench::new().with_registry(&registry);
    let shards = workbench.shards();
    let start = Instant::now();
    let mut session = workbench.start();
    let mut feed = RequestBatch::with_capacity(FEED_BATCH);
    let (mut generate_nanos, mut observe_nanos) = (0u64, 0u64);
    let mut clock = Stopwatch::start();
    for req in big_corpus().stream().take(n) {
        feed.push(&req);
        if feed.len() == FEED_BATCH {
            generate_nanos += clock.elapsed_nanos();
            let routing = Stopwatch::start();
            session.observe_request_batch(&feed);
            observe_nanos += routing.elapsed_nanos();
            feed.clear();
            clock = Stopwatch::start();
        }
    }
    generate_nanos += clock.elapsed_nanos();
    let routing = Stopwatch::start();
    session.observe_request_batch(&feed);
    observe_nanos += routing.elapsed_nanos();
    let observed = session.observed();
    let volumes = session.finish().len();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(observed, n as u64, "corpus smaller than requested target");
    println!(
        "{{\"phase\":\"stream_batched\",\"requests\":{observed},\"volumes\":{volumes},\
         \"n_threads\":{shards},\"seconds\":{secs:.3},\"requests_per_sec\":{:.0},\
         \"stages\":{{\"generate_nanos\":{generate_nanos},\"observe_nanos\":{observe_nanos}}},\
         \"metrics\":{},\"peak_rss_kb\":{}}}",
        observed as f64 / secs,
        registry.to_json(),
        peak_rss_kb()
    );
}

/// Convert `millions`M requests to a CBT file (untimed), then time the
/// full re-ingest: CBT decode → columnar batches → streaming analysis.
fn phase_stream_cbt(millions: u64) {
    let n = (millions * 1_000_000) as usize;
    let path = std::env::temp_dir().join(format!("ingest_perf_{}.cbt", std::process::id()));
    {
        let file = std::fs::File::create(&path).expect("create temp cbt");
        let mut writer = CbtWriter::new(std::io::BufWriter::new(file));
        for req in big_corpus().stream().take(n) {
            writer.write_request(&req).expect("encode cbt");
        }
        writer
            .finish()
            .expect("finish cbt")
            .flush()
            .expect("flush cbt");
    }
    let cbt_bytes = std::fs::metadata(&path).expect("stat temp cbt").len();

    let registry = Registry::new();
    let workbench = StreamingWorkbench::new().with_registry(&registry);
    let shards = workbench.shards();
    let start = Instant::now();
    let mut session = workbench.start();
    let file = std::fs::File::open(&path).expect("open temp cbt");
    let mut reader = CbtReader::new(std::io::BufReader::new(file)).with_registry(&registry);
    // One CBT block per stage-timing chunk: decode vs route.
    let (mut decode_nanos, mut route_nanos) = (0u64, 0u64);
    loop {
        let clock = Stopwatch::start();
        let batch = reader.read_batch().expect("decode cbt");
        decode_nanos += clock.elapsed_nanos();
        let Some(batch) = batch else { break };
        let clock = Stopwatch::start();
        session.observe_request_batch(&batch);
        route_nanos += clock.elapsed_nanos();
    }
    let observed = session.observed();
    let volumes = session.finish().len();
    let secs = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    assert_eq!(observed, n as u64, "cbt file shorter than written");
    println!(
        "{{\"phase\":\"stream_cbt\",\"requests\":{observed},\"volumes\":{volumes},\
         \"n_threads\":{shards},\"cbt_bytes\":{cbt_bytes},\"seconds\":{secs:.3},\
         \"requests_per_sec\":{:.0},\
         \"stages\":{{\"decode_nanos\":{decode_nanos},\"route_nanos\":{route_nanos}}},\
         \"metrics\":{},\"peak_rss_kb\":{}}}",
        observed as f64 / secs,
        registry.to_json(),
        peak_rss_kb()
    );
}

/// Convert `millions`M requests to a CBT file (untimed), then time the
/// zero-copy re-ingest: mmap the file, decode each block in place with
/// [`CbtSliceReader`], and lend the borrowed columns straight to the
/// router via `observe_request_batch_ref` — no read syscalls in the
/// loop and no per-batch row materialization.
fn phase_stream_cbt_mmap(millions: u64) {
    let n = (millions * 1_000_000) as usize;
    let path = std::env::temp_dir().join(format!("ingest_perf_mmap_{}.cbt", std::process::id()));
    {
        let file = std::fs::File::create(&path).expect("create temp cbt");
        let mut writer = CbtWriter::new(std::io::BufWriter::new(file));
        for req in big_corpus().stream().take(n) {
            writer.write_request(&req).expect("encode cbt");
        }
        writer
            .finish()
            .expect("finish cbt")
            .flush()
            .expect("flush cbt");
    }
    let cbt_bytes = std::fs::metadata(&path).expect("stat temp cbt").len();

    let registry = Registry::new();
    let workbench = StreamingWorkbench::new().with_registry(&registry);
    let shards = workbench.shards();
    let start = Instant::now();
    let mut session = workbench.start();
    let map = Mmap::open(&path).expect("map temp cbt");
    let mut reader = CbtSliceReader::new(&map).with_registry(&registry);
    let (mut decode_nanos, mut route_nanos) = (0u64, 0u64);
    loop {
        let clock = Stopwatch::start();
        let batch = reader.read_batch_ref().expect("decode cbt");
        decode_nanos += clock.elapsed_nanos();
        let Some(batch) = batch else { break };
        let clock = Stopwatch::start();
        session.observe_request_batch_ref(batch);
        route_nanos += clock.elapsed_nanos();
    }
    let observed = session.observed();
    let volumes = session.finish().len();
    let secs = start.elapsed().as_secs_f64();
    drop(map);
    let _ = std::fs::remove_file(&path);
    assert_eq!(observed, n as u64, "cbt file shorter than written");
    println!(
        "{{\"phase\":\"stream_cbt_mmap\",\"requests\":{observed},\"volumes\":{volumes},\
         \"n_threads\":{shards},\"cbt_bytes\":{cbt_bytes},\"seconds\":{secs:.3},\
         \"requests_per_sec\":{:.0},\
         \"stages\":{{\"decode_nanos\":{decode_nanos},\"route_nanos\":{route_nanos}}},\
         \"metrics\":{},\"peak_rss_kb\":{}}}",
        observed as f64 / secs,
        registry.to_json(),
        peak_rss_kb()
    );
}

/// Stream-analyze `millions`M requests through exactly `shards` worker
/// shards, fed as columnar batches, and report the per-shard load split
/// the skew-aware router produced. One subprocess per shard count gives
/// the scaling curve in `EXPERIMENTS.md`.
fn phase_stream_shards(millions: u64, shards: usize) {
    const FEED_BATCH: usize = 8192;
    let n = (millions * 1_000_000) as usize;
    let registry = Registry::new();
    let workbench = StreamingWorkbench::new()
        .with_shards(shards)
        .with_registry(&registry);
    let shards = workbench.shards();
    let start = Instant::now();
    let mut session = workbench.start();
    let mut feed = RequestBatch::with_capacity(FEED_BATCH);
    for req in big_corpus().stream().take(n) {
        feed.push(&req);
        if feed.len() == FEED_BATCH {
            session.observe_request_batch(&feed);
            feed.clear();
        }
    }
    session.observe_request_batch(&feed);
    let observed = session.observed();
    let volumes = session.finish().len();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(observed, n as u64, "corpus smaller than requested target");
    let loads: Vec<u64> = (0..shards)
        .map(|s| registry.counter(&format!("stream.shard{s}.requests")).get())
        .collect();
    assert_eq!(loads.iter().sum::<u64>(), observed, "shard loads diverge");
    // Imbalance: hottest shard relative to a perfectly even split
    // (1.0 = perfect; `shards` = everything on one worker).
    let imbalance =
        loads.iter().copied().max().unwrap_or(0) as f64 / (observed as f64 / shards as f64);
    let loads_json = loads
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "{{\"phase\":\"stream_shards\",\"requests\":{observed},\"volumes\":{volumes},\
         \"shards\":{shards},\"seconds\":{secs:.3},\"requests_per_sec\":{:.0},\
         \"shard_requests\":[{loads_json}],\"imbalance\":{imbalance:.3},\
         \"backpressure_nanos\":{},\"wall_nanos\":{},\"peak_rss_kb\":{}}}",
        observed as f64 / secs,
        registry.counter("stream.backpressure_nanos").get(),
        (secs * 1e9) as u64,
        peak_rss_kb()
    );
}

/// Materialize `millions`M requests into a `Trace`, then sweep the
/// corpus-partitioned driver across a worker-count curve: sequential
/// baseline first, then [`cbs_core::PartitionedWorkbench`] at each
/// worker count, asserting every run's per-volume records are
/// bit-identical to the baseline before timing is reported. Also
/// reports the partition/merge overhead: the workers=1 partitioned run
/// against the plain sequential pass (same parallelism, so the delta
/// is the driver's channel + merge-fold cost).
fn phase_analyze_partitioned(millions: u64, workers_list: &[usize]) {
    let n = (millions * 1_000_000) as usize;
    let requests: Vec<_> = big_corpus().stream().take(n).collect();
    let trace = Trace::from_requests(requests);
    let volumes = trace.volume_count();

    // Sequential baseline: one thread, no partition driver. Clone the
    // corpus *outside* the timed region — analyze() consumes its input
    // and a multi-hundred-MiB memcpy would otherwise dominate warm-up.
    let input = trace.clone();
    let start = Instant::now();
    let baseline = Workbench::new(input).analyze_with_threads(1);
    let seq_secs = start.elapsed().as_secs_f64();

    let mut curve = Vec::new();
    let secs_for = |workers: usize| -> f64 {
        let input = trace.clone();
        let start = Instant::now();
        let run = PartitionedWorkbench::new()
            .with_workers(workers)
            .analyze(input);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            run.metrics(),
            baseline.metrics(),
            "partitioned run diverged at {workers} workers"
        );
        secs
    };
    for &workers in workers_list {
        let secs = secs_for(workers);
        curve.push(format!(
            "{{\"workers\":{workers},\"seconds\":{secs:.3},\"requests_per_sec\":{:.0}}}",
            n as f64 / secs
        ));
    }
    let find = |w: usize| workers_list.iter().position(|&x| x == w).map(|i| &curve[i]);
    let secs_of = |entry: &String| -> f64 {
        // Parse back the seconds we formatted two lines up; cheaper
        // than carrying a parallel vec through the JSON assembly.
        entry
            .split("\"seconds\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|s| s.parse().ok())
            .expect("curve entry carries seconds")
    };
    let speedup = match (find(1), find(4)) {
        (Some(w1), Some(w4)) => format!(",\"speedup_4_vs_1\":{:.2}", secs_of(w1) / secs_of(w4)),
        _ => String::new(),
    };
    let overhead = find(1)
        .map(|w1| {
            format!(
                ",\"merge_overhead_frac\":{:.3}",
                (secs_of(w1) - seq_secs) / seq_secs
            )
        })
        .unwrap_or_default();
    println!(
        "{{\"phase\":\"analyze_partitioned\",\"requests\":{n},\"volumes\":{volumes},\
         \"sequential_seconds\":{seq_secs:.3},\"workers_curve\":[{}]{speedup}{overhead},\
         \"verdicts_identical\":true,\"peak_rss_kb\":{}}}",
        curve.join(","),
        peak_rss_kb()
    );
}

/// Materialize the same `millions`M requests into a `Trace`, then
/// batch-analyze — the memory baseline the streaming path avoids.
fn phase_batch(millions: u64) {
    let n = (millions * 1_000_000) as usize;
    let start = Instant::now();
    let requests: Vec<_> = big_corpus().stream().take(n).collect();
    let trace = Trace::from_requests(requests);
    let analysis = Workbench::new(trace).analyze();
    let volumes = analysis.metrics().len();
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{{\"phase\":\"batch\",\"requests\":{n},\"volumes\":{volumes},\"n_threads\":1,\
         \"seconds\":{secs:.3},\"requests_per_sec\":{:.0},\"peak_rss_kb\":{}}}",
        n as f64 / secs,
        peak_rss_kb()
    );
}

/// Decode throughput over the same in-memory corpus, CSV vs CBT:
/// sequential CSV reader, `ParallelDecoder` at 1 and (unless
/// `threads == 1`) at `threads` workers, and the CBT block reader.
fn phase_decode(millions: u64, threads: usize) {
    let n = (millions * 1_000_000) as usize;
    let mut csv = Vec::new();
    let mut cbt_writer = CbtWriter::new(Vec::new());
    {
        let mut w = AliCloudWriter::new(&mut csv);
        for req in big_corpus().stream().take(n) {
            w.write_request(&req).unwrap();
            cbt_writer.write_request(&req).unwrap();
        }
    }
    let cbt = cbt_writer.finish().unwrap();
    let bytes = csv.len() as u64;
    let cbt_bytes = cbt.len() as u64;

    let time = |f: &dyn Fn() -> u64| {
        // Best of 3: decode throughput, not allocator warm-up.
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            assert_eq!(f(), n as u64);
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };

    let seq = time(&|| {
        AliCloudReader::new(&csv[..]).fold(0u64, |acc, r| {
            r.unwrap();
            acc + 1
        })
    });
    let par = |workers: usize| {
        let decoder = ParallelDecoder::new().with_threads(workers);
        let csv = &csv;
        time(&move || {
            let mut total = 0u64;
            decoder
                .decode_alicloud(&csv[..], |batch| total += batch.len() as u64)
                .unwrap();
            total
        })
    };
    let par1 = par(1);
    // `parallel_1_thread` already covers N == 1; re-running it would
    // only duplicate the measurement under another name.
    let parn = (threads > 1).then(|| par(threads));
    let cbt_secs = time(&|| {
        let mut reader = CbtReader::new(&cbt[..]);
        let mut total = 0u64;
        while let Some(batch) = reader.read_batch().unwrap() {
            total += batch.len() as u64;
        }
        total
    });
    // Zero-copy decode: borrowed batches over the in-memory buffer,
    // then the same thing over an mmapped file (the page-cache path).
    let cbt_slice_secs = time(&|| {
        let mut reader = CbtSliceReader::new(&cbt[..]);
        let mut total = 0u64;
        while let Some(batch) = reader.read_batch_ref().unwrap() {
            total += batch.len() as u64;
        }
        total
    });
    let path = std::env::temp_dir().join(format!("ingest_perf_decode_{}.cbt", std::process::id()));
    std::fs::write(&path, &cbt).expect("write temp cbt");
    let map = Mmap::open(&path).expect("map temp cbt");
    let cbt_mmap_secs = time(&|| {
        let mut reader = CbtSliceReader::new(&map);
        let mut total = 0u64;
        while let Some(batch) = reader.read_batch_ref().unwrap() {
            total += batch.len() as u64;
        }
        total
    });
    drop(map);
    let _ = std::fs::remove_file(&path);

    let mb = bytes as f64 / (1u64 << 20) as f64;
    let cbt_mb = cbt_bytes as f64 / (1u64 << 20) as f64;
    let parn_json = match parn {
        Some(t) => format!(
            ",\"parallel_n_threads\":{{\"seconds\":{t:.3},\"mb_per_sec\":{:.1},\
             \"records_per_sec\":{:.0}}},\"speedup_vs_sequential\":{:.2}",
            mb / t,
            n as f64 / t,
            seq / t
        ),
        None => String::new(),
    };
    println!(
        "{{\"phase\":\"decode\",\"records\":{n},\"bytes\":{bytes},\"cbt_bytes\":{cbt_bytes},\
         \"n_threads\":{threads},\
         \"sequential\":{{\"seconds\":{seq:.3},\"mb_per_sec\":{:.1},\"records_per_sec\":{:.0}}},\
         \"parallel_1_thread\":{{\"seconds\":{par1:.3},\"mb_per_sec\":{:.1},\"records_per_sec\":{:.0}}}\
         {parn_json},\
         \"cbt\":{{\"seconds\":{cbt_secs:.3},\"mb_per_sec\":{:.1},\"csv_equiv_mb_per_sec\":{:.1},\
         \"records_per_sec\":{:.0},\"speedup_vs_csv_sequential\":{:.2}}},\
         \"cbt_slice\":{{\"seconds\":{cbt_slice_secs:.3},\"mb_per_sec\":{:.1},\
         \"records_per_sec\":{:.0},\"speedup_vs_cbt_buffered\":{:.2}}},\
         \"cbt_mmap\":{{\"seconds\":{cbt_mmap_secs:.3},\"mb_per_sec\":{:.1},\
         \"records_per_sec\":{:.0},\"speedup_vs_cbt_buffered\":{:.2}}},\
         \"peak_rss_kb\":{}}}",
        mb / seq,
        n as f64 / seq,
        mb / par1,
        n as f64 / par1,
        cbt_mb / cbt_secs,
        mb / cbt_secs,
        n as f64 / cbt_secs,
        seq / cbt_secs,
        cbt_mb / cbt_slice_secs,
        n as f64 / cbt_slice_secs,
        cbt_secs / cbt_slice_secs,
        cbt_mb / cbt_mmap_secs,
        n as f64 / cbt_mmap_secs,
        cbt_secs / cbt_mmap_secs,
        peak_rss_kb()
    );
}

/// Fast CI gate over a small fixed corpus: asserts CSV → CBT → decode
/// round-trips bit-identically, asserts batch / streaming / batched /
/// CBT-fed analyses agree exactly, asserts the `cbs-obs` registry
/// reconciles with the pipeline's own accounting, asserts a corrupt CBT
/// stream poisons instead of truncating, and prints the ingest rate.
fn phase_smoke() {
    const N: usize = 200_000;
    let config = CorpusConfig::new(24, 2, 777).with_intensity_scale(0.05);
    let requests: Vec<_> = presets::alicloud_like(&config).stream().take(N).collect();
    assert_eq!(requests.len(), N, "smoke corpus too small");

    // CSV → CBT → decode round-trip, bit-identical, with the decoder
    // publishing into a registry that must agree with what it returned.
    let registry = Registry::new();
    let mut csv = Vec::new();
    {
        let mut w = AliCloudWriter::new(&mut csv);
        for req in &requests {
            w.write_request(req).unwrap();
        }
    }
    let decoded_csv = ParallelDecoder::new()
        .with_registry(&registry)
        .decode_alicloud_slice(&csv)
        .unwrap();
    assert_eq!(decoded_csv, requests, "CSV decode mismatch");
    assert_eq!(
        registry.counter("decode.records").get(),
        N as u64,
        "decode.records diverges from decoded request count"
    );
    assert_eq!(
        registry.gauge("decode.malformed_line").get(),
        0,
        "clean corpus flagged a malformed line"
    );
    let mut writer = CbtWriter::new(Vec::new());
    writer
        .write_batch(&RequestBatch::from(requests.as_slice()))
        .unwrap();
    let cbt = writer.finish().unwrap();
    let mut decoded_cbt = Vec::new();
    let mut reader = CbtReader::new(&cbt[..]);
    while let Some(batch) = reader.read_batch().unwrap() {
        decoded_cbt.extend(batch.iter());
    }
    assert_eq!(decoded_cbt, requests, "CBT round-trip mismatch");

    // Batch workbench vs streaming (scalar and columnar feeds).
    let batch = Workbench::new(Trace::from_requests(requests.clone())).analyze();
    let start = Instant::now();
    let streaming = StreamingWorkbench::new().analyze(requests.iter().copied());
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(streaming, batch.metrics(), "streaming metrics diverge");
    // Corpus-partitioned driver: inline fallback and any worker count
    // must reproduce the batch metrics bit-for-bit.
    for workers in [0usize, 2, 8] {
        let partitioned = PartitionedWorkbench::new()
            .with_workers(workers)
            .analyze(Trace::from_requests(requests.clone()));
        assert_eq!(
            partitioned.metrics(),
            batch.metrics(),
            "partitioned metrics diverge at {workers} workers"
        );
    }
    let workbench = StreamingWorkbench::new().with_registry(&registry);
    let shards = workbench.shards();
    let mut session = workbench.start();
    let mut reader = CbtReader::new(&cbt[..]).with_registry(&registry);
    while let Some(batch) = reader.read_batch().unwrap() {
        session.observe_request_batch(&batch);
    }
    assert_eq!(session.observed(), N as u64);
    let from_cbt = session.finish();
    assert_eq!(from_cbt, batch.metrics(), "CBT-fed metrics diverge");

    // Zero-copy path: mmap the same stream from a real file and lend
    // borrowed batches straight to a fresh session. Also times the
    // wall clock so the backpressure budget below has a denominator.
    let path = std::env::temp_dir().join(format!("ingest_perf_smoke_{}.cbt", std::process::id()));
    std::fs::write(&path, &cbt).expect("write temp cbt");
    let map = Mmap::open(&path).expect("map temp cbt");
    let bp_registry = Registry::new();
    let mut session = StreamingWorkbench::new()
        .with_registry(&bp_registry)
        .start();
    let clock = Stopwatch::start();
    let mut reader = CbtSliceReader::new(&map);
    while let Some(b) = reader.read_batch_ref().unwrap() {
        session.observe_request_batch_ref(b);
    }
    assert_eq!(session.observed(), N as u64);
    let from_mmap = session.finish();
    let mmap_wall_nanos = clock.elapsed_nanos();
    assert_eq!(from_mmap, batch.metrics(), "mmap-fed metrics diverge");
    drop(map);
    let _ = std::fs::remove_file(&path);

    // Registry reconciliation: every independently counted stage agrees
    // with ground truth, and the export is deterministic.
    assert_eq!(registry.counter("cbt.records").get(), N as u64);
    assert_eq!(registry.counter("stream.observed").get(), N as u64);
    let shard_total: u64 = (0..shards)
        .map(|s| registry.counter(&format!("stream.shard{s}.requests")).get())
        .sum();
    assert_eq!(shard_total, N as u64, "shard counters diverge from feed");
    assert_eq!(
        registry.to_json(),
        registry.to_json(),
        "metrics export is non-deterministic"
    );

    // Poison gate: a corrupt CBT stream must keep returning errors —
    // never a clean-looking early EOF.
    let mut damaged = cbt.clone();
    let last = damaged.len() - 1;
    damaged[last] ^= 0xff;
    let mut reader = CbtReader::new(&damaged[..]);
    let mut clean_records = 0u64;
    let err = loop {
        match reader.read_batch() {
            Ok(Some(batch)) => clean_records += batch.len() as u64,
            Ok(None) => panic!("corrupt CBT stream ended as a clean EOF"),
            Err(e) => break e,
        }
    };
    assert!(clean_records < N as u64, "corruption was never detected");
    drop(err);
    for _ in 0..3 {
        assert!(
            reader.read_batch().is_err(),
            "poisoned CBT reader produced a non-error read"
        );
    }
    // The zero-copy reader must reject the same corruption and stay
    // poisoned too — borrowed batches are not allowed to be sloppier.
    let mut sliced = CbtSliceReader::new(&damaged[..]);
    let mut slice_clean = 0u64;
    loop {
        match sliced.read_batch_ref() {
            Ok(Some(b)) => slice_clean += b.len() as u64,
            Ok(None) => panic!("corrupt CBT stream ended as a clean EOF (slice reader)"),
            Err(_) => break,
        }
    }
    assert!(slice_clean < N as u64, "slice reader missed the corruption");
    for _ in 0..3 {
        assert!(
            sliced.read_batch_ref().is_err(),
            "poisoned slice reader produced a non-error read"
        );
    }

    // CI budgets, env-overridable so slow machines can loosen them:
    // a streaming throughput floor and a cap on the fraction of the
    // mmap-fed wall clock spent blocked on full shard channels.
    let env_f64 = |name: &str, default: f64| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let rps = N as f64 / secs;
    let min_rps = env_f64("INGEST_SMOKE_MIN_RPS", 100_000.0);
    assert!(
        rps >= min_rps,
        "streaming ingest too slow: {rps:.0} req/s < floor {min_rps:.0} \
         (override with INGEST_SMOKE_MIN_RPS)"
    );
    let bp_nanos = bp_registry.counter("stream.backpressure_nanos").get();
    let bp_ratio = bp_nanos as f64 / mmap_wall_nanos as f64;
    let max_bp = env_f64("INGEST_SMOKE_MAX_BACKPRESSURE", 0.9);
    assert!(
        bp_ratio <= max_bp,
        "backpressure ate {:.0}% of the mmap-fed wall clock (budget {:.0}%; \
         override with INGEST_SMOKE_MAX_BACKPRESSURE)",
        bp_ratio * 100.0,
        max_bp * 100.0
    );

    println!(
        "smoke ok: {N} requests, cbt {} bytes ({:.2}x vs csv), \
         round-trip + equivalence (buffered, CBT-fed, mmap-fed) + metrics \
         reconciliation + poison gates verified, {rps:.0} req/s streaming \
         (floor {min_rps:.0}), backpressure {:.1}% of wall (budget {:.0}%)",
        cbt.len(),
        csv.len() as f64 / cbt.len() as f64,
        bp_ratio * 100.0,
        max_bp * 100.0
    );
}

/// Run each phase as a fresh subprocess (isolated `VmHWM`) and write
/// the collected JSON lines to `BENCH_ingest.json`.
fn orchestrate(
    stream_millions: &[u64],
    batch_millions: &[u64],
    decode_millions: u64,
    threads: usize,
    shard_list: &[usize],
    workers_list: &[usize],
) {
    let exe = std::env::current_exe().expect("current_exe");
    let run = |args: &[String]| -> String {
        eprintln!("→ ingest_perf {}", args.join(" "));
        let out = std::process::Command::new(&exe)
            .args(args)
            .arg("--threads")
            .arg(threads.to_string())
            .output()
            .expect("spawn phase subprocess");
        assert!(
            out.status.success(),
            "phase {:?} failed:\n{}",
            args,
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("phase stdout utf-8");
        let line = stdout
            .lines()
            .last()
            .expect("phase printed no JSON")
            .to_owned();
        eprintln!("  {line}");
        line
    };

    let mut results = Vec::new();
    for &m in stream_millions {
        results.push(run(&["stream".into(), m.to_string()]));
    }
    results.push(run(&["stream-batched".into(), 10.to_string()]));
    results.push(run(&["stream-cbt".into(), 10.to_string()]));
    results.push(run(&["stream-cbt-mmap".into(), 10.to_string()]));
    for &s in shard_list {
        results.push(run(&[
            "stream-shards".into(),
            10.to_string(),
            "--shards".into(),
            s.to_string(),
        ]));
    }
    for &m in stream_millions {
        results.push(run(&["stream-bounded".into(), m.to_string()]));
    }
    for &m in batch_millions {
        results.push(run(&["batch".into(), m.to_string()]));
    }
    results.push(run(&[
        "analyze-partitioned".into(),
        10.to_string(),
        "--workers".into(),
        workers_list
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(","),
    ]));
    results.push(run(&["decode".into(), decode_millions.to_string()]));

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut f = std::fs::File::create("BENCH_ingest.json").expect("create BENCH_ingest.json");
    writeln!(
        f,
        "{{\n  \"bench\": \"ingest\",\n  \"cores\": {cores},\n  \"results\": [\n    {}\n  ]\n}}",
        results.join(",\n    ")
    )
    .expect("write BENCH_ingest.json");
    eprintln!("wrote BENCH_ingest.json");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = std::thread::available_parallelism().map_or(1, |c| c.get());
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let value = args.get(i + 1).and_then(|s| s.parse().ok());
        match value {
            Some(n) if n >= 1 => {
                threads = n;
                args.drain(i..=i + 1);
            }
            _ => {
                eprintln!("--threads expects a positive integer");
                std::process::exit(2);
            }
        }
    }
    let mut shard_list: Vec<usize> = vec![1, 2, 4, 8];
    if let Some(i) = args.iter().position(|a| a == "--shards") {
        let parsed: Option<Vec<usize>> = args.get(i + 1).and_then(|list| {
            list.split(',')
                .map(|p| p.trim().parse::<usize>().ok().filter(|&n| n >= 1))
                .collect()
        });
        match parsed {
            Some(list) if !list.is_empty() => {
                shard_list = list;
                args.drain(i..=i + 1);
            }
            _ => {
                eprintln!("--shards expects a comma-separated list of positive integers");
                std::process::exit(2);
            }
        }
    }
    let mut workers_list: Vec<usize> = vec![1, 2, 4, 8];
    if let Some(i) = args.iter().position(|a| a == "--workers") {
        let parsed: Option<Vec<usize>> = args.get(i + 1).and_then(|list| {
            list.split(',')
                .map(|p| p.trim().parse::<usize>().ok().filter(|&n| n >= 1))
                .collect()
        });
        match parsed {
            Some(list) if !list.is_empty() => {
                workers_list = list;
                args.drain(i..=i + 1);
            }
            _ => {
                eprintln!("--workers expects a comma-separated list of positive integers");
                std::process::exit(2);
            }
        }
    }
    let millions = |i: usize, default: u64| -> u64 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    match args.first().map(String::as_str) {
        Some("stream") => phase_stream(millions(1, 10), false),
        Some("stream-batched") => phase_stream_batched(millions(1, 10)),
        Some("stream-cbt") => phase_stream_cbt(millions(1, 10)),
        Some("stream-cbt-mmap") => phase_stream_cbt_mmap(millions(1, 10)),
        Some("stream-shards") => phase_stream_shards(millions(1, 10), shard_list[0]),
        Some("stream-bounded") => phase_stream(millions(1, 10), true),
        Some("batch") => phase_batch(millions(1, 10)),
        Some("analyze-partitioned") => phase_analyze_partitioned(millions(1, 10), &workers_list),
        Some("decode") => phase_decode(millions(1, 2), threads),
        Some("smoke") => phase_smoke(),
        Some(other) => {
            eprintln!(
                "unknown phase {other:?}; expected stream|stream-batched|stream-cbt|\
                 stream-cbt-mmap|stream-shards|stream-bounded|batch|analyze-partitioned|\
                 decode|smoke"
            );
            std::process::exit(2);
        }
        None => orchestrate(
            &[2, 10, 20],
            &[10, 20],
            2,
            threads,
            &shard_list,
            &workers_list,
        ),
    }
}
