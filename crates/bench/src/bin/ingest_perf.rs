//! Ingest performance measurement harness.
//!
//! Produces the numbers recorded in `EXPERIMENTS.md` and
//! `BENCH_ingest.json`: chunked parallel decode throughput (MB/s,
//! records/s, 1 vs N threads) and end-to-end analyze throughput with
//! peak RSS, batch vs streaming.
//!
//! Peak RSS (`VmHWM` in `/proc/self/status`) is a process-lifetime
//! high-water mark, so the orchestrator re-execs itself with a phase
//! argument and each phase runs in a fresh subprocess:
//!
//! ```sh
//! cargo run --release -p cbs-bench --bin ingest_perf          # all phases
//! cargo run --release -p cbs-bench --bin ingest_perf stream 10 # one phase
//! ```
//!
//! Each phase prints a single-line JSON object; the orchestrator
//! assembles them into `BENCH_ingest.json`.

use std::io::Write as _;
use std::time::Instant;

use cbs_core::{StreamingWorkbench, Workbench};
use cbs_synth::presets::{self, CorpusConfig};
use cbs_trace::codec::alicloud::{AliCloudReader, AliCloudWriter};
use cbs_trace::{ParallelDecoder, Trace};

/// A corpus whose lazy stream comfortably exceeds the largest
/// `--stream` target so `.take(n)` yields exactly `n` requests.
fn big_corpus() -> cbs_synth::CorpusGenerator {
    let config = CorpusConfig::new(128, 4, 4242).with_intensity_scale(0.05);
    presets::alicloud_like(&config)
}

/// The same corpus with every address region clamped to 64 MiB, so the
/// aggregate working set saturates after a few million requests. Used
/// to show streaming RSS tracks *unique blocks*, not request count.
fn bounded_corpus() -> cbs_synth::CorpusGenerator {
    const REGION_CAP: u64 = 64 << 20;
    let profiles = big_corpus()
        .profiles()
        .iter()
        .map(|p| {
            let mut p = p.clone();
            p.read_spatial.region_len = p.read_spatial.region_len.min(REGION_CAP);
            p.write_spatial.region_len = p.write_spatial.region_len.min(REGION_CAP);
            if let Some(job) = &mut p.daily_rewrite {
                job.region_len = job.region_len.min(REGION_CAP);
            }
            p
        })
        .collect();
    cbs_synth::CorpusGenerator::new(profiles).expect("clamped profiles stay valid")
}

fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

/// Stream-analyze `millions`M requests without materializing them.
fn phase_stream(millions: u64, bounded: bool) {
    let n = (millions * 1_000_000) as usize;
    let generator = if bounded {
        bounded_corpus()
    } else {
        big_corpus()
    };
    let phase = if bounded {
        "stream_bounded_wss"
    } else {
        "stream"
    };
    let start = Instant::now();
    let mut session = StreamingWorkbench::new().start();
    for req in generator.stream().take(n) {
        session.observe(req);
    }
    let observed = session.observed();
    let volumes = session.finish().len();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(observed, n as u64, "corpus smaller than requested target");
    println!(
        "{{\"phase\":\"{phase}\",\"requests\":{observed},\"volumes\":{volumes},\
         \"seconds\":{secs:.3},\"requests_per_sec\":{:.0},\"peak_rss_kb\":{}}}",
        observed as f64 / secs,
        peak_rss_kb()
    );
}

/// Materialize the same `millions`M requests into a `Trace`, then
/// batch-analyze — the memory baseline the streaming path avoids.
fn phase_batch(millions: u64) {
    let n = (millions * 1_000_000) as usize;
    let start = Instant::now();
    let requests: Vec<_> = big_corpus().stream().take(n).collect();
    let trace = Trace::from_requests(requests);
    let analysis = Workbench::new(trace).analyze();
    let volumes = analysis.metrics().len();
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{{\"phase\":\"batch\",\"requests\":{n},\"volumes\":{volumes},\
         \"seconds\":{secs:.3},\"requests_per_sec\":{:.0},\"peak_rss_kb\":{}}}",
        n as f64 / secs,
        peak_rss_kb()
    );
}

/// Decode throughput over an in-memory CSV corpus: sequential reader
/// vs `ParallelDecoder` at 1 thread and at the core count.
fn phase_decode(millions: u64) {
    let n = (millions * 1_000_000) as usize;
    let mut csv = Vec::new();
    {
        let mut w = AliCloudWriter::new(&mut csv);
        for req in big_corpus().stream().take(n) {
            w.write_request(&req).unwrap();
        }
    }
    let bytes = csv.len() as u64;
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    let time = |f: &dyn Fn() -> u64| {
        // Best of 3: decode throughput, not allocator warm-up.
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            assert_eq!(f(), n as u64);
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };

    let seq = time(&|| {
        AliCloudReader::new(&csv[..]).fold(0u64, |acc, r| {
            r.unwrap();
            acc + 1
        })
    });
    let par = |threads: usize| {
        let decoder = ParallelDecoder::new().with_threads(threads);
        let csv = &csv;
        time(&move || {
            let mut total = 0u64;
            decoder
                .decode_alicloud(&csv[..], |batch| total += batch.len() as u64)
                .unwrap();
            total
        })
    };
    let par1 = par(1);
    let parn = par(cores);

    let mb = bytes as f64 / (1u64 << 20) as f64;
    println!(
        "{{\"phase\":\"decode\",\"records\":{n},\"bytes\":{bytes},\"n_threads\":{cores},\
         \"sequential\":{{\"seconds\":{seq:.3},\"mb_per_sec\":{:.1},\"records_per_sec\":{:.0}}},\
         \"parallel_1_thread\":{{\"seconds\":{par1:.3},\"mb_per_sec\":{:.1},\"records_per_sec\":{:.0}}},\
         \"parallel_n_threads\":{{\"seconds\":{parn:.3},\"mb_per_sec\":{:.1},\"records_per_sec\":{:.0}}},\
         \"speedup_vs_sequential\":{:.2},\"peak_rss_kb\":{}}}",
        mb / seq,
        n as f64 / seq,
        mb / par1,
        n as f64 / par1,
        mb / parn,
        n as f64 / parn,
        seq / parn,
        peak_rss_kb()
    );
}

/// Run each phase as a fresh subprocess (isolated `VmHWM`) and write
/// the collected JSON lines to `BENCH_ingest.json`.
fn orchestrate(stream_millions: &[u64], batch_millions: &[u64], decode_millions: u64) {
    let exe = std::env::current_exe().expect("current_exe");
    let run = |args: &[String]| -> String {
        eprintln!("→ ingest_perf {}", args.join(" "));
        let out = std::process::Command::new(&exe)
            .args(args)
            .output()
            .expect("spawn phase subprocess");
        assert!(
            out.status.success(),
            "phase {:?} failed:\n{}",
            args,
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("phase stdout utf-8");
        let line = stdout
            .lines()
            .last()
            .expect("phase printed no JSON")
            .to_owned();
        eprintln!("  {line}");
        line
    };

    let mut results = Vec::new();
    for &m in stream_millions {
        results.push(run(&["stream".into(), m.to_string()]));
    }
    for &m in stream_millions {
        results.push(run(&["stream-bounded".into(), m.to_string()]));
    }
    for &m in batch_millions {
        results.push(run(&["batch".into(), m.to_string()]));
    }
    results.push(run(&["decode".into(), decode_millions.to_string()]));

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut f = std::fs::File::create("BENCH_ingest.json").expect("create BENCH_ingest.json");
    writeln!(
        f,
        "{{\n  \"bench\": \"ingest\",\n  \"cores\": {cores},\n  \"results\": [\n    {}\n  ]\n}}",
        results.join(",\n    ")
    )
    .expect("write BENCH_ingest.json");
    eprintln!("wrote BENCH_ingest.json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let millions = |i: usize, default: u64| -> u64 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    match args.first().map(String::as_str) {
        Some("stream") => phase_stream(millions(1, 10), false),
        Some("stream-bounded") => phase_stream(millions(1, 10), true),
        Some("batch") => phase_batch(millions(1, 10)),
        Some("decode") => phase_decode(millions(1, 2)),
        Some(other) => {
            eprintln!("unknown phase {other:?}; expected stream|stream-bounded|batch|decode");
            std::process::exit(2);
        }
        None => orchestrate(&[2, 10, 20], &[10, 20], 2),
    }
}
