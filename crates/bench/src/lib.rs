//! Shared fixtures for the benchmark suite.
//!
//! The benches measure the *workbench* (generation, analysis, each
//! table/figure builder), so every group works over the same small,
//! seeded corpora built here. See `benches/experiments.rs` (one group
//! per paper table/figure), `benches/micro.rs` (substrate
//! micro-benchmarks), and `benches/ablations.rs` (design-choice
//! ablations from `DESIGN.md` §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cbs_core::{Analysis, Workbench};
use cbs_synth::presets::{self, CorpusConfig};
use cbs_trace::Trace;

/// A bench-sized AliCloud-like corpus (~100-200 K requests).
pub fn alicloud_trace() -> Trace {
    let config = CorpusConfig::new(16, 2, 4242).with_intensity_scale(0.002);
    presets::alicloud_like(&config).generate()
}

/// A bench-sized MSRC-like corpus.
pub fn msrc_trace() -> Trace {
    let config = CorpusConfig::new(12, 2, 4242).with_intensity_scale(0.008);
    presets::msrc_like(&config).generate()
}

/// The analyzed AliCloud-like corpus.
pub fn alicloud_analysis() -> Analysis {
    Workbench::new(alicloud_trace()).analyze()
}

/// The analyzed MSRC-like corpus.
pub fn msrc_analysis() -> Analysis {
    Workbench::new(msrc_trace()).analyze()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_non_trivial() {
        let t = alicloud_trace();
        assert!(t.request_count() > 10_000, "{}", t.request_count());
        let a = alicloud_analysis();
        assert!(!a.metrics().is_empty());
        let m = msrc_trace();
        assert!(m.request_count() > 10_000);
    }
}
