//! Substrate micro-benchmarks: codec parsing, cache policies, reuse
//! distances, histograms, and generation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cbs_cache::{Arc, CachePolicy, Clock, Fifo, Lfu, Lru, ReuseDistances};
use cbs_stats::LogHistogram;
use cbs_synth::presets::{self, CorpusConfig};
use cbs_trace::codec::alicloud;
use cbs_trace::{BlockId, MergeByTime};

/// Bounds every group's runtime for the single-core CI box: small
/// sample counts and short measurement windows — these benches exist to
/// catch regressions of 2x, not 2%.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
}

fn bench_codec(c: &mut Criterion) {
    let trace = cbs_bench::alicloud_trace();
    let lines: Vec<String> = trace
        .requests()
        .iter()
        .take(10_000)
        .map(alicloud::format_record)
        .collect();
    let mut group = c.benchmark_group("codec");
    configure(&mut group);
    group.throughput(criterion::Throughput::Elements(lines.len() as u64));
    group.bench_function("alicloud_parse_10k_records", |b| {
        b.iter(|| {
            for line in &lines {
                black_box(alicloud::parse_record(line).unwrap());
            }
        });
    });
    group.bench_function("alicloud_format_10k_records", |b| {
        let reqs: Vec<_> = trace.requests().iter().take(10_000).collect();
        b.iter(|| {
            for req in &reqs {
                black_box(alicloud::format_record(req));
            }
        });
    });
    group.finish();
}

fn access_pattern(n: usize) -> Vec<BlockId> {
    // zipf-ish synthetic pattern: mix of hot and cold blocks
    (0..n)
        .map(|i| {
            let x = (i * 2654435761) % 1000;
            BlockId::new(if x < 700 { x % 50 } else { x } as u64)
        })
        .collect()
}

fn bench_cache_policies(c: &mut Criterion) {
    let pattern = access_pattern(100_000);
    let mut group = c.benchmark_group("cache_policies");
    configure(&mut group);
    group.throughput(criterion::Throughput::Elements(pattern.len() as u64));
    group.bench_function("lru_100k_accesses", |b| {
        b.iter(|| {
            let mut cache = Lru::new(128);
            for &blk in &pattern {
                black_box(cache.access(blk));
            }
        });
    });
    group.bench_function("fifo_100k_accesses", |b| {
        b.iter(|| {
            let mut cache = Fifo::new(128);
            for &blk in &pattern {
                black_box(cache.access(blk));
            }
        });
    });
    group.bench_function("clock_100k_accesses", |b| {
        b.iter(|| {
            let mut cache = Clock::new(128);
            for &blk in &pattern {
                black_box(cache.access(blk));
            }
        });
    });
    group.bench_function("lfu_100k_accesses", |b| {
        b.iter(|| {
            let mut cache = Lfu::new(128);
            for &blk in &pattern {
                black_box(cache.access(blk));
            }
        });
    });
    group.bench_function("arc_100k_accesses", |b| {
        b.iter(|| {
            let mut cache = Arc::new(128);
            for &blk in &pattern {
                black_box(cache.access(blk));
            }
        });
    });
    group.bench_function("reuse_distance_100k_accesses", |b| {
        b.iter(|| {
            let mut rd = ReuseDistances::new();
            for &blk in &pattern {
                black_box(rd.access(blk));
            }
        });
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let values: Vec<u64> = (0..100_000u64)
        .map(|i| (i * 48271) % 10_000_000 + 1)
        .collect();
    let mut group = c.benchmark_group("stats");
    configure(&mut group);
    group.throughput(criterion::Throughput::Elements(values.len() as u64));
    group.bench_function("log_histogram_record_100k", |b| {
        b.iter(|| {
            let mut h = LogHistogram::with_default_precision();
            for &v in &values {
                h.record(v);
            }
            black_box(h)
        });
    });
    group.bench_function("log_histogram_quantiles", |b| {
        let mut h = LogHistogram::with_default_precision();
        for &v in &values {
            h.record(v);
        }
        b.iter(|| {
            for q in [0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
                black_box(h.quantile(q));
            }
        });
    });
    group.bench_function("exact_quantiles_100k", |b| {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        b.iter(|| {
            let q = cbs_stats::Quantiles::from_unsorted(floats.clone());
            black_box(q.paper_percentiles())
        });
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    configure(&mut group);
    group.bench_function("alicloud_like_corpus", |b| {
        let config = CorpusConfig::new(8, 1, 7).with_intensity_scale(0.002);
        b.iter(|| black_box(presets::alicloud_like(&config).generate()));
    });
    group.bench_function("merge_by_time", |b| {
        let trace = cbs_bench::alicloud_trace();
        let runs: Vec<Vec<_>> = trace.volumes().map(|v| v.requests().to_vec()).collect();
        b.iter(|| {
            let merged: usize =
                MergeByTime::new(runs.iter().map(|r| r.iter().copied()).collect()).count();
            black_box(merged)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_cache_policies,
    bench_stats,
    bench_generation
);
criterion_main!(benches);
