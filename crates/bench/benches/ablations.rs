//! Ablation benches for the design choices called out in `DESIGN.md`:
//! randomness window/threshold, block size, cache policy at the
//! Fig. 18 operating points, and quantile back-ends.
//!
//! These are *measurement* ablations: each variant runs the same
//! analysis with one knob changed, so the report shows both the cost
//! and (via eprintln at setup) the metric shift.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cbs_analysis::{analyze_trace, AnalysisConfig};
use cbs_cache::{policy_by_name, CacheSim, POLICY_NAMES};
use cbs_stats::{LogHistogram, Quantiles, Reservoir};
use cbs_trace::{BlockAccessColumn, BlockSize, RequestBatch};

/// Bounds every group's runtime for the single-core CI box: small
/// sample counts and short measurement windows — these benches exist to
/// catch regressions of 2x, not 2%.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
}

fn bench_randomness_knobs(c: &mut Criterion) {
    let trace = cbs_bench::alicloud_trace();
    let mut group = c.benchmark_group("ablation_randomness");
    configure(&mut group);
    for window in [8usize, 32, 128] {
        group.bench_function(format!("window_{window}"), |b| {
            let config = AnalysisConfig {
                randomness_window: window,
                ..AnalysisConfig::default()
            };
            b.iter(|| black_box(analyze_trace(&trace, &config)));
        });
    }
    for threshold_kib in [64u64, 128, 256] {
        group.bench_function(format!("threshold_{threshold_kib}k"), |b| {
            let config = AnalysisConfig {
                randomness_threshold: threshold_kib * 1024,
                ..AnalysisConfig::default()
            };
            b.iter(|| black_box(analyze_trace(&trace, &config)));
        });
    }
    group.finish();
}

fn bench_block_size(c: &mut Criterion) {
    let trace = cbs_bench::alicloud_trace();
    let mut group = c.benchmark_group("ablation_block_size");
    configure(&mut group);
    for kib in [4u32, 16, 64] {
        group.bench_function(format!("block_{kib}k"), |b| {
            let config = AnalysisConfig {
                block_size: BlockSize::new(kib * 1024).expect("power of two"),
                ..AnalysisConfig::default()
            };
            b.iter(|| black_box(analyze_trace(&trace, &config)));
        });
    }
    group.finish();
}

fn bench_policies_at_fig18_points(c: &mut Criterion) {
    // Simulate each policy at the Fig. 18 cache points on the busiest
    // volume of the corpus.
    let trace = cbs_bench::alicloud_trace();
    let config = AnalysisConfig::default();
    let metrics = analyze_trace(&trace, &config).expect("valid config");
    let busiest = metrics
        .iter()
        .max_by_key(|m| m.requests())
        .expect("non-empty corpus");
    let requests = trace
        .volume(busiest.id)
        .expect("metrics from trace")
        .requests()
        .to_vec();
    let capacity = busiest.cache_blocks_for_fraction(0.10).max(8);

    // Expand the request stream to its block/op column ONCE — every
    // policy variant then measures pure policy cost over the shared
    // column instead of re-walking `span_of` per policy (the sweep
    // engine's shared-expansion path).
    let batch = RequestBatch::from(requests.as_slice());
    let mut column = BlockAccessColumn::with_capacity(batch.len());
    batch.expand_blocks_into(config.block_size, &mut column);

    let mut group = c.benchmark_group("ablation_fig18_policies");
    configure(&mut group);
    group.throughput(criterion::Throughput::Elements(requests.len() as u64));
    for &name in POLICY_NAMES {
        group.bench_function(name, |b| {
            b.iter(|| {
                let policy = policy_by_name(name, capacity).expect("known policy");
                let mut sim = CacheSim::new(policy, config.block_size);
                sim.run_column(&column);
                black_box(sim.stats())
            });
        });
    }
    group.bench_function("belady_opt", |b| {
        b.iter(|| black_box(cbs_cache::simulate_opt(column.blocks(), capacity)));
    });
    group.bench_function("mrc_from_reuse_distances", |b| {
        // the analyzer's alternative: one pass yields *every* capacity
        b.iter(|| {
            let mut rd = cbs_cache::ReuseDistances::new();
            for (blk, _) in column.iter() {
                rd.access(blk);
            }
            black_box(rd.to_mrc().miss_ratio_at(capacity))
        });
    });
    group.finish();
}

fn bench_quantile_backends(c: &mut Criterion) {
    let values: Vec<u64> = (0..200_000u64)
        .map(|i| (i * 6364136223846793005) % 50_000_000 + 1)
        .collect();
    let mut group = c.benchmark_group("ablation_quantiles");
    configure(&mut group);
    group.throughput(criterion::Throughput::Elements(values.len() as u64));
    group.bench_function("exact_sorted", |b| {
        b.iter(|| {
            let q = Quantiles::from_unsorted(values.iter().map(|&v| v as f64).collect());
            black_box(q.median())
        });
    });
    group.bench_function("log_histogram", |b| {
        b.iter(|| {
            let mut h = LogHistogram::with_default_precision();
            for &v in &values {
                h.record(v);
            }
            black_box(h.quantile(0.5))
        });
    });
    group.bench_function("reservoir_4k", |b| {
        b.iter(|| {
            let mut r = Reservoir::new(4096, 11);
            for &v in &values {
                r.offer(v as f64);
            }
            black_box(r.to_quantiles().median())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_randomness_knobs,
    bench_block_size,
    bench_policies_at_fig18_points,
    bench_quantile_backends
);
criterion_main!(benches);
