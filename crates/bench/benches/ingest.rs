//! Ingest-path benchmarks: chunked parallel decode throughput (MB/s,
//! records/s) and end-to-end analyze throughput, batch vs streaming.
//!
//! Decode groups compare the sequential `AliCloudReader` against
//! `ParallelDecoder` at 1 thread (pipeline overhead) and at the
//! machine's core count (scaling). Analyze groups compare the
//! materialize-then-`Workbench::analyze` path against the sharded
//! one-pass `StreamingWorkbench`, fed either from the lazy corpus
//! stream or through the parallel decoder.
//!
//! Run `cargo run --release -p cbs-bench --bin ingest_perf` for the
//! larger-corpus numbers recorded in `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cbs_core::{StreamingWorkbench, Workbench};
use cbs_trace::codec::alicloud::{AliCloudReader, AliCloudWriter};
use cbs_trace::{ParallelDecoder, Trace};

/// Bounds every group's runtime for the single-core CI box.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
}

fn csv_fixture() -> (Vec<u8>, u64) {
    let trace = cbs_bench::alicloud_trace();
    let mut csv = Vec::new();
    let mut w = AliCloudWriter::new(&mut csv);
    for req in trace.requests() {
        w.write_request(req).unwrap();
    }
    (csv, trace.request_count() as u64)
}

fn bench_decode(c: &mut Criterion) {
    let (csv, records) = csv_fixture();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut group = c.benchmark_group("ingest_decode");
    configure(&mut group);
    group.throughput(Throughput::Bytes(csv.len() as u64));

    group.bench_function("sequential_reader", |b| {
        b.iter(|| {
            let n = AliCloudReader::new(&csv[..]).fold(0u64, |acc, r| {
                r.unwrap();
                acc + 1
            });
            assert_eq!(n, records);
            black_box(n)
        });
    });
    for threads in [1, cores] {
        let decoder = ParallelDecoder::new().with_threads(threads);
        group.bench_function(format!("parallel_{threads}_threads"), |b| {
            b.iter(|| {
                let mut n = 0u64;
                let stats = decoder
                    .decode_alicloud(&csv[..], |batch| n += batch.len() as u64)
                    .unwrap();
                assert_eq!(n, records);
                black_box(stats)
            });
        });
        if cores == 1 {
            break; // 1 and `cores` are the same configuration
        }
    }
    group.finish();
}

fn bench_analyze(c: &mut Criterion) {
    let (csv, records) = csv_fixture();
    let generator = {
        let config = cbs_synth::presets::CorpusConfig::new(16, 2, 4242).with_intensity_scale(0.002);
        cbs_synth::presets::alicloud_like(&config)
    };

    let mut group = c.benchmark_group("ingest_analyze");
    configure(&mut group);
    group.throughput(Throughput::Elements(records));

    // Batch: decode everything into a Trace, then analyze.
    group.bench_function("batch_decode_then_analyze", |b| {
        b.iter(|| {
            let trace: Trace = AliCloudReader::new(&csv[..])
                .collect::<Result<Vec<_>, _>>()
                .unwrap()
                .into_iter()
                .collect();
            black_box(Workbench::new(trace).analyze().metrics().len())
        });
    });

    // Streaming: parallel decode feeding the sharded analyzer; the
    // trace is never materialized.
    group.bench_function("streaming_decode_analyze", |b| {
        let decoder = ParallelDecoder::new();
        b.iter(|| {
            let mut session = StreamingWorkbench::new().start();
            decoder
                .decode_alicloud(&csv[..], |batch| session.observe_batch(batch))
                .unwrap();
            black_box(session.finish().len())
        });
    });

    // Batch from the synthetic generator (materialize, sort, analyze).
    group.bench_function("batch_generate_then_analyze", |b| {
        b.iter(|| {
            let trace = generator.generate();
            black_box(Workbench::new(trace).analyze().metrics().len())
        });
    });

    // Streaming straight off the lazy generator: O(volumes) memory.
    group.bench_function("streaming_generate_analyze", |b| {
        b.iter(|| black_box(StreamingWorkbench::new().analyze(generator.stream()).len()));
    });

    group.finish();
}

criterion_group!(benches, bench_decode, bench_analyze);
criterion_main!(benches);
