//! Ingest-path benchmarks: chunked parallel decode throughput (MB/s,
//! records/s) and end-to-end analyze throughput, batch vs streaming.
//!
//! Decode groups compare the sequential `AliCloudReader` against
//! `ParallelDecoder` at 1 thread (pipeline overhead) and at the
//! machine's core count (scaling). Analyze groups compare the
//! materialize-then-`Workbench::analyze` path against the sharded
//! one-pass `StreamingWorkbench`, fed either from the lazy corpus
//! stream or through the parallel decoder.
//!
//! Run `cargo run --release -p cbs-bench --bin ingest_perf` for the
//! larger-corpus numbers recorded in `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cbs_core::{StreamingWorkbench, Workbench};
use cbs_trace::codec::alicloud::{AliCloudReader, AliCloudWriter};
use cbs_trace::{CbtReader, CbtWriter, IoRequest, ParallelDecoder, Trace};

/// Bounds every group's runtime for the single-core CI box.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
}

fn csv_fixture() -> (Vec<u8>, u64) {
    let trace = cbs_bench::alicloud_trace();
    let mut csv = Vec::new();
    let mut w = AliCloudWriter::new(&mut csv);
    for req in trace.requests() {
        w.write_request(req).unwrap();
    }
    (csv, trace.request_count() as u64)
}

fn bench_decode(c: &mut Criterion) {
    let (csv, records) = csv_fixture();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut group = c.benchmark_group("ingest_decode");
    configure(&mut group);
    group.throughput(Throughput::Bytes(csv.len() as u64));

    group.bench_function("sequential_reader", |b| {
        b.iter(|| {
            let n = AliCloudReader::new(&csv[..]).fold(0u64, |acc, r| {
                r.unwrap();
                acc + 1
            });
            assert_eq!(n, records);
            black_box(n)
        });
    });
    for threads in [1, cores] {
        let decoder = ParallelDecoder::new().with_threads(threads);
        group.bench_function(format!("parallel_{threads}_threads"), |b| {
            b.iter(|| {
                let mut n = 0u64;
                let stats = decoder
                    .decode_alicloud(&csv[..], |batch| n += batch.len() as u64)
                    .unwrap();
                assert_eq!(n, records);
                black_box(stats)
            });
        });
        if cores == 1 {
            break; // 1 and `cores` are the same configuration
        }
    }
    // CBT re-ingest of the same records; throughput stays CSV-bytes so
    // the MB/s numbers are directly comparable ("csv-equivalent").
    let cbt = {
        let mut w = CbtWriter::new(Vec::new());
        for req in AliCloudReader::new(&csv[..]) {
            w.write_request(&req.unwrap()).unwrap();
        }
        w.finish().unwrap()
    };
    group.bench_function("cbt_reader", |b| {
        b.iter(|| {
            let mut reader = CbtReader::new(&cbt[..]);
            let mut n = 0u64;
            while let Some(batch) = reader.read_batch().unwrap() {
                n += batch.len() as u64;
            }
            assert_eq!(n, records);
            black_box(n)
        });
    });
    group.finish();
}

/// Sweeps the [`StreamingWorkbench`] tuning knobs one at a time around
/// the defaults; `DEFAULT_BATCH_SIZE` and `DEFAULT_CHANNEL_DEPTH` are
/// picked from this group's results (see their doc comments).
fn bench_streaming_tuning(c: &mut Criterion) {
    let requests: Vec<IoRequest> = cbs_bench::alicloud_trace().iter_time_ordered().collect();

    let mut group = c.benchmark_group("streaming_tuning");
    configure(&mut group);
    group.throughput(Throughput::Elements(requests.len() as u64));

    for batch_size in [512usize, 2048, 8192, 32768] {
        group.bench_function(format!("batch_size_{batch_size}"), |b| {
            b.iter(|| {
                let wb = StreamingWorkbench::new().with_batch_size(batch_size);
                black_box(wb.analyze(requests.iter().copied()).len())
            });
        });
    }
    for depth in [1usize, 2, 4, 8] {
        group.bench_function(format!("channel_depth_{depth}"), |b| {
            b.iter(|| {
                let wb = StreamingWorkbench::new().with_channel_depth(depth);
                black_box(wb.analyze(requests.iter().copied()).len())
            });
        });
    }
    group.finish();
}

fn bench_analyze(c: &mut Criterion) {
    let (csv, records) = csv_fixture();
    let generator = {
        let config = cbs_synth::presets::CorpusConfig::new(16, 2, 4242).with_intensity_scale(0.002);
        cbs_synth::presets::alicloud_like(&config)
    };

    let mut group = c.benchmark_group("ingest_analyze");
    configure(&mut group);
    group.throughput(Throughput::Elements(records));

    // Batch: decode everything into a Trace, then analyze.
    group.bench_function("batch_decode_then_analyze", |b| {
        b.iter(|| {
            let trace: Trace = AliCloudReader::new(&csv[..])
                .collect::<Result<Vec<_>, _>>()
                .unwrap()
                .into_iter()
                .collect();
            black_box(Workbench::new(trace).analyze().metrics().len())
        });
    });

    // Streaming: parallel decode feeding the sharded analyzer; the
    // trace is never materialized.
    group.bench_function("streaming_decode_analyze", |b| {
        let decoder = ParallelDecoder::new();
        b.iter(|| {
            let mut session = StreamingWorkbench::new().start();
            decoder
                .decode_alicloud(&csv[..], |batch| session.observe_batch(batch))
                .unwrap();
            black_box(session.finish().len())
        });
    });

    // Batch from the synthetic generator (materialize, sort, analyze).
    group.bench_function("batch_generate_then_analyze", |b| {
        b.iter(|| {
            let trace = generator.generate();
            black_box(Workbench::new(trace).analyze().metrics().len())
        });
    });

    // Streaming straight off the lazy generator: O(volumes) memory.
    group.bench_function("streaming_generate_analyze", |b| {
        b.iter(|| black_box(StreamingWorkbench::new().analyze(generator.stream()).len()));
    });

    group.finish();
}

criterion_group!(benches, bench_decode, bench_analyze, bench_streaming_tuning);
criterion_main!(benches);
