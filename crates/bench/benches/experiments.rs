//! One Criterion group per paper table/figure: the cost of computing
//! each artifact's data from the per-volume metrics (and, where the
//! artifact needs it, from the trace).
//!
//! The heavy lifting — the single-pass volume analysis — is measured
//! once in `analyze_corpus`; the per-figure builders then show what
//! each artifact adds on top.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cbs_bench::{alicloud_analysis, alicloud_trace};

/// Bounds every group's runtime for the single-core CI box: small
/// sample counts and short measurement windows — these benches exist to
/// catch regressions of 2x, not 2%.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
}

fn bench_analyze_corpus(c: &mut Criterion) {
    let trace = alicloud_trace();
    let mut group = c.benchmark_group("analyze_corpus");
    configure(&mut group);
    group.throughput(criterion::Throughput::Elements(trace.request_count() as u64));
    group.bench_function("single_pass_all_volumes", |b| {
        b.iter(|| {
            cbs_analysis::analyze_trace(black_box(&trace), &cbs_analysis::AnalysisConfig::default())
        });
    });
    group.finish();
}

fn bench_experiments(c: &mut Criterion) {
    let analysis = alicloud_analysis();

    let mut group = c.benchmark_group("experiments");
    configure(&mut group);
    group.bench_function("table1_basic", |b| {
        b.iter(|| black_box(analysis.totals()));
    });
    group.bench_function("fig2_sizes", |b| {
        b.iter(|| {
            (
                black_box(analysis.request_sizes()),
                black_box(analysis.mean_sizes()),
            )
        });
    });
    group.bench_function("fig3_active_days", |b| {
        b.iter(|| black_box(analysis.active_days()));
    });
    group.bench_function("fig4_wr_ratio", |b| {
        b.iter(|| black_box(analysis.write_read_ratios()));
    });
    group.bench_function("fig5_intensity", |b| {
        b.iter(|| black_box(analysis.intensity_series()));
    });
    group.bench_function("fig5_table2_overall_intensity", |b| {
        b.iter(|| black_box(analysis.overall_intensity()));
    });
    group.bench_function("fig6_burstiness", |b| {
        b.iter(|| black_box(analysis.burstiness()));
    });
    group.bench_function("fig7_interarrival", |b| {
        b.iter(|| black_box(analysis.interarrival_boxplots()));
    });
    group.bench_function("fig8_activeness", |b| {
        b.iter(|| {
            (
                black_box(analysis.activeness_series()),
                black_box(analysis.active_periods()),
            )
        });
    });
    group.bench_function("fig10_randomness", |b| {
        b.iter(|| {
            (
                black_box(analysis.randomness()),
                black_box(analysis.top_traffic(10)),
            )
        });
    });
    group.bench_function("fig11_aggregation", |b| {
        b.iter(|| black_box(analysis.aggregation()));
    });
    group.bench_function("fig12_rwmostly", |b| {
        b.iter(|| black_box(analysis.rw_mostly()));
    });
    group.bench_function("fig13_coverage", |b| {
        b.iter(|| black_box(analysis.update_coverage()));
    });
    group.bench_function("fig14_raw_waw", |b| {
        b.iter(|| black_box(analysis.adjacency()));
    });
    group.bench_function("fig16_update_intervals", |b| {
        b.iter(|| {
            (
                black_box(analysis.update_intervals()),
                black_box(analysis.update_interval_boxplots()),
                black_box(analysis.interval_groups()),
            )
        });
    });
    group.bench_function("fig18_lru", |b| {
        b.iter(|| black_box(analysis.lru_miss_ratios()));
    });
    group.finish();
}

criterion_group!(benches, bench_analyze_corpus, bench_experiments);
criterion_main!(benches);
