//! Workspace self-checks: the shipped source tree must stay lint
//! clean, every inline suppression must be justified, and the 15 paper
//! findings (F1-F15) must all be traceable to a findings module.
//!
//! These tests walk the real `crates/` tree plus the repository-root
//! `tests/` directory (resolved relative to this crate's manifest), so
//! they gate the same source set CI lints via `scripts/check.sh` —
//! root-level integration tests carry the cross-crate associativity
//! evidence `mergeable-audit` consults.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

use cbs_lint::engine::lint_paths;
use cbs_lint::suppress;

/// The workspace `crates/` directory, from this crate's manifest dir.
/// Canonicalized so crate attribution never sees the `../..` hop.
fn crates_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../crates")
        .canonicalize()
        .expect("crates dir exists")
}

/// The repository-root `tests/` directory.
fn tests_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests")
        .canonicalize()
        .expect("tests dir exists")
}

#[test]
fn workspace_is_lint_clean() {
    let run = lint_paths(&[crates_dir(), tests_dir()]).expect("workspace sources readable");
    assert!(
        run.files.len() > 100,
        "walk looks wrong: only {} files scanned",
        run.files.len()
    );
    let rendered: Vec<String> = run
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}:{} [{}] {}", d.file, d.line, d.col, d.rule, d.message))
        .collect();
    assert!(
        run.diagnostics.is_empty(),
        "workspace is not lint clean:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn cli_self_check_exits_zero_with_empty_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_cbs-lint"))
        .arg("--json")
        .arg(crates_dir())
        .arg(tests_dir())
        .output()
        .expect("spawn cbs-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "cbs-lint exited {:?}:\n{stdout}\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(stdout.trim(), "[]", "expected an empty diagnostics array");
}

#[test]
fn every_suppression_carries_a_justification() {
    let run = lint_paths(&[crates_dir()]).expect("workspace sources readable");
    let mut total = 0usize;
    for file in &run.files {
        let mut malformed = Vec::new();
        for s in suppress::collect(file, &mut malformed) {
            assert!(
                !s.justification.is_empty(),
                "{}:{} allows {} without a `-- <why>` justification",
                file.path,
                s.comment_line,
                s.rules.join(", ")
            );
            total += 1;
        }
        assert!(malformed.is_empty(), "{}: {malformed:?}", file.path);
    }
    // The workspace legitimately carries a handful of justified allows
    // (documented in DESIGN.md); zero would mean collection is broken.
    assert!(
        total >= 1,
        "no suppressions found anywhere — parser broken?"
    );
}

/// Word-bounded `F<n>` citations in a doc-comment chunk, mirroring the
/// `finding-traceability` rule's notion of a citation.
fn cited_ids(doc_text: &str) -> BTreeSet<u32> {
    doc_text
        .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .filter_map(|w| w.strip_prefix('F'))
        .filter(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
        .filter_map(|d| d.parse().ok())
        .filter(|n| (1..=15).contains(n))
        .collect()
}

#[test]
fn all_fifteen_findings_are_cited_in_findings_modules() {
    let findings = crates_dir().join("analysis/src/findings");
    let run = lint_paths(&[findings]).expect("findings sources readable");
    assert!(!run.files.is_empty(), "findings directory missing?");
    let mut covered: BTreeSet<u32> = BTreeSet::new();
    for file in &run.files {
        for tok in file.tokens.iter().filter(|t| t.is_doc()) {
            covered.extend(cited_ids(&tok.text));
        }
    }
    let missing: Vec<String> = (1..=15u32)
        .filter(|id| !covered.contains(id))
        .map(|id| format!("F{id}"))
        .collect();
    assert!(
        missing.is_empty(),
        "paper findings {} are cited by no module under crates/analysis/src/findings",
        missing.join(", ")
    );
}
