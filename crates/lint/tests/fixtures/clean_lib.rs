//! Tricky-but-clean fixture: every construct below is a decoy the
//! lexer must see through. Linting this file yields zero diagnostics.

/// Raw strings with `#` guards swallow quotes and would-be violations.
pub fn raw_strings() -> (&'static str, &'static [u8]) {
    let s = r#"one " quote, .unwrap() and panic!("x") inside"#;
    let b = br##"an embedded "# does not end the literal"##;
    (s, b)
}

/// Raw identifiers are idents, not the start of a raw string.
pub fn raw_ident() -> u32 {
    let r#type = 7;
    r#type
}

/// Char literals (with escapes) lex apart from lifetimes.
pub fn chars_vs_lifetimes<'r>(x: &'r [char]) -> Option<&'r char> {
    let quote = '\'';
    let newline = '\n';
    x.iter().find(|&&c| c == quote || c == newline)
}

/// Epsilon compare, float ordering, and integer equality are all fine.
pub fn float_math(x: f64) -> bool {
    (x - 1.0).abs() < 1e-9 && x >= 0.5 && (x as u64) == 1
}

/// `unwrap_or*` is not `unwrap`; `sync_channel` is not `channel`.
pub fn adjacent_names(v: Option<u32>) -> u32 {
    let (tx, _rx) = std::sync::mpsc::sync_channel::<u32>(4);
    drop(tx);
    v.unwrap_or_default().max(v.unwrap_or(3))
}
