//! Fixture: `atomic-ordering-audit` — one bare `Ordering::*` site
//! (must fire) and one waved through by a justified suppression.

use std::sync::atomic::{AtomicU64, Ordering};

fn bare(cell: &AtomicU64) -> u64 {
    cell.load(Ordering::Relaxed)
}

fn waved(cell: &AtomicU64) {
    // cbs-lint: allow(atomic-ordering-audit) -- fixture: justification lives in the caller's protocol doc
    cell.store(0, Ordering::SeqCst);
}
