//! Deliberately dirty fixture: real violations mixed with lexer decoys
//! that must NOT fire. `rule_fixtures.rs` pins the exact diagnostic
//! set, so keep the layout stable.

fn violations(input: Option<u32>) -> u32 {
    let s = r##"decoy: .unwrap() and panic!("quoted") stay inside the raw string"##;
    /* block comments nest: /* .unwrap() */ panic!("still one comment") */
    let n = input.unwrap();
    let m = input.expect("fixture");
    if n as f64 == 0.5 {
        panic!("boom");
    }
    let _ = s;
    n + m
}

fn lifetimes_are_not_chars<'a>(x: &'a str) -> (&'a str, char) {
    (x, '\'')
}

fn unbounded() {
    let (_tx, _rx) = std::sync::mpsc::channel::<u32>();
}

/// Decoy: `Instant` in docs and comments never fires.
fn adhoc_timing() -> u64 {
    // decoy: Instant in a comment
    let clock = std::time::Instant::now();
    clock.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = Some(1).unwrap();
        assert!(v == 1);
    }
}
