//! Suppression-behavior fixture: a justified allow, an unjustified
//! allow, an unused allow, a doc-comment decoy, and a malformed marker.

fn good(input: Option<u32>) -> u32 {
    // cbs-lint: allow(no-unwrap-in-lib) -- fixture: caller guarantees Some
    input.unwrap()
}

fn unjustified(input: Option<u32>) -> u32 {
    input.unwrap() // cbs-lint: allow(no-unwrap-in-lib)
}

fn unused() -> u32 {
    // cbs-lint: allow(no-panic-in-lib) -- fixture: nothing below panics
    42
}

/// Doc comments that *mention* `cbs-lint: allow(no-float-eq)` are
/// descriptions, not suppressions.
fn doc_mention(x: f64) -> bool {
    x == 0.25
}

fn malformed() {
    // cbs-lint: allow()
}
