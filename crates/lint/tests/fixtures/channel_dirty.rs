//! Fixture: `channel-discipline` — one dropped send result (must
//! fire), one discarded send waved through by a justified suppression,
//! and a constructed channel whose sends are visibly handled.

use std::sync::mpsc::{Receiver, SyncSender};

fn dropped(tx: &SyncSender<u32>) {
    tx.send(1);
}

fn waved(tx: &SyncSender<u32>) {
    // cbs-lint: allow(channel-discipline) -- fixture: the receiver outlives every sender by construction
    tx.send(2).ok();
}

fn fed() -> Option<u32> {
    let (tx, rx) = std::sync::mpsc::sync_channel(1);
    if tx.send(3).is_err() {
        return None;
    }
    rx.recv().ok()
}
