//! Fixture-driven integration tests: whole files with known violations
//! (and known decoys) run through the full engine — lexer, rules, and
//! suppression handling together, the way `cbs-lint` runs them.
//!
//! The fixture sources live under `tests/fixtures/` (a directory the
//! walker deliberately skips, so the workspace self-check never trips
//! over their intentional violations) and are linted here under
//! pretend library paths.

use cbs_lint::{lint_files, Diagnostic, LintRun, SourceFile};

/// Lints one fixture under a pretend path.
fn lint_fixture(path: &str, text: &str) -> LintRun {
    lint_files(vec![SourceFile::from_text(path, text)])
}

/// Sorted rule names of a run's diagnostics.
fn rules_of(run: &LintRun) -> Vec<&str> {
    let mut rules: Vec<&str> = run.diagnostics.iter().map(|d| d.rule).collect();
    rules.sort_unstable();
    rules
}

/// The diagnostic for `rule`, asserting there is exactly one.
fn the<'a>(run: &'a LintRun, rule: &str) -> &'a Diagnostic {
    let hits: Vec<&Diagnostic> = run.diagnostics.iter().filter(|d| d.rule == rule).collect();
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one {rule}: {:?}",
        run.diagnostics
    );
    hits[0]
}

#[test]
fn dirty_fixture_reports_exactly_the_planted_violations() {
    let run = lint_fixture(
        "crates/core/src/dirty.rs",
        include_str!("fixtures/dirty_lib.rs"),
    );
    assert_eq!(
        rules_of(&run),
        vec![
            "bounded-channel",
            "no-adhoc-timing",
            "no-float-eq",
            "no-panic-in-lib",
            "no-unwrap-in-lib",
            "no-unwrap-in-lib",
        ],
        "{:?}",
        run.diagnostics
    );

    // Each diagnostic lands on the line that was planted, never on a
    // decoy (raw string, nested block comment, test module).
    let unwrap_lines: Vec<&str> = run
        .diagnostics
        .iter()
        .filter(|d| d.rule == "no-unwrap-in-lib")
        .map(|d| run.snippet(d).expect("snippet"))
        .collect();
    assert!(
        unwrap_lines[0].contains("input.unwrap()"),
        "{unwrap_lines:?}"
    );
    assert!(unwrap_lines[1].contains("input.expect"), "{unwrap_lines:?}");
    assert!(run
        .snippet(the(&run, "no-panic-in-lib"))
        .expect("snippet")
        .contains("panic!(\"boom\")"));
    assert!(run
        .snippet(the(&run, "no-float-eq"))
        .expect("snippet")
        .contains("== 0.5"));
    assert!(run
        .snippet(the(&run, "bounded-channel"))
        .expect("snippet")
        .contains("mpsc::channel"));
    assert!(run
        .snippet(the(&run, "no-adhoc-timing"))
        .expect("snippet")
        .contains("Instant::now"));
    for d in &run.diagnostics {
        let line = run.snippet(d).expect("snippet");
        assert!(!line.contains("decoy"), "fired inside a raw string: {d:?}");
        assert!(
            !line.contains("one comment"),
            "fired inside a block comment: {d:?}"
        );
    }
}

#[test]
fn dirty_fixture_is_exempt_under_test_and_bin_paths() {
    let text = include_str!("fixtures/dirty_lib.rs");
    for path in ["crates/core/tests/dirty.rs", "crates/core/src/bin/dirty.rs"] {
        let run = lint_fixture(path, text);
        assert!(run.diagnostics.is_empty(), "{path}: {:?}", run.diagnostics);
    }
}

#[test]
fn suppression_fixture_enforces_justification_and_liveness() {
    let run = lint_fixture(
        "crates/synth/src/suppressed.rs",
        include_str!("fixtures/suppressed_lib.rs"),
    );
    assert_eq!(
        rules_of(&run),
        vec![
            "malformed-suppression",
            "no-float-eq",
            "suppression-justification",
            "unused-suppression",
        ],
        "{:?}",
        run.diagnostics
    );

    // The justified allow suppressed its unwrap; the unjustified one
    // suppressed too (no no-unwrap diagnostic survives) but is itself
    // reported.
    assert!(rules_of(&run).iter().all(|r| *r != "no-unwrap-in-lib"));
    let unjustified = the(&run, "suppression-justification");
    assert!(
        run.snippet(unjustified)
            .expect("snippet")
            .contains("fn unjustified")
            || run
                .snippet(unjustified)
                .expect("snippet")
                .contains("input.unwrap()"),
        "justification diagnostic points at the suppression comment: {unjustified:?}"
    );
    let unused = the(&run, "unused-suppression");
    assert!(unused.message.contains("no-panic-in-lib"), "{unused:?}");
    // The doc-comment mention of an allow is not a suppression, so the
    // float comparison under it still fires.
    assert!(run
        .snippet(the(&run, "no-float-eq"))
        .expect("snippet")
        .contains("== 0.25"));
}

#[test]
fn clean_fixture_is_silent_under_the_strictest_path() {
    // `crates/core/src/` puts the file in scope of every path-scoped
    // rule at once (pub-item-docs, bounded-channel, the lib-code set).
    let run = lint_fixture(
        "crates/core/src/clean.rs",
        include_str!("fixtures/clean_lib.rs"),
    );
    assert!(run.diagnostics.is_empty(), "{:?}", run.diagnostics);
}

#[test]
fn crate_roots_must_forbid_unsafe() {
    let run = lint_fixture("crates/demo/src/lib.rs", "//! Docs.\npub fn f() {}\n");
    assert_eq!(the(&run, "forbid-unsafe-header").line, 1);

    let run = lint_fixture(
        "crates/demo/src/lib.rs",
        "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}\n",
    );
    assert!(run.diagnostics.is_empty(), "{:?}", run.diagnostics);
}

#[test]
fn findings_modules_must_cite_and_cover() {
    // A findings module with no citation fires per-file; partial
    // coverage across the set fires once at workspace level.
    let run = lint_files(vec![
        SourceFile::from_text(
            "crates/analysis/src/findings/mod.rs",
            "//! Builders for F1, F2, F3, F4, F5, F6, F7, F8, F9, F10, F11, F12, F13, F14.\n",
        ),
        SourceFile::from_text(
            "crates/analysis/src/findings/orphan.rs",
            "//! No citation here.\n",
        ),
    ]);
    assert_eq!(
        rules_of(&run),
        vec!["finding-traceability", "finding-traceability"]
    );
    let coverage = run
        .diagnostics
        .iter()
        .find(|d| d.message.contains("cited by no findings module"))
        .expect("coverage diagnostic");
    assert!(coverage.message.contains("F15"), "{coverage:?}");
    assert!(!coverage.message.contains("F14"), "{coverage:?}");
}
