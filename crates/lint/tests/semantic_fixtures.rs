//! Fixture tests for the v2 semantic rules (CBS-L09…L13): each rule
//! fires on a planted violation AND honors one justified suppression,
//! proving the engine's suppression pass covers index- and
//! workspace-level diagnostics, not just per-file ones.
//!
//! Single-file rules lint fixture files from `tests/fixtures/`;
//! cross-file rules build their multi-file sets inline (the registry
//! and the emitting crate genuinely live in different files).

use cbs_lint::{lint_files, Diagnostic, LintRun, SourceFile};

/// Lints one fixture under a pretend path.
fn lint_fixture(path: &str, text: &str) -> LintRun {
    lint_files(vec![SourceFile::from_text(path, text)])
}

/// Sorted rule names of a run's diagnostics.
fn rules_of(run: &LintRun) -> Vec<&str> {
    let mut rules: Vec<&str> = run.diagnostics.iter().map(|d| d.rule).collect();
    rules.sort_unstable();
    rules
}

/// The diagnostic for `rule`, asserting there is exactly one.
fn the<'a>(run: &'a LintRun, rule: &str) -> &'a Diagnostic {
    let hits: Vec<&Diagnostic> = run.diagnostics.iter().filter(|d| d.rule == rule).collect();
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one {rule}: {:?}",
        run.diagnostics
    );
    hits[0]
}

#[test]
fn atomic_ordering_fixture_fires_once_and_honors_suppression() {
    let run = lint_fixture(
        "crates/obs/src/ordering_dirty.rs",
        include_str!("fixtures/ordering_dirty.rs"),
    );
    assert_eq!(
        rules_of(&run),
        vec!["atomic-ordering-audit"],
        "{:?}",
        run.diagnostics
    );
    let d = the(&run, "atomic-ordering-audit");
    assert!(d.message.contains("Relaxed"), "{d:?}");
    assert!(
        run.snippet(d).expect("snippet").contains("cell.load"),
        "fires on the bare site, not the suppressed SeqCst store"
    );
}

#[test]
fn channel_discipline_fixture_fires_once_and_honors_suppression() {
    let run = lint_fixture(
        "crates/core/src/channel_dirty.rs",
        include_str!("fixtures/channel_dirty.rs"),
    );
    assert_eq!(
        rules_of(&run),
        vec!["channel-discipline"],
        "{:?}",
        run.diagnostics
    );
    let d = the(&run, "channel-discipline");
    assert!(d.message.contains("dropped"), "{d:?}");
    assert!(
        run.snippet(d).expect("snippet").contains("tx.send(1)"),
        "fires on the dropped send; the .ok() misuse stays suppressed"
    );
}

#[test]
fn simd_twin_fixture_fires_once_and_honors_suppression() {
    let kernels = SourceFile::from_text(
        "crates/analysis/src/simd_dirty.rs",
        "\
#[target_feature(enable = \"avx2\")]
pub unsafe fn lonely_avx2(p: *const u8) -> u64 {
    0
}

#[target_feature(enable = \"avx2\")]
// cbs-lint: allow(simd-twin-parity) -- fixture: the twin lives in a sibling crate this scan cannot see
pub unsafe fn waved_avx2(p: *const u8) -> u64 {
    0
}
",
    );
    let run = lint_files(vec![kernels]);
    assert_eq!(
        rules_of(&run),
        vec!["simd-twin-parity"],
        "{:?}",
        run.diagnostics
    );
    let d = the(&run, "simd-twin-parity");
    assert!(d.message.contains("lonely_scalar"), "{d:?}");
}

#[test]
fn metric_registry_fixture_fires_once_and_honors_suppression() {
    let names = SourceFile::from_text(
        "crates/obs/src/names.rs",
        "\
/// Fixture registry.
pub const METRIC_NAMES: &[(&str, &str)] = &[
    (\"fix.ok\", \"a documented, emitted metric\"),
];
",
    );
    let emitter = SourceFile::from_text(
        "crates/core/src/emit_dirty.rs",
        "\
fn record(r: &Registry) {
    r.counter(\"fix.ok\");
    r.counter(\"fix.rogue\");
    // cbs-lint: allow(obs-metric-registry) -- fixture: registry migration lands in the next commit
    r.counter(\"fix.waved\");
}
",
    );
    let run = lint_files(vec![names, emitter]);
    assert_eq!(
        rules_of(&run),
        vec!["obs-metric-registry"],
        "{:?}",
        run.diagnostics
    );
    let d = the(&run, "obs-metric-registry");
    assert!(d.message.contains("fix.rogue"), "{d:?}");
}

#[test]
fn mergeable_fixture_fires_once_and_honors_suppression() {
    let lib = SourceFile::from_text(
        "crates/stats/src/merge_dirty.rs",
        "\
/// Per-shard partial summary. MERGEABLE: totals add.
struct Partial {
    total: u64,
}

/// Another partial. MERGEABLE: totals add.
// cbs-lint: allow(mergeable-audit) -- fixture: merge arrives with the ROADMAP item 1 fan-out
struct Waved {
    total: u64,
}
",
    );
    let run = lint_files(vec![lib]);
    assert_eq!(
        rules_of(&run),
        vec!["mergeable-audit"],
        "{:?}",
        run.diagnostics
    );
    let d = the(&run, "mergeable-audit");
    assert!(d.message.contains("Partial"), "{d:?}");
    assert!(d.message.contains("defines `merge`"), "{d:?}");
}

#[test]
fn new_rule_diagnostics_carry_stable_ids_in_json() {
    let run = lint_fixture(
        "crates/obs/src/ordering_dirty.rs",
        include_str!("fixtures/ordering_dirty.rs"),
    );
    let json = cbs_lint::diag::to_json_array(&run.diagnostics);
    assert!(json.contains("\"id\":\"CBS-L09\""), "{json}");
}
