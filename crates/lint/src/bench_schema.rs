//! Schema validation for `BENCH_*.json` perf artifacts.
//!
//! The bench harnesses (`ingest_perf`, `cache_perf`) append result
//! rows over time; EXPERIMENTS.md and external tooling read them.
//! Nothing previously pinned their shape, so a refactor could rename
//! `requests_per_sec` or change `seconds` to a string and every
//! downstream consumer would drift silently. This module is the pin:
//! a dependency-free JSON parser plus a strict whitelist of known
//! fields and their types. Unknown fields are violations by design —
//! adding a bench column means adding it here, which is the review
//! hook.
//!
//! Driven by `cbs-lint --check-bench FILE...` (exit 1 on violations,
//! 2 on unparseable JSON) and wired into `scripts/check.sh`.

/// A parsed JSON value. Numbers remember whether they were written as
/// integers, because the schema distinguishes counts from ratios.
#[derive(Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; `is_int` when written without `.`/exponent.
    Num {
        /// The numeric value.
        value: f64,
        /// Written as an integer literal.
        is_int: bool,
    },
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num { is_int: true, .. } => "int",
            Json::Num { is_int: false, .. } => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Expected type of a schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Integer literal.
    Int,
    /// Float (an integer literal is accepted — JSON writers drop
    /// trailing `.0`).
    Float,
    /// String.
    Str,
    /// Boolean.
    Bool,
    /// Array (element shape not pinned).
    Arr,
    /// Object (nested shape not pinned).
    Obj,
}

impl Ty {
    fn admits(self, v: &Json) -> bool {
        match self {
            Ty::Int => matches!(v, Json::Num { is_int: true, .. }),
            Ty::Float => matches!(v, Json::Num { .. }),
            Ty::Str => matches!(v, Json::Str(_)),
            Ty::Bool => matches!(v, Json::Bool(_)),
            Ty::Arr => matches!(v, Json::Arr(_)),
            Ty::Obj => matches!(v, Json::Obj(_)),
        }
    }
}

/// Top-level `BENCH_*.json` fields. All required.
const TOP_FIELDS: &[(&str, Ty)] = &[("bench", Ty::Str), ("cores", Ty::Int), ("results", Ty::Arr)];

/// Known result-row fields across every bench. A row carries a subset
/// (keyed by `phase`, which is required); an unknown field is a
/// violation — extend this table when a harness grows a column. A
/// field lists every type it may legally carry: most admit exactly
/// one, but e.g. `lanes` is an array in `cache_perf` sweep rows and a
/// lane count (integer) in `replay_perf` lane-curve rows.
const RESULT_FIELDS: &[(&str, &[Ty])] = &[
    ("accesses", &[Ty::Int]),
    ("achieved_offered_ratio", &[Ty::Float]),
    ("achieved_rps", &[Ty::Float]),
    ("backend", &[Ty::Str]),
    ("backpressure_nanos", &[Ty::Int]),
    ("bytes", &[Ty::Int]),
    ("cbt", &[Ty::Obj]),
    ("cbt_bytes", &[Ty::Int]),
    ("cbt_mmap", &[Ty::Obj]),
    ("cbt_slice", &[Ty::Obj]),
    ("exact_sweep_speedup", &[Ty::Float]),
    ("expand_nanos", &[Ty::Int]),
    ("grid", &[Ty::Arr]),
    ("grids_bit_identical", &[Ty::Bool]),
    ("imbalance", &[Ty::Float]),
    ("issue_lag", &[Ty::Obj]),
    ("lanes", &[Ty::Arr, Ty::Int]),
    ("merge_overhead_frac", &[Ty::Float]),
    ("metrics", &[Ty::Obj]),
    ("n_threads", &[Ty::Int]),
    ("offered_nanos", &[Ty::Int]),
    ("offered_rps", &[Ty::Float]),
    ("pair_seconds", &[Ty::Arr]),
    ("pairs", &[Ty::Int]),
    ("parallel_1_thread", &[Ty::Obj]),
    ("peak_rss_kb", &[Ty::Int]),
    ("per_lane_lag", &[Ty::Arr]),
    ("phase", &[Ty::Str]),
    ("rate_multiplier", &[Ty::Float]),
    ("rates", &[Ty::Arr]),
    ("reanalysis_identical", &[Ty::Bool]),
    ("records", &[Ty::Int]),
    ("remap", &[Ty::Str]),
    ("requests", &[Ty::Int]),
    ("requests_per_sec", &[Ty::Int]),
    ("sample_rate", &[Ty::Float]),
    ("sampled_accesses", &[Ty::Int]),
    ("sampled_fraction", &[Ty::Float]),
    ("sampled_sweep_speedup", &[Ty::Float]),
    ("seconds", &[Ty::Float]),
    ("sequential", &[Ty::Obj]),
    ("sequential_seconds", &[Ty::Float]),
    ("speedup_4_vs_1", &[Ty::Float]),
    ("shard_requests", &[Ty::Arr]),
    ("shards", &[Ty::Int]),
    ("stages", &[Ty::Obj]),
    ("verdicts_identical", &[Ty::Bool]),
    ("volumes", &[Ty::Int]),
    ("wall_nanos", &[Ty::Int]),
    ("workers_curve", &[Ty::Arr]),
];

/// Validates one `BENCH_*.json` document.
///
/// `Err` means the text is not valid JSON (an internal/usage failure:
/// exit 2); `Ok(violations)` lists schema violations (exit 1 when
/// non-empty).
pub fn validate(text: &str) -> Result<Vec<String>, String> {
    let doc = parse(text)?;
    let mut out = Vec::new();
    let Json::Obj(_) = doc else {
        out.push(format!(
            "top level must be an object, got {}",
            doc.type_name()
        ));
        return Ok(out);
    };
    for &(name, ty) in TOP_FIELDS {
        match doc.get(name) {
            None => out.push(format!("missing required top-level field `{name}`")),
            Some(v) if !ty.admits(v) => out.push(format!(
                "top-level `{name}` must be {ty:?}, got {}",
                v.type_name()
            )),
            Some(_) => {}
        }
    }
    if let Json::Obj(fields) = &doc {
        for (k, _) in fields {
            if !TOP_FIELDS.iter().any(|(n, _)| n == k) {
                out.push(format!("unknown top-level field `{k}`"));
            }
        }
    }
    let Some(Json::Arr(rows)) = doc.get("results") else {
        return Ok(out);
    };
    for (i, row) in rows.iter().enumerate() {
        let Json::Obj(fields) = row else {
            out.push(format!(
                "results[{i}] must be an object, got {}",
                row.type_name()
            ));
            continue;
        };
        if row.get("phase").is_none() {
            out.push(format!("results[{i}] is missing required field `phase`"));
        }
        for (k, v) in fields {
            match RESULT_FIELDS.iter().find(|(n, _)| n == k) {
                None => out.push(format!(
                    "results[{i}] has unknown field `{k}` — extend RESULT_FIELDS \
                     in crates/lint/src/bench_schema.rs if this column is intentional"
                )),
                Some(&(_, tys)) if !tys.iter().any(|ty| ty.admits(v)) => {
                    let expected = match tys {
                        [single] => format!("{single:?}"),
                        _ => format!("one of {tys:?}"),
                    };
                    out.push(format!(
                        "results[{i}].{k} must be {expected}, got {}",
                        v.type_name()
                    ));
                }
                Some(_) => {}
            }
        }
    }
    Ok(out)
}

/// Parses a JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let mut is_int = true;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_int = false;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = core::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    let value: f64 = text
        .parse()
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))?;
    Ok(Json::Num { value, is_int })
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    // Caller verified the opening quote.
    *pos += 1;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_owned())?;
                        let hex = core::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through bytewise.
                let ch_len = utf8_len(c);
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .ok_or("truncated UTF-8".to_owned())?;
                s.push_str(core::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trip_shapes() {
        let doc = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": true, "e": null}"#)
            .expect("parses");
        assert_eq!(
            doc.get("a"),
            Some(&Json::Arr(vec![
                Json::Num {
                    value: 1.0,
                    is_int: true
                },
                Json::Num {
                    value: 2.5,
                    is_int: false
                },
                Json::Num {
                    value: -3.0,
                    is_int: true
                },
            ]))
        );
        let b = doc.get("b").expect("b");
        assert_eq!(b.get("c"), Some(&Json::Str("x\ny".into())));
        assert_eq!(doc.get("d"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn valid_bench_doc_passes() {
        let text = r#"{
  "bench": "ingest_perf",
  "cores": 1,
  "results": [
    {"phase": "sequential", "seconds": 1.5, "requests": 1000, "requests_per_sec": 666},
    {"phase": "stream_shards", "shards": 4, "imbalance": 0.01, "shard_requests": [1, 2],
     "metrics": {"x": 1}, "stages": {}},
    {"phase": "analyze_partitioned", "requests": 1000, "volumes": 8,
     "sequential_seconds": 1.2,
     "workers_curve": [{"workers": 1, "seconds": 1.3, "requests_per_sec": 769}],
     "speedup_4_vs_1": 1.0, "merge_overhead_frac": 0.083,
     "verdicts_identical": true, "peak_rss_kb": 1024}
  ]
}"#;
        let v = validate(text).expect("parses");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn valid_replay_doc_passes() {
        let text = r#"{
  "bench": "replay",
  "cores": 8,
  "results": [
    {"phase": "replay", "backend": "null", "remap": "identity",
     "rate_multiplier": 1000.0, "requests": 1000000, "bytes": 4096000000,
     "volumes": 64, "wall_nanos": 3700000000, "offered_nanos": 3600000000,
     "offered_rps": 277777.8, "achieved_rps": 270270.3,
     "achieved_offered_ratio": 0.973,
     "issue_lag": {"p50": 800, "p99": 4100}, "seconds": 3.7,
     "reanalysis_identical": true, "peak_rss_kb": 120000},
    {"phase": "smoke", "backend": "null", "remap": "fanout:4",
     "rate_multiplier": 1000.0, "requests": 20000,
     "achieved_offered_ratio": 0.99, "reanalysis_identical": true}
  ]
}"#;
        let v = validate(text).expect("parses");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lane_curve_rows_pass_and_multi_type_fields_admit_each_shape() {
        // `lanes` is an array in cache_perf sweep rows but a lane
        // count in replay_perf lane-curve rows; both must validate.
        let text = r#"{
  "bench": "replay",
  "cores": 1,
  "results": [
    {"phase": "lanes", "backend": "direct", "remap": "identity",
     "rate_multiplier": 1000.0, "lanes": 4, "requests": 1000000,
     "backpressure_nanos": 120, "issue_lag": {"p50": 300, "p99": 900},
     "per_lane_lag": [{"lane": 0, "requests": 250000, "p99": 800}],
     "achieved_offered_ratio": 0.99, "reanalysis_identical": true},
    {"phase": "sweep", "lanes": [1, 2, 4]}
  ]
}"#;
        let v = validate(text).expect("parses");
        assert!(v.is_empty(), "{v:?}");
        // A shape outside the admitted set names every legal type.
        let text = r#"{"bench": "x", "cores": 1,
  "results": [{"phase": "p", "lanes": "four"}]}"#;
        let v = validate(text).expect("parses");
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("must be one of [Arr, Int]"), "{v:?}");
    }

    #[test]
    fn schema_violations_are_reported() {
        // Unknown field, wrong type, missing phase, missing top-level.
        let text = r#"{
  "bench": "x",
  "results": [
    {"phase": 12, "made_up_column": 1},
    {"seconds": "fast"}
  ]
}"#;
        let v = validate(text).expect("parses");
        assert!(
            v.iter()
                .any(|m| m.contains("missing required top-level field `cores`")),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|m| m.contains("unknown field `made_up_column`")),
            "{v:?}"
        );
        assert!(v.iter().any(|m| m.contains("phase must be Str")), "{v:?}");
        assert!(
            v.iter()
                .any(|m| m.contains("missing required field `phase`")),
            "{v:?}"
        );
        assert!(
            v.iter().any(|m| m.contains("seconds must be Float")),
            "{v:?}"
        );
    }

    #[test]
    fn int_accepted_where_float_expected() {
        let text = r#"{"bench": "x", "cores": 1, "results": [{"phase": "p", "seconds": 2}]}"#;
        assert!(validate(text).expect("parses").is_empty());
        // But not the reverse: a float where an int is pinned.
        let text = r#"{"bench": "x", "cores": 1, "results": [{"phase": "p", "requests": 2.5}]}"#;
        let v = validate(text).expect("parses");
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("must be Int"));
    }

    #[test]
    fn unparseable_is_err_not_violations() {
        assert!(validate("{nope}").is_err());
    }
}
