//! A small hand-rolled Rust lexer.
//!
//! The rule engine must never fire inside string literals or comments
//! (`let s = "don't unwrap()";` is not a violation), so every rule works
//! over this token stream instead of raw text. The lexer handles the
//! full set of Rust surface syntax that matters for that guarantee:
//!
//! * line comments (`//`), doc comments (`///`, `//!`);
//! * block comments with **nesting** (`/* /* */ */`), block doc
//!   comments (`/** .. */`, `/*! .. */`);
//! * string literals with escapes, byte strings, raw strings with any
//!   number of `#` guards (`r#".."#`), raw byte strings;
//! * char literals (including escapes) vs. lifetimes (`'a`, `'_`);
//! * raw identifiers (`r#fn`);
//! * numeric literals with underscores, base prefixes, exponents and
//!   type suffixes, classifying floats (`1.5`, `1e9`, `2f64`) so the
//!   float-comparison rule can see operand types;
//! * compound operators the rules care about (`==`, `!=`, `::`, ...).
//!
//! It is deliberately *not* a parser: rules pattern-match short token
//! sequences, which is robust enough for the lint set and keeps the
//! crate dependency-free.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (includes raw identifiers, without `r#`).
    Ident,
    /// A lifetime such as `'a` or `'_` (text includes the quote).
    Lifetime,
    /// Punctuation or operator; compound operators in
    /// [`COMPOUND_OPERATORS`] are single tokens.
    Punct,
    /// String literal of any flavor (normal, byte, raw), quotes included.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal; `is_float` on the token distinguishes floats.
    Num,
    /// Outer doc comment (`///` or `/** */`).
    DocOuter,
    /// Inner doc comment (`//!` or `/*! */`).
    DocInner,
    /// Non-doc comment (`//`, `/* */`).
    Comment,
}

/// Two-character operators lexed as single tokens. Everything else is
/// emitted one character at a time, which is all the rules need.
pub const COMPOUND_OPERATORS: &[&str] =
    &["==", "!=", "<=", ">=", "::", "->", "=>", "..", "&&", "||"];

/// One lexed token with its 1-based source position.
///
/// Diagnostics always point at the *start* position; the end position
/// exists so multi-line tokens (raw strings, block comments) can be
/// reasoned about precisely — e.g. "is there code earlier on this
/// line" must see a raw string that *ends* here even though it
/// *started* three lines up.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text of the token (for comments, the full comment).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// 1-based line of the token's last character (equals [`line`]
    /// except for multi-line tokens).
    ///
    /// [`line`]: Token::line
    pub end_line: u32,
    /// 1-based column (in characters) of the token's last character.
    pub end_col: u32,
    /// For [`TokenKind::Num`]: whether the literal is a float.
    pub is_float: bool,
}

impl Token {
    /// True for comment tokens of any flavor (doc or not).
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Comment | TokenKind::DocOuter | TokenKind::DocInner
        )
    }

    /// True for doc comments (outer or inner).
    pub fn is_doc(&self) -> bool {
        matches!(self.kind, TokenKind::DocOuter | TokenKind::DocInner)
    }
}

/// Character cursor with line/column tracking.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    /// Position of the most recently bumped character — the end
    /// position of whatever token just finished lexing.
    last_line: u32,
    last_col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            last_line: 1,
            last_col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        self.last_line = self.line;
        self.last_col = self.col;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eof(&self) -> bool {
        self.pos >= self.chars.len()
    }
}

/// Lexes `src` into a token stream. Never fails: unexpected bytes are
/// emitted as single-character [`TokenKind::Punct`] tokens, and
/// unterminated literals/comments run to end of file.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut tokens = Vec::new();
    while !cur.eof() {
        let line = cur.line;
        let col = cur.col;
        let c = match cur.peek(0) {
            Some(c) => c,
            None => break,
        };
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let tok = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if c == '"' {
            lex_string(&mut cur)
        } else if c == '\'' {
            lex_quote(&mut cur)
        } else if (c == 'r' || c == 'b') && starts_special_literal(&cur) {
            lex_special_literal(&mut cur)
        } else if c == '_' || c.is_alphabetic() {
            lex_ident(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            lex_punct(&mut cur)
        };
        tokens.push(Token {
            kind: tok.0,
            text: tok.1,
            line,
            col,
            end_line: cur.last_line,
            end_col: cur.last_col,
            is_float: tok.2,
        });
    }
    tokens
}

type Lexed = (TokenKind, String, bool);

fn lex_line_comment(cur: &mut Cursor) -> Lexed {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    // `///` is an outer doc comment, but `////…` (4+ slashes) is plain;
    // `//!` is an inner doc comment.
    let kind = if text.starts_with("//!") {
        TokenKind::DocInner
    } else if text.starts_with("///") && !text.starts_with("////") {
        TokenKind::DocOuter
    } else {
        TokenKind::Comment
    };
    (kind, text, false)
}

fn lex_block_comment(cur: &mut Cursor) -> Lexed {
    let mut text = String::new();
    // Opening `/*`.
    for _ in 0..2 {
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    let mut depth = 1usize;
    while depth > 0 && !cur.eof() {
        if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
            depth += 1;
            text.push('/');
            text.push('*');
            cur.bump();
            cur.bump();
        } else if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push('*');
            text.push('/');
            cur.bump();
            cur.bump();
        } else if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    // `/** .. */` is outer doc (but the empty `/**/` is plain), and
    // `/*! .. */` is inner doc.
    let kind = if text.starts_with("/*!") {
        TokenKind::DocInner
    } else if text.starts_with("/**") && text.len() > 4 {
        TokenKind::DocOuter
    } else {
        TokenKind::Comment
    };
    (kind, text, false)
}

fn lex_string(cur: &mut Cursor) -> Lexed {
    let mut text = String::new();
    if let Some(c) = cur.bump() {
        text.push(c); // opening quote
    }
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if c == '"' {
            break;
        }
    }
    (TokenKind::Str, text, false)
}

/// Lexes a token starting with `'`: a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor) -> Lexed {
    // `'a`/`'_` not followed by a closing quote is a lifetime; `'a'`,
    // `'\n'`, `'\u{7FFF}'` are char literals.
    let next = cur.peek(1);
    let is_lifetime = match next {
        Some(c) if c == '_' || c.is_alphabetic() => cur.peek(2) != Some('\''),
        _ => false,
    };
    let mut text = String::new();
    if let Some(c) = cur.bump() {
        text.push(c); // the quote
    }
    if is_lifetime {
        while let Some(c) = cur.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return (TokenKind::Lifetime, text, false);
    }
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if c == '\'' {
            break;
        }
    }
    (TokenKind::Char, text, false)
}

/// Does the cursor sit on `r"`, `r#`, `b"`, `b'`, `br"` or `br#`?
fn starts_special_literal(cur: &Cursor) -> bool {
    match (cur.peek(0), cur.peek(1)) {
        (Some('r'), Some('"' | '#')) => true,
        (Some('b'), Some('"' | '\'' | 'r')) => {
            // `br` must be followed by a raw-string opener to be special;
            // otherwise `brand` is an identifier.
            if cur.peek(1) == Some('r') {
                matches!(cur.peek(2), Some('"' | '#'))
            } else {
                true
            }
        }
        _ => false,
    }
}

/// Lexes raw strings, byte strings, raw byte strings, byte chars, and
/// raw identifiers (`r#ident`).
fn lex_special_literal(cur: &mut Cursor) -> Lexed {
    let mut text = String::new();
    let first = cur.peek(0);
    if first == Some('b') {
        if let Some(c) = cur.bump() {
            text.push(c);
        }
        match cur.peek(0) {
            Some('\'') => {
                let (_, rest, _) = lex_quote(cur);
                text.push_str(&rest);
                return (TokenKind::Char, text, false);
            }
            Some('"') => {
                let (_, rest, _) = lex_string(cur);
                text.push_str(&rest);
                return (TokenKind::Str, text, false);
            }
            _ => {} // `br…` raw byte string: fall through to raw handling
        }
    }
    // At `r…`: raw string or raw identifier.
    if let Some(c) = cur.bump() {
        text.push(c); // the `r`
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    if cur.peek(0) != Some('"') {
        // `r#ident`: a raw identifier, not a string.
        while let Some(c) = cur.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return (TokenKind::Ident, text, false);
    }
    text.push('"');
    cur.bump();
    // Body runs until `"` followed by `hashes` hash marks.
    'body: while let Some(c) = cur.bump() {
        text.push(c);
        if c == '"' {
            for ahead in 0..hashes {
                if cur.peek(ahead) != Some('#') {
                    continue 'body;
                }
            }
            for _ in 0..hashes {
                text.push('#');
                cur.bump();
            }
            break;
        }
    }
    (TokenKind::Str, text, false)
}

fn lex_ident(cur: &mut Cursor) -> Lexed {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '_' || c.is_alphanumeric() {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    (TokenKind::Ident, text, false)
}

fn lex_number(cur: &mut Cursor) -> Lexed {
    let mut text = String::new();
    let mut is_float = false;
    let base_prefixed =
        cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
    if base_prefixed {
        text.push('0');
        cur.bump();
        if let Some(c) = cur.bump() {
            text.push(c);
        }
        while let Some(c) = cur.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return (TokenKind::Num, text, false);
    }
    while let Some(c) = cur.peek(0) {
        if c == '_' || c.is_ascii_digit() {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part: `.` followed by a digit (so `1..5` and `1.max()`
    // stay integers).
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        text.push('.');
        cur.bump();
        while let Some(c) = cur.peek(0) {
            if c == '_' || c.is_ascii_digit() {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    // Exponent: `e`/`E`, optional sign, at least one digit.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let (sign, digit) = match cur.peek(1) {
            Some('+' | '-') => (true, cur.peek(2)),
            other => (false, other),
        };
        if digit.is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            text.push('e');
            cur.bump();
            if sign {
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
            }
            while let Some(c) = cur.peek(0) {
                if c == '_' || c.is_ascii_digit() {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix (`u64`, `f32`, `usize`, ...). An `f…` suffix makes
    // the literal a float even without `.`/exponent (`2f64`).
    if cur.peek(0).is_some_and(|c| c == '_' || c.is_alphabetic()) {
        if cur.peek(0) == Some('f') {
            is_float = true;
        }
        while let Some(c) = cur.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    (TokenKind::Num, text, is_float)
}

fn lex_punct(cur: &mut Cursor) -> Lexed {
    if let (Some(a), Some(b)) = (cur.peek(0), cur.peek(1)) {
        let pair = [a, b].iter().collect::<String>();
        if COMPOUND_OPERATORS.contains(&pair.as_str()) {
            cur.bump();
            cur.bump();
            return (TokenKind::Punct, pair, false);
        }
    }
    let c = cur.bump().unwrap_or(' ');
    (TokenKind::Punct, c.to_string(), false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn main() { x.unwrap(); }");
        assert!(toks.contains(&(TokenKind::Ident, "unwrap".into())));
        assert!(toks.contains(&(TokenKind::Punct, ".".into())));
    }

    #[test]
    fn unwrap_inside_string_is_a_string() {
        let toks = lex(r#"let s = "call .unwrap() now";"#);
        assert!(toks.iter().all(|t| t.text != "unwrap"));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still outer */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r###"let s = r#"has "quotes" and unwrap()"#;"###);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("unwrap"));
        assert!(toks
            .iter()
            .all(|t| t.kind == TokenKind::Str || t.text != "unwrap"));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.iter().filter(|t| t.0 == TokenKind::Lifetime).count() == 2);
        assert!(toks.contains(&(TokenKind::Char, "'x'".into())));
    }

    #[test]
    fn escaped_char_and_quote() {
        let toks = kinds(r"let c = '\''; let n = '\n';");
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Char).count(), 2);
    }

    #[test]
    fn float_classification() {
        let cases = [
            ("1.5", true),
            ("1e9", true),
            ("2f64", true),
            ("3", false),
            ("0x1e5", false),
            ("1_000", false),
            ("1.5e-3", true),
        ];
        for (src, want) in cases {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].kind, TokenKind::Num, "{src}");
            assert_eq!(toks[0].is_float, want, "{src}");
        }
    }

    #[test]
    fn range_and_method_on_int_are_not_floats() {
        let toks = lex("for i in 1..5 { i.max(2); } x.0");
        for t in &toks {
            if t.kind == TokenKind::Num {
                assert!(!t.is_float, "{}", t.text);
            }
        }
        assert!(toks.iter().any(|t| t.text == ".."));
    }

    #[test]
    fn doc_comment_kinds() {
        let toks =
            kinds("//! inner\n/// outer\n//// plain\n// plain\n/*! ib */\n/** ob */\n/* pb */");
        let got: Vec<TokenKind> = toks.iter().map(|t| t.0).collect();
        assert_eq!(
            got,
            vec![
                TokenKind::DocInner,
                TokenKind::DocOuter,
                TokenKind::Comment,
                TokenKind::Comment,
                TokenKind::DocInner,
                TokenKind::DocOuter,
                TokenKind::Comment,
            ]
        );
    }

    #[test]
    fn compound_operators() {
        let toks = kinds("a == b != c :: d -> e");
        let puncts: Vec<String> = toks
            .into_iter()
            .filter(|t| t.0 == TokenKind::Punct)
            .map(|t| t.1)
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "->"]);
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("let r#fn = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#fn".into())));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r##"let a = b"bytes"; let c = b'x'; let r = br#"raw"#;"##);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Char).count(), 1);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn multi_line_tokens_carry_start_and_end_positions() {
        // Raw string spanning three lines, then code on the closing
        // line: the string starts at its `r`, ends at the closing `#`,
        // and the code after it sits on the final line.
        let src = "let s = r#\"one\ntwo\nthree\"#; x.unwrap();";
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).expect("str");
        assert_eq!((s.line, s.col), (1, 9));
        assert_eq!((s.end_line, s.end_col), (3, 7), "{:?}", s.text);
        let x = toks.iter().find(|t| t.text == "x").expect("x");
        assert_eq!((x.line, x.col), (3, 10));
        let unwrap = toks.iter().find(|t| t.text == "unwrap").expect("unwrap");
        assert_eq!((unwrap.line, unwrap.col), (3, 12));

        // Nested block comment spanning lines: same contract.
        let toks = lex("/* a\n /* b */\n*/ y");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[0].end_line, toks[0].end_col), (3, 2));
        assert_eq!((toks[1].line, toks[1].col), (3, 4));
    }

    #[test]
    fn single_line_tokens_end_where_they_start() {
        let toks = lex("alpha == 1.5");
        assert_eq!((toks[0].end_line, toks[0].end_col), (1, 5));
        assert_eq!((toks[1].end_line, toks[1].end_col), (1, 8));
        assert_eq!((toks[2].end_line, toks[2].end_col), (1, 12));
    }
}
