//! The lint driver: walk → lex → parse → rules (file, workspace,
//! index) → suppressions → sorted diagnostics.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::diag::Diagnostic;
use crate::index::WorkspaceIndex;
use crate::rules::all_rules;
use crate::source::{walk_rust_files, SourceFile, WalkError};
use crate::suppress;

/// The outcome of a lint run: the scanned files (for snippet
/// rendering) and the surviving diagnostics, sorted by location.
#[derive(Debug)]
pub struct LintRun {
    /// Every scanned file.
    pub files: Vec<SourceFile>,
    /// Diagnostics after suppression handling.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintRun {
    /// The source line a diagnostic points at, if the file was scanned.
    pub fn snippet(&self, d: &Diagnostic) -> Option<&str> {
        self.files
            .iter()
            .find(|f| f.path == d.file)
            .and_then(|f| f.line(d.line))
    }
}

/// Lints already-loaded files (the path of each file decides rule
/// scoping). This is the seam fixture tests drive directly.
///
/// All rule layers run first — per-file, workspace, and index — and
/// suppressions are applied afterwards to every diagnostic grouped by
/// file, so a `// cbs-lint: allow(…)` can cover cross-file findings
/// (e.g. `simd-twin-parity`) exactly like per-file ones.
pub fn lint_files(files: Vec<SourceFile>) -> LintRun {
    let rules = all_rules();
    let mut diagnostics = Vec::new(); // suppression-machinery findings
    let mut raw = Vec::new();
    for file in &files {
        for rule in &rules {
            rule.check_file(file, &mut raw);
        }
    }
    for rule in &rules {
        rule.check_workspace(&files, &mut raw);
    }
    let index = WorkspaceIndex::build(&files);
    for rule in &rules {
        rule.check_index(&index, &mut raw);
    }

    let mut by_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for d in raw {
        by_file.entry(d.file.clone()).or_default().push(d);
    }
    for file in &files {
        let sups = suppress::collect(file, &mut diagnostics);
        let diags = by_file.remove(file.path.as_str()).unwrap_or_default();
        diagnostics.extend(suppress::apply(file, sups, diags));
    }
    // Diagnostics pointing at paths outside the scanned set (e.g. a
    // workspace rule reporting against a synthetic location) cannot
    // be suppressed and pass through.
    for (_, rest) in by_file {
        diagnostics.extend(rest);
    }
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    LintRun { files, diagnostics }
}

/// Walks `roots` for `.rs` files and lints them.
pub fn lint_paths(roots: &[PathBuf]) -> Result<LintRun, WalkError> {
    let mut files = Vec::new();
    for path in walk_rust_files(roots)? {
        files.push(SourceFile::read(&path)?);
    }
    Ok(lint_files(files))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_round_trip() {
        let src = "\
fn f() {
    // cbs-lint: allow(no-unwrap-in-lib) -- demo: value checked above
    a.unwrap();
    b.unwrap();
}
";
        let run = lint_files(vec![SourceFile::from_text("crates/core/src/x.rs", src)]);
        assert_eq!(run.diagnostics.len(), 1, "{:?}", run.diagnostics);
        assert_eq!(run.diagnostics[0].line, 4);
    }

    #[test]
    fn diagnostics_are_sorted() {
        let src = "fn f() { a.unwrap(); panic!(\"x\"); }\nfn g() { b.unwrap(); }\n";
        let run = lint_files(vec![SourceFile::from_text("crates/core/src/x.rs", src)]);
        let lines: Vec<u32> = run.diagnostics.iter().map(|d| d.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}
