//! `cbs-lint` — self-contained static analysis for the cbs-workbench.
//!
//! The paper's pipeline is a single streaming pass over ~20 billion
//! requests; one stray `unwrap()` deep in a shard worker kills hours of
//! analysis with no diagnostic. This crate enforces the workspace's
//! panic-freedom and traceability policy *mechanically*, the way
//! `cargo-deny`/`dylint` would if this build environment were not
//! offline: a hand-rolled [`lexer`] (so rules never fire inside
//! strings or comments), a pluggable [`rules::Rule`] engine producing
//! structured [`diag::Diagnostic`]s, machine-readable `--json` output,
//! and inline suppression with mandatory justifications
//! ([`suppress`]).
//!
//! Run it over the workspace:
//!
//! ```text
//! cargo run -p cbs-lint -- crates            # human output
//! cargo run -p cbs-lint -- --json crates     # CI gate input
//! cargo run -p cbs-lint -- --list-rules
//! ```
//!
//! Suppress a single finding, with a required justification:
//!
//! ```text
//! // cbs-lint: allow(no-panic-in-lib) -- index < len checked above
//! ```
//!
//! Unused suppressions and suppressions without a `--` justification
//! are themselves diagnostics, so allows cannot rot. See `DESIGN.md`
//! §"Panic-freedom policy" for the policy this enforces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench_schema;
pub mod diag;
pub mod engine;
pub mod index;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod source;
pub mod suppress;

pub use diag::{Diagnostic, Severity};
pub use engine::{lint_files, lint_paths, LintRun};
pub use index::WorkspaceIndex;
pub use source::SourceFile;
