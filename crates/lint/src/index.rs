//! Per-crate cross-file symbol index built from parsed item trees.
//!
//! The index aggregates every scanned [`SourceFile`]'s items by
//! workspace crate so cross-file rules can answer symbol questions —
//! "does crate X define a function named `op_len_sums_scalar`?",
//! "is there a test that mentions both the kernel and its scalar
//! twin?", "which impl blocks cover type `Counter`?" — without
//! re-walking token streams.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::parser::{Item, ItemKind};
use crate::source::SourceFile;

/// One function definition site.
#[derive(Debug, Clone)]
pub struct FnSite<'a> {
    /// The file declaring it.
    pub file: &'a SourceFile,
    /// The parsed `fn` item.
    pub item: &'a Item,
    /// Self type of the enclosing `impl`, when the fn is a method.
    pub self_type: Option<&'a str>,
    /// Names of enclosing modules, outermost first (e.g. `["avx2"]`).
    pub modules: Vec<&'a str>,
    /// Whether the definition sits in test code.
    pub in_test: bool,
}

/// One type (struct/enum) definition site.
#[derive(Debug, Clone, Copy)]
pub struct TypeSite<'a> {
    /// The file declaring it.
    pub file: &'a SourceFile,
    /// The parsed item.
    pub item: &'a Item,
}

/// One `impl` block.
#[derive(Debug, Clone, Copy)]
pub struct ImplSite<'a> {
    /// The file holding it.
    pub file: &'a SourceFile,
    /// The parsed `impl` item (children are its associated items).
    pub item: &'a Item,
}

/// The set of identifiers appearing in one file's *test* code.
#[derive(Debug)]
pub struct TestIdents {
    /// File path.
    pub path: String,
    /// Every identifier token inside test spans (or anywhere in a
    /// test-collateral file). Macro bodies lex as ordinary tokens, so
    /// names referenced inside `proptest!` blocks are included.
    pub idents: BTreeSet<String>,
}

/// Symbols of one workspace crate, aggregated across its files.
#[derive(Debug, Default)]
pub struct CrateIndex<'a> {
    /// Function name → definition sites (lib and test code both;
    /// check [`FnSite::in_test`] to filter).
    pub fns: BTreeMap<String, Vec<FnSite<'a>>>,
    /// Type name → definition sites.
    pub types: BTreeMap<String, Vec<TypeSite<'a>>>,
    /// All `impl` blocks.
    pub impls: Vec<ImplSite<'a>>,
    /// Per-file identifier sets drawn from test code only.
    pub test_idents: Vec<TestIdents>,
}

impl<'a> CrateIndex<'a> {
    /// Non-test definition sites of `name`.
    pub fn lib_fns(&self, name: &str) -> Vec<&FnSite<'a>> {
        self.fns
            .get(name)
            .map(|sites| sites.iter().filter(|s| !s.in_test).collect())
            .unwrap_or_default()
    }

    /// Does any single file's test code mention *all* of `names`?
    /// This is the co-occurrence question parity rules ask: a test
    /// that exercises both a kernel and its scalar twin must name
    /// both in one place.
    pub fn any_test_mentions_all(&self, names: &[&str]) -> bool {
        self.test_idents
            .iter()
            .any(|t| names.iter().all(|n| t.idents.contains(*n)))
    }

    /// Methods (fn children of impl blocks) of `type_name` with the
    /// given method name, outside test code.
    pub fn methods_named(&self, type_name: &str, method: &str) -> Vec<&Item> {
        let mut out = Vec::new();
        for imp in &self.impls {
            if imp.item.name != type_name {
                continue;
            }
            for child in &imp.item.children {
                if child.kind == ItemKind::Fn
                    && child.name == method
                    && !imp.file.in_test_code(child.line)
                {
                    out.push(child);
                }
            }
        }
        out
    }
}

/// The cross-file symbol index: one [`CrateIndex`] per workspace
/// crate (keyed by crate directory name; files outside a
/// `crates/<name>/` layout land under the empty key).
#[derive(Debug, Default)]
pub struct WorkspaceIndex<'a> {
    /// Crate name → its symbols.
    pub crates: BTreeMap<String, CrateIndex<'a>>,
}

impl<'a> WorkspaceIndex<'a> {
    /// Builds the index over every scanned file.
    pub fn build(files: &'a [SourceFile]) -> Self {
        let mut ws = WorkspaceIndex::default();
        for file in files {
            let cx = ws.crates.entry(file.crate_name.clone()).or_default();
            let mut mods: Vec<&'a str> = Vec::new();
            index_items(file, &file.items, None, &mut mods, cx);

            let mut idents = BTreeSet::new();
            for t in &file.tokens {
                if t.kind == TokenKind::Ident && file.in_test_code(t.line) {
                    idents.insert(t.text.clone());
                }
            }
            if !idents.is_empty() {
                cx.test_idents.push(TestIdents {
                    path: file.path.clone(),
                    idents,
                });
            }
        }
        ws
    }

    /// The index for `crate_name`, if any of its files were scanned.
    pub fn of(&self, crate_name: &str) -> Option<&CrateIndex<'a>> {
        self.crates.get(crate_name)
    }
}

fn index_items<'a>(
    file: &'a SourceFile,
    items: &'a [Item],
    self_type: Option<&'a str>,
    mods: &mut Vec<&'a str>,
    cx: &mut CrateIndex<'a>,
) {
    for item in items {
        match item.kind {
            ItemKind::Fn => {
                cx.fns.entry(item.name.clone()).or_default().push(FnSite {
                    file,
                    item,
                    self_type,
                    modules: mods.clone(),
                    in_test: file.in_test_code(item.line),
                });
            }
            ItemKind::Struct | ItemKind::Enum => {
                cx.types
                    .entry(item.name.clone())
                    .or_default()
                    .push(TypeSite { file, item });
            }
            ItemKind::Impl => {
                cx.impls.push(ImplSite { file, item });
                index_items(file, &item.children, Some(&item.name), mods, cx);
            }
            ItemKind::Mod => {
                mods.push(&item.name);
                index_items(file, &item.children, self_type, mods, cx);
                mods.pop();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_fns_types_impls_across_files() {
        let lib = SourceFile::from_text(
            "crates/demo/src/lib.rs",
            "pub struct Counter;\nimpl Counter {\n    pub fn merge(&mut self) {}\n}\npub fn kernel_scalar() {}\nmod avx2 {\n    pub fn kernel() {}\n}\n",
        );
        let test = SourceFile::from_text(
            "crates/demo/tests/parity.rs",
            "#[test]\nfn parity() { kernel(); kernel_scalar(); }\n",
        );
        let files = vec![lib, test];
        let ws = WorkspaceIndex::build(&files);
        let cx = ws.of("demo").expect("crate indexed");

        assert!(cx.types.contains_key("Counter"));
        assert_eq!(cx.methods_named("Counter", "merge").len(), 1);
        assert!(cx.methods_named("Counter", "missing").is_empty());

        let kernel = &cx.fns["kernel"][0];
        assert_eq!(kernel.modules, vec!["avx2"]);
        assert!(!kernel.in_test);
        assert_eq!(cx.lib_fns("kernel_scalar").len(), 1);

        assert!(cx.any_test_mentions_all(&["kernel", "kernel_scalar"]));
        assert!(!cx.any_test_mentions_all(&["kernel", "absent_twin"]));
    }

    #[test]
    fn cfg_test_module_idents_count_as_test_mentions() {
        let lib = SourceFile::from_text(
            "crates/demo/src/lib.rs",
            "pub fn twin_a() {}\npub fn twin_b() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { twin_a(); twin_b(); }\n}\n",
        );
        let files = vec![lib];
        let ws = WorkspaceIndex::build(&files);
        let cx = ws.of("demo").expect("indexed");
        assert!(cx.any_test_mentions_all(&["twin_a", "twin_b"]));
    }
}
