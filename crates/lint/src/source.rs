//! Source-file model: lexed files plus the path/`cfg(test)` context
//! rules use to scope themselves.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token};
use crate::parser::{self, Item};

/// Error walking or reading source files.
#[derive(Debug)]
pub struct WalkError {
    /// The path that failed.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl core::fmt::Display for WalkError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cannot read {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for WalkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// One lexed source file with everything a [`crate::rules::Rule`] needs.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as given/walked (repo-relative when the root is relative);
    /// always uses `/` separators so rule scoping is portable.
    pub path: String,
    /// Workspace crate directory name (`core` for `crates/core/...`),
    /// empty when the file is outside a `crates/<name>/` layout.
    pub crate_name: String,
    /// Source lines, for diagnostics snippets.
    pub lines: Vec<String>,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Parsed item tree (best effort, never fails — see
    /// [`crate::parser`]).
    pub items: Vec<Item>,
    /// Whole file is test/bench/example collateral (path-based).
    pub is_test_path: bool,
    /// Whole file is a binary target (`src/bin/` or `src/main.rs`).
    pub is_bin_path: bool,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` / `#[test]`
    /// items.
    test_spans: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Builds a source file from text, classifying it by `path` alone
    /// (the path does not need to exist on disk — fixture tests lint
    /// snippets under pretend paths).
    pub fn from_text(path: &str, text: &str) -> Self {
        let norm = path.replace('\\', "/");
        let tokens = lex(text);
        let items = parser::parse_items(&tokens);
        let test_spans = find_test_spans(&tokens);
        let is_test_path = ["tests/", "benches/", "examples/", "fuzz/"]
            .iter()
            .any(|seg| norm.starts_with(seg) || norm.contains(&format!("/{seg}")));
        let is_bin_path = norm.contains("/src/bin/") || norm.ends_with("/src/main.rs");
        SourceFile {
            crate_name: crate_of(&norm),
            path: norm,
            lines: text.lines().map(str::to_owned).collect(),
            tokens,
            items,
            is_test_path,
            is_bin_path,
            test_spans,
        }
    }

    /// Reads and lexes a file from disk.
    pub fn read(path: &Path) -> Result<Self, WalkError> {
        let text = fs::read_to_string(path).map_err(|source| WalkError {
            path: path.to_path_buf(),
            source,
        })?;
        Ok(SourceFile::from_text(&path.to_string_lossy(), &text))
    }

    /// Is `line` inside test code — either a test-collateral file or a
    /// `#[cfg(test)]`/`#[test]` item?
    pub fn in_test_code(&self, line: u32) -> bool {
        self.is_test_path
            || self
                .test_spans
                .iter()
                .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// Is this file library code: a non-bin, non-test `src/` file?
    pub fn is_library_code(&self) -> bool {
        !self.is_test_path && !self.is_bin_path && self.path.contains("/src/")
    }

    /// The source line (1-based), if present.
    pub fn line(&self, line: u32) -> Option<&str> {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(String::as_str)
    }

    /// The chain of parsed items enclosing `line`, outermost first.
    pub fn enclosing_items(&self, line: u32) -> Vec<&Item> {
        parser::enclosing_chain(&self.items, line)
    }
}

/// Extracts the crate directory name from a `…/crates/<name>/…` path.
///
/// Uses the *last* `crates/`/`compat/` segment: unnormalized paths like
/// `crates/lint/../../crates/obs/src/timer.rs` (how the self-check
/// resolves the workspace root) name the crate in their final segment,
/// and taking the first would misattribute every file to `lint`.
fn crate_of(path: &str) -> String {
    let mut name = String::new();
    let mut parts = path.split('/').peekable();
    while let Some(p) = parts.next() {
        if p == "crates" || p == "compat" {
            if let Some(next) = parts.peek() {
                name = (*next).to_owned();
            }
        }
    }
    name
}

/// Finds line spans of items annotated `#[cfg(test)]` (including forms
/// like `cfg(any(test, …))`) or `#[test]`: from the attribute, the span
/// runs to the matching close brace of the item's body, or to the `;`
/// of a braceless item.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let toks: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "#" || i + 1 >= toks.len() || toks[i + 1].text != "[" {
            i += 1;
            continue;
        }
        // Find the matching `]`, collecting the attribute's tokens.
        let start = i;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut attr: Vec<&str> = Vec::new();
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                t => attr.push(t),
            }
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        let is_test_attr = attr.first() == Some(&"test")
            || (attr.first() == Some(&"cfg") && attr.contains(&"test"));
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Item body: first `{` (then brace-match) or `;` before any `{`.
        let mut k = j + 1;
        let mut end_line = toks[j].line;
        let mut braces = 0usize;
        while k < toks.len() {
            match toks[k].text.as_str() {
                ";" if braces == 0 => {
                    end_line = toks[k].line;
                    break;
                }
                "{" => braces += 1,
                "}" => {
                    braces = braces.saturating_sub(1);
                    if braces == 0 {
                        end_line = toks[k].line;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        spans.push((toks[start].line, end_line));
        i = k + 1;
    }
    spans
}

/// Recursively collects `.rs` files under `roots`, sorted for
/// deterministic output. Skips `target/` build dirs and `fixtures/`
/// dirs (lint-rule test fixtures contain intentional violations).
pub fn walk_rust_files(roots: &[PathBuf]) -> Result<Vec<PathBuf>, WalkError> {
    let mut files = Vec::new();
    for root in roots {
        if root.is_file() {
            files.push(root.clone());
        } else {
            walk_dir(root, &mut files)?;
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), WalkError> {
    let entries = fs::read_dir(dir).map_err(|source| WalkError {
        path: dir.to_path_buf(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| WalkError {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk_dir(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_classification() {
        let lib = SourceFile::from_text("crates/core/src/streaming.rs", "fn f() {}");
        assert!(lib.is_library_code());
        assert_eq!(lib.crate_name, "core");

        let test = SourceFile::from_text("crates/core/tests/proptests.rs", "fn f() {}");
        assert!(test.is_test_path);
        assert!(!test.is_library_code());

        let bin = SourceFile::from_text("crates/report/src/bin/repro.rs", "fn main() {}");
        assert!(bin.is_bin_path);
        assert!(!bin.is_library_code());
    }

    #[test]
    fn cfg_test_module_span() {
        let src = "\
fn lib_code() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        x.unwrap();
    }
}
";
        let f = SourceFile::from_text("crates/core/src/x.rs", src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(3));
        assert!(f.in_test_code(7));
        assert!(f.in_test_code(9));
    }

    #[test]
    fn cfg_test_on_braceless_item() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn real() {}\n";
        let f = SourceFile::from_text("crates/core/src/x.rs", src);
        assert!(f.in_test_code(2));
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn cfg_any_test_counts() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn helper() { a.unwrap(); }\nfn real() {}\n";
        let f = SourceFile::from_text("crates/core/src/x.rs", src);
        assert!(f.in_test_code(2));
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn non_test_attrs_do_not_span() {
        let src = "#[derive(Debug, Clone)]\nstruct S { x: u32 }\n";
        let f = SourceFile::from_text("crates/core/src/x.rs", src);
        assert!(!f.in_test_code(1));
        assert!(!f.in_test_code(2));
    }
}
