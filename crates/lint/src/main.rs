//! CLI for `cbs-lint`:
//! `cbs-lint [--json] [--list-rules] [--ordering-inventory] [paths…]`
//! or `cbs-lint --check-bench FILE…`.
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = usage, I/O, or
//! internal error. With no paths, lints `crates` under the current
//! directory.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use cbs_lint::bench_schema;
use cbs_lint::diag::{render_human, to_json_array, Severity};
use cbs_lint::engine::lint_paths;
use cbs_lint::rules::atomic_ordering::ordering_sites;
use cbs_lint::rules::{all_rules, rule_id};

/// Exit: violations were found (distinct from internal errors).
const EXIT_VIOLATIONS: u8 = 1;
/// Exit: usage, I/O, or internal error.
const EXIT_INTERNAL: u8 = 2;

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut inventory = false;
    let mut check_bench = false;
    let mut roots: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--ordering-inventory" => inventory = true,
            "--check-bench" => check_bench = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("cbs-lint: unknown flag {flag}");
                print_usage();
                return ExitCode::from(EXIT_INTERNAL);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if list_rules {
        for rule in all_rules() {
            println!(
                "{} {:<24} {}",
                rule_id(rule.name()),
                rule.name(),
                rule.description()
            );
        }
        return ExitCode::SUCCESS;
    }
    if check_bench {
        return run_check_bench(&roots);
    }
    if roots.is_empty() {
        roots.push(PathBuf::from("crates"));
    }

    let run = match lint_paths(&roots) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("cbs-lint: {e}");
            return ExitCode::from(EXIT_INTERNAL);
        }
    };

    if inventory {
        print_ordering_inventory(&run.files);
        return ExitCode::SUCCESS;
    }

    if json {
        println!("{}", to_json_array(&run.diagnostics));
    } else {
        for d in &run.diagnostics {
            print!("{}", render_human(d, run.snippet(d)));
        }
        eprintln!(
            "cbs-lint: {} file(s) scanned, {} diagnostic(s)",
            run.files.len(),
            run.diagnostics.len()
        );
    }
    let failing = run
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Error);
    if failing {
        ExitCode::from(EXIT_VIOLATIONS)
    } else {
        ExitCode::SUCCESS
    }
}

/// `--check-bench FILE…`: validate BENCH_*.json artifacts against the
/// pinned schema. Unparseable JSON is an internal error (2); schema
/// violations exit 1.
fn run_check_bench(files: &[PathBuf]) -> ExitCode {
    if files.is_empty() {
        eprintln!("cbs-lint: --check-bench needs at least one file");
        return ExitCode::from(EXIT_INTERNAL);
    }
    let mut violations = 0usize;
    for path in files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cbs-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(EXIT_INTERNAL);
            }
        };
        match bench_schema::validate(&text) {
            Err(e) => {
                eprintln!("cbs-lint: {}: invalid JSON: {e}", path.display());
                return ExitCode::from(EXIT_INTERNAL);
            }
            Ok(errs) => {
                for e in &errs {
                    println!("{}: {e}", path.display());
                }
                violations += errs.len();
            }
        }
    }
    if violations > 0 {
        eprintln!("cbs-lint: {violations} bench schema violation(s)");
        ExitCode::from(EXIT_VIOLATIONS)
    } else {
        ExitCode::SUCCESS
    }
}

/// `--ordering-inventory`: per-crate report of every atomic
/// `Ordering::*` site (test code included), for audit review.
fn print_ordering_inventory(files: &[cbs_lint::SourceFile]) {
    let mut per_crate: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    for file in files {
        for site in ordering_sites(file) {
            per_crate.entry(&file.crate_name).or_default().push(format!(
                "  {}:{}:{}  Ordering::{}",
                file.path, site.line, site.col, site.variant
            ));
        }
    }
    let total: usize = per_crate.values().map(Vec::len).sum();
    println!("atomic ordering inventory: {total} site(s)");
    for (krate, sites) in &per_crate {
        println!("crate {krate} ({}):", sites.len());
        for s in sites {
            println!("{s}");
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cbs-lint [--json] [--list-rules] [--ordering-inventory] [paths…]\n\
         \x20      cbs-lint --check-bench BENCH_*.json…\n\
         \n\
         Lints .rs files under the given paths (default: crates).\n\
         --json                machine-readable diagnostics array (with stable rule IDs)\n\
         --list-rules          print the rule set (with IDs) and exit\n\
         --ordering-inventory  report every atomic Ordering::* site per crate\n\
         --check-bench         validate BENCH_*.json files against the pinned schema\n\
         \n\
         exit codes: 0 clean, 1 violations, 2 internal/usage error"
    );
}
