//! CLI for `cbs-lint`: `cbs-lint [--json] [--list-rules] [paths…]`.
//!
//! Exit codes: 0 = clean, 1 = diagnostics reported, 2 = usage or I/O
//! error. With no paths, lints `crates` under the current directory.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use cbs_lint::diag::{render_human, to_json_array, Severity};
use cbs_lint::engine::lint_paths;
use cbs_lint::rules::all_rules;

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut roots: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("cbs-lint: unknown flag {flag}");
                print_usage();
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if list_rules {
        for rule in all_rules() {
            println!("{:<24} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }
    if roots.is_empty() {
        roots.push(PathBuf::from("crates"));
    }

    let run = match lint_paths(&roots) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("cbs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", to_json_array(&run.diagnostics));
    } else {
        for d in &run.diagnostics {
            print!("{}", render_human(d, run.snippet(d)));
        }
        eprintln!(
            "cbs-lint: {} file(s) scanned, {} diagnostic(s)",
            run.files.len(),
            run.diagnostics.len()
        );
    }
    let failing = run
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Error);
    if failing {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_usage() {
    eprintln!(
        "usage: cbs-lint [--json] [--list-rules] [paths…]\n\
         \n\
         Lints .rs files under the given paths (default: crates).\n\
         --json        machine-readable diagnostics array\n\
         --list-rules  print the rule set and exit"
    );
}
