//! Item-level recursive-descent parser over the token stream.
//!
//! This is deliberately *not* a Rust grammar: it recognises just enough
//! item structure — functions with signatures, `impl` blocks, modules,
//! type definitions, `use` declarations, attributes and doc comments —
//! for cross-file rules to reason about symbols. It never fails: token
//! sequences it does not understand are skipped, so a file that rustc
//! rejects still yields a best-effort item tree.
//!
//! The parser feeds [`crate::index::WorkspaceIndex`], which aggregates
//! items per crate for rules like `simd-twin-parity` and
//! `mergeable-audit`.

use crate::lexer::{Token, TokenKind};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free or associated).
    Fn,
    /// `struct` or `union`.
    Struct,
    /// `enum`.
    Enum,
    /// `trait` definition.
    Trait,
    /// `impl` block (inherent or trait).
    Impl,
    /// `mod` (inline or out-of-line).
    Mod,
    /// `use` declaration.
    Use,
    /// `const` item (not `const fn`).
    Const,
    /// `static` item.
    Static,
    /// `type` alias.
    TypeAlias,
    /// `macro_rules!` definition.
    Macro,
    /// `extern "…" { … }` block.
    ExternBlock,
}

/// One parsed item: a node in the file's item tree.
#[derive(Debug)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Declared name. For `impl` blocks this is the self type's last
    /// path segment; for `use` it is the full dotted path text; empty
    /// when no name applies (e.g. an extern block).
    pub name: String,
    /// For trait impls (`impl Trait for Type`), the trait's last path
    /// segment; `None` for inherent impls and all other items.
    pub trait_name: Option<String>,
    /// Declared `pub` (any form: `pub`, `pub(crate)`, …).
    pub vis_pub: bool,
    /// Whether the item carries the `unsafe` qualifier.
    pub is_unsafe: bool,
    /// Outer attributes, flattened to text without the `#[…]` shell,
    /// e.g. `target_feature(enable = "avx2")` or `cfg(test)`.
    pub attrs: Vec<String>,
    /// Concatenated outer doc-comment text directly above the item.
    pub doc: String,
    /// Line of the declaring keyword (`fn`, `struct`, …).
    pub line: u32,
    /// First line of the item including attributes and doc comments.
    pub start_line: u32,
    /// Last line (closing brace or terminating `;`).
    pub end_line: u32,
    /// Signature tokens for functions: everything between the `fn`
    /// keyword and the body's `{` (or `;`), as raw token text.
    pub sig: Vec<String>,
    /// Nested items (mod and impl bodies; fn bodies are opaque).
    pub children: Vec<Item>,
}

impl Item {
    /// Does `line` fall inside this item (attributes included)?
    pub fn contains_line(&self, line: u32) -> bool {
        line >= self.start_line && line <= self.end_line
    }

    /// Does any attribute's flattened text contain `needle`?
    pub fn has_attr(&self, needle: &str) -> bool {
        self.attrs.iter().any(|a| a.contains(needle))
    }
}

/// Parses a token stream (comments included — they carry docs) into a
/// top-level item list. Never fails; unrecognised tokens are skipped.
pub fn parse_items(tokens: &[Token]) -> Vec<Item> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    p.parse_block(u32::MAX)
}

/// Returns the chain of items enclosing `line`, outermost first. Empty
/// when the line sits outside every item (e.g. between items).
pub fn enclosing_chain(items: &[Item], line: u32) -> Vec<&Item> {
    let mut chain = Vec::new();
    let mut scope = items;
    loop {
        let Some(hit) = scope.iter().find(|i| i.contains_line(line)) else {
            return chain;
        };
        chain.push(hit);
        scope = &hit.children;
    }
}

/// Modifier keywords that may precede an item's declaring keyword.
const MODIFIERS: &[&str] = &["pub", "unsafe", "async", "const", "extern", "default"];

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Index of the next non-comment token at/after `from`.
    fn next_code(&self, from: usize) -> Option<usize> {
        self.toks[from..]
            .iter()
            .position(|t| !t.is_comment())
            .map(|off| from + off)
    }

    fn text(&self, idx: usize) -> &str {
        self.toks.get(idx).map_or("", |t| t.text.as_str())
    }

    /// Parses items until a closing `}` at this nesting level or EOF.
    /// `_depth_line` is unused beyond documenting intent; recursion is
    /// bounded by brace matching.
    fn parse_block(&mut self, _depth_line: u32) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            let Some(i) = self.next_code(self.pos) else {
                self.pos = self.toks.len();
                return items;
            };
            if self.text(i) == "}" {
                self.pos = i; // caller consumes the brace
                return items;
            }
            if let Some(item) = self.parse_item(i) {
                items.push(item);
            } else {
                // Unrecognised: skip one token, re-sync.
                self.pos = i + 1;
            }
        }
    }

    /// Attempts to parse one item starting at code index `start`.
    fn parse_item(&mut self, start: usize) -> Option<Item> {
        let doc = self.docs_above(start);
        let start_line = self.toks[start].line.min(self.doc_start_line(start));

        // Outer attributes (inner `#![…]` attrs are consumed and
        // dropped — they configure, they don't declare).
        let mut attrs = Vec::new();
        let mut i = start;
        loop {
            let code = self.next_code(i)?;
            if self.text(code) != "#" {
                i = code;
                break;
            }
            let after_hash = self.next_code(code + 1)?;
            let inner = self.text(after_hash) == "!";
            let open = if inner {
                self.next_code(after_hash + 1)?
            } else {
                after_hash
            };
            if self.text(open) != "[" {
                return None;
            }
            let close = self.match_delim(open, "[", "]")?;
            if !inner {
                attrs.push(self.flatten(open + 1, close));
            }
            i = close + 1;
        }

        // Modifiers.
        let mut vis_pub = false;
        let mut is_unsafe = false;
        let mut saw_const = false;
        let mut saw_extern = false;
        loop {
            let t = self.text(i);
            if !MODIFIERS.contains(&t) {
                break;
            }
            match t {
                "pub" => {
                    vis_pub = true;
                    // Optional restriction: pub(crate), pub(in path).
                    let next = self.next_code(i + 1)?;
                    if self.text(next) == "(" {
                        i = self.match_delim(next, "(", ")")? + 1;
                        i = self.next_code(i)?;
                        continue;
                    }
                }
                "unsafe" => is_unsafe = true,
                "const" => {
                    // `const fn` (possibly with more modifiers) is a
                    // function; anything else is a `const` item and
                    // `const` is its declaring keyword, not a modifier.
                    let next = self.next_code(i + 1)?;
                    let nt = self.text(next);
                    if nt != "fn" && !MODIFIERS.contains(&nt) {
                        break;
                    }
                    saw_const = true;
                }
                "extern" => {
                    saw_extern = true;
                    // Optional ABI string.
                    let next = self.next_code(i + 1)?;
                    if self.toks[next].kind == TokenKind::Str {
                        i = next;
                    }
                }
                _ => {}
            }
            i = self.next_code(i + 1)?;
        }

        let kw = self.text(i).to_owned();
        let kw_line = self.toks[i].line;
        let finish = |p: &Self, kind, name, trait_name, sig, children, end: usize| {
            Some(Item {
                kind,
                name,
                trait_name,
                vis_pub,
                is_unsafe,
                attrs,
                doc,
                line: kw_line,
                start_line,
                end_line: p.toks.get(end).map_or(kw_line, |t| t.end_line),
                sig,
                children,
            })
        };

        match kw.as_str() {
            "fn" => {
                let name_i = self.next_code(i + 1)?;
                let name = self.text(name_i).to_owned();
                let (sig, body_open) = self.fn_signature(name_i + 1)?;
                if self.text(body_open) == ";" {
                    self.pos = body_open + 1;
                    return finish(self, ItemKind::Fn, name, None, sig, Vec::new(), body_open);
                }
                let close = self.match_delim(body_open, "{", "}")?;
                self.pos = close + 1;
                finish(self, ItemKind::Fn, name, None, sig, Vec::new(), close)
            }
            "struct" | "union" | "enum" | "trait" => {
                let name_i = self.next_code(i + 1)?;
                let name = self.text(name_i).to_owned();
                let kind = match kw.as_str() {
                    "enum" => ItemKind::Enum,
                    "trait" => ItemKind::Trait,
                    _ => ItemKind::Struct,
                };
                let end = self.skip_type_body(name_i + 1)?;
                self.pos = end + 1;
                finish(self, kind, name, None, Vec::new(), Vec::new(), end)
            }
            "impl" => {
                let mut j = self.next_code(i + 1)?;
                if self.text(j) == "<" {
                    j = self.next_code(self.match_angle(j)? + 1)?;
                }
                // Collect the header path(s) up to the body brace,
                // splitting on a depth-0 `for`.
                let mut before_for: Vec<usize> = Vec::new();
                let mut after_for: Vec<usize> = Vec::new();
                let mut seen_for = false;
                let open;
                let mut k = j;
                loop {
                    match self.text(k) {
                        "{" => {
                            open = k;
                            break;
                        }
                        ";" => return None, // `impl Trait for Type;` — not real Rust
                        "for" => seen_for = true,
                        "<" => k = self.match_angle(k)?,
                        "(" => k = self.match_delim(k, "(", ")")?,
                        "[" => k = self.match_delim(k, "[", "]")?,
                        "where" => {
                            // Skip the where clause wholesale.
                            while self.text(k) != "{" {
                                k = match self.text(k) {
                                    "<" => self.match_angle(k)?,
                                    "(" => self.match_delim(k, "(", ")")?,
                                    _ => self.next_code(k + 1)?,
                                };
                            }
                            continue;
                        }
                        _ => {
                            if seen_for {
                                after_for.push(k);
                            } else {
                                before_for.push(k);
                            }
                        }
                    }
                    k = self.next_code(k + 1)?;
                }
                let last_ident = |p: &Self, idxs: &[usize]| {
                    idxs.iter()
                        .rev()
                        .find(|&&x| p.toks[x].kind == TokenKind::Ident)
                        .map(|&x| p.text(x).to_owned())
                };
                let (name, trait_name) = if seen_for {
                    (
                        last_ident(self, &after_for).unwrap_or_default(),
                        last_ident(self, &before_for),
                    )
                } else {
                    (last_ident(self, &before_for).unwrap_or_default(), None)
                };
                self.pos = open + 1;
                let children = self.parse_block(kw_line);
                let close = self.next_code(self.pos)?;
                self.pos = close + 1;
                finish(
                    self,
                    ItemKind::Impl,
                    name,
                    trait_name,
                    Vec::new(),
                    children,
                    close,
                )
            }
            "mod" => {
                let name_i = self.next_code(i + 1)?;
                let name = self.text(name_i).to_owned();
                let next = self.next_code(name_i + 1)?;
                if self.text(next) == ";" {
                    self.pos = next + 1;
                    return finish(
                        self,
                        ItemKind::Mod,
                        name,
                        None,
                        Vec::new(),
                        Vec::new(),
                        next,
                    );
                }
                if self.text(next) != "{" {
                    return None;
                }
                self.pos = next + 1;
                let children = self.parse_block(kw_line);
                let close = self.next_code(self.pos)?;
                self.pos = close + 1;
                finish(self, ItemKind::Mod, name, None, Vec::new(), children, close)
            }
            "use" => {
                let mut k = self.next_code(i + 1)?;
                let mut path = String::new();
                while self.text(k) != ";" {
                    if self.text(k) == "{" {
                        let close = self.match_delim(k, "{", "}")?;
                        path.push_str(&self.flatten(k, close + 1));
                        k = self.next_code(close + 1)?;
                        continue;
                    }
                    path.push_str(self.text(k));
                    k = self.next_code(k + 1)?;
                }
                self.pos = k + 1;
                finish(self, ItemKind::Use, path, None, Vec::new(), Vec::new(), k)
            }
            "const" | "static" => {
                // (`const fn` was already folded into modifiers above,
                // so reaching here means a value item.)
                let name_i = self.next_code(i + 1)?;
                // `static mut NAME` / `const _:`.
                let name_i = if self.text(name_i) == "mut" {
                    self.next_code(name_i + 1)?
                } else {
                    name_i
                };
                let name = self.text(name_i).to_owned();
                let end = self.skip_to_semi(name_i + 1)?;
                self.pos = end + 1;
                let kind = if kw == "const" {
                    ItemKind::Const
                } else {
                    ItemKind::Static
                };
                finish(self, kind, name, None, Vec::new(), Vec::new(), end)
            }
            "type" => {
                let name_i = self.next_code(i + 1)?;
                let name = self.text(name_i).to_owned();
                let end = self.skip_to_semi(name_i + 1)?;
                self.pos = end + 1;
                finish(
                    self,
                    ItemKind::TypeAlias,
                    name,
                    None,
                    Vec::new(),
                    Vec::new(),
                    end,
                )
            }
            "macro_rules" => {
                let bang = self.next_code(i + 1)?;
                let name_i = self.next_code(bang + 1)?;
                let name = self.text(name_i).to_owned();
                let open = self.next_code(name_i + 1)?;
                let close = match self.text(open) {
                    "{" => self.match_delim(open, "{", "}")?,
                    "(" => self.match_delim(open, "(", ")")?,
                    _ => return None,
                };
                self.pos = close + 1;
                finish(
                    self,
                    ItemKind::Macro,
                    name,
                    None,
                    Vec::new(),
                    Vec::new(),
                    close,
                )
            }
            "{" if saw_extern => {
                let close = self.match_delim(i, "{", "}")?;
                self.pos = close + 1;
                finish(
                    self,
                    ItemKind::ExternBlock,
                    String::new(),
                    None,
                    Vec::new(),
                    Vec::new(),
                    close,
                )
            }
            _ => {
                let _ = (saw_const, saw_extern);
                None
            }
        }
    }

    /// Function signature: tokens from after the name up to the body
    /// `{` or terminating `;`, with nested delimiters matched so a
    /// `where` clause or default-arg expression can't derail it.
    /// Returns (signature texts, index of `{` or `;`).
    fn fn_signature(&self, mut k: usize) -> Option<(Vec<String>, usize)> {
        let mut sig = Vec::new();
        loop {
            k = self.next_code(k)?;
            match self.text(k) {
                "{" | ";" => return Some((sig, k)),
                "<" => {
                    let close = self.match_angle(k)?;
                    for x in k..=close {
                        if !self.toks[x].is_comment() {
                            sig.push(self.text(x).to_owned());
                        }
                    }
                    k = self.next_code(close + 1)?;
                }
                "(" | "[" => {
                    let (o, c) = if self.text(k) == "(" {
                        ("(", ")")
                    } else {
                        ("[", "]")
                    };
                    let close = self.match_delim(k, o, c)?;
                    for x in k..=close {
                        if !self.toks[x].is_comment() {
                            sig.push(self.text(x).to_owned());
                        }
                    }
                    k = self.next_code(close + 1)?;
                }
                "" => return None,
                t => {
                    sig.push(t.to_owned());
                    k = self.next_code(k + 1)?;
                }
            }
        }
    }

    /// Skips a struct/enum/trait body: `;`, `(…);`, or `{…}`. Steps
    /// over generics and a `where` clause. Returns the end index.
    fn skip_type_body(&self, mut k: usize) -> Option<usize> {
        loop {
            k = self.next_code(k)?;
            match self.text(k) {
                ";" => return Some(k),
                "{" => return self.match_delim(k, "{", "}"),
                "(" => {
                    // Tuple struct: the `;` after the paren list.
                    let close = self.match_delim(k, "(", ")")?;
                    k = self.next_code(close + 1)?;
                }
                "<" => k = self.next_code(self.match_angle(k)? + 1)?,
                "[" => k = self.next_code(self.match_delim(k, "[", "]")? + 1)?,
                "" => return None,
                _ => k = self.next_code(k + 1)?,
            }
        }
    }

    /// Skips to the `;` ending a const/static/type item, matching
    /// nested delimiters (initializer expressions may hold blocks).
    fn skip_to_semi(&self, mut k: usize) -> Option<usize> {
        loop {
            k = self.next_code(k)?;
            match self.text(k) {
                ";" => return Some(k),
                "{" => k = self.next_code(self.match_delim(k, "{", "}")? + 1)?,
                "(" => k = self.next_code(self.match_delim(k, "(", ")")? + 1)?,
                "[" => k = self.next_code(self.match_delim(k, "[", "]")? + 1)?,
                "" => return None,
                _ => k = self.next_code(k + 1)?,
            }
        }
    }

    /// Matches `open` at index `at` to its closing `close`, ignoring
    /// comments. Returns the close index.
    fn match_delim(&self, at: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0usize;
        let mut k = at;
        loop {
            let t = self.text(k);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            } else if t.is_empty() {
                return None;
            }
            k = self.next_code(k + 1)?;
        }
    }

    /// Matches a `<` to its `>`, tolerating shift-like sequences (the
    /// lexer emits `<` and `>` as single punct tokens, so `>>` arrives
    /// as two tokens and plain depth counting works). `->`/`=>` arrive
    /// pre-joined by the lexer and never miscount.
    fn match_angle(&self, at: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut k = at;
        loop {
            match self.text(k) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                "(" => k = self.match_delim(k, "(", ")")?,
                "[" => k = self.match_delim(k, "[", "]")?,
                ";" | "{" | "" => return None, // bailed: not generics
                _ => {}
            }
            k = self.next_code(k + 1)?;
        }
    }

    /// Flattens tokens `[from, to)` to a single spaced string
    /// (comments skipped).
    fn flatten(&self, from: usize, to: usize) -> String {
        let mut s = String::new();
        for t in &self.toks[from.min(self.toks.len())..to.min(self.toks.len())] {
            if t.is_comment() {
                continue;
            }
            if !s.is_empty()
                && t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                && s.chars()
                    .last()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '"')
            {
                s.push(' ');
            }
            s.push_str(&t.text);
        }
        s
    }

    /// Outer doc comments in the contiguous comment run directly above
    /// the token at `start`, concatenated.
    fn docs_above(&self, start: usize) -> String {
        let mut doc_parts: Vec<&str> = Vec::new();
        let first_line = self.toks[start].line;
        let mut expect = first_line;
        for t in self.toks[..start].iter().rev() {
            if !t.is_comment() || t.end_line + 1 < expect {
                break;
            }
            expect = t.line;
            if t.kind == TokenKind::DocOuter {
                doc_parts.push(&t.text);
            }
        }
        doc_parts.reverse();
        doc_parts.join("\n")
    }

    /// First line of the doc/attr run above `start` (for `start_line`).
    fn doc_start_line(&self, start: usize) -> u32 {
        let mut line = self.toks[start].line;
        let mut expect = line;
        for t in self.toks[..start].iter().rev() {
            if !t.is_comment() || t.end_line + 1 < expect {
                break;
            }
            expect = t.line;
            line = t.line;
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&lex(src))
    }

    #[test]
    fn parses_fns_with_signatures() {
        let items = parse("pub fn add(a: u64, b: u64) -> u64 {\n    a + b\n}\n");
        assert_eq!(items.len(), 1);
        let f = &items[0];
        assert_eq!(f.kind, ItemKind::Fn);
        assert_eq!(f.name, "add");
        assert!(f.vis_pub);
        assert_eq!(f.line, 1);
        assert_eq!(f.end_line, 3);
        assert!(f.sig.contains(&"u64".to_owned()));
    }

    #[test]
    fn parses_generic_fn_and_where_clause() {
        let src = "fn map<T: Clone, U>(x: Vec<T>, f: impl Fn(T) -> U) -> Vec<U>\nwhere\n    U: Default,\n{\n    vec![]\n}\n";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "map");
        assert_eq!(items[0].end_line, 6);
    }

    #[test]
    fn parses_structs_enums_docs_attrs() {
        let src = "\
/// A counter. MERGEABLE.
#[derive(Debug, Clone)]
pub struct Counter {
    total: u64,
}

enum Op { Read, Write }

struct Unit;
struct Pair(u32, u32);
";
        let items = parse(src);
        assert_eq!(items.len(), 4);
        assert_eq!(items[0].kind, ItemKind::Struct);
        assert_eq!(items[0].name, "Counter");
        assert!(items[0].doc.contains("MERGEABLE"));
        assert!(items[0].has_attr("derive"));
        assert_eq!(items[0].start_line, 1);
        assert_eq!(items[0].line, 3);
        assert_eq!(items[0].end_line, 5);
        assert_eq!(items[1].kind, ItemKind::Enum);
        assert_eq!(items[2].name, "Unit");
        assert_eq!(items[3].name, "Pair");
    }

    #[test]
    fn parses_impl_blocks_with_children() {
        let src = "\
impl Counter {
    pub fn merge(&mut self, other: &Counter) {}
}

impl Default for Counter {
    fn default() -> Self { Counter }
}

impl<T: Copy> From<Vec<T>> for Holder<T> {
    fn from(v: Vec<T>) -> Self { Holder(v) }
}
";
        let items = parse(src);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].name, "Counter");
        assert_eq!(items[0].trait_name, None);
        assert_eq!(items[0].children.len(), 1);
        assert_eq!(items[0].children[0].name, "merge");
        assert!(items[0].children[0].vis_pub);
        assert_eq!(items[1].trait_name.as_deref(), Some("Default"));
        assert_eq!(items[1].name, "Counter");
        assert_eq!(items[2].trait_name.as_deref(), Some("From"));
        assert_eq!(items[2].name, "Holder");
    }

    #[test]
    fn parses_mods_uses_consts() {
        let src = "\
mod helpers;

pub mod inner {
    pub const LIMIT: usize = 8;
    static TABLE: [u8; 2] = [0, 1];
}

use std::collections::{BTreeMap, BTreeSet};
type Alias = u64;
";
        let items = parse(src);
        assert_eq!(items.len(), 4);
        assert_eq!(items[0].kind, ItemKind::Mod);
        assert_eq!(items[0].name, "helpers");
        let inner = &items[1];
        assert_eq!(inner.children.len(), 2);
        assert_eq!(inner.children[0].kind, ItemKind::Const);
        assert_eq!(inner.children[0].name, "LIMIT");
        assert_eq!(inner.children[1].kind, ItemKind::Static);
        assert_eq!(items[2].kind, ItemKind::Use);
        assert!(items[2].name.contains("BTreeMap"));
        assert_eq!(items[3].kind, ItemKind::TypeAlias);
    }

    #[test]
    fn unsafe_and_target_feature_fns() {
        let src = "\
#[target_feature(enable = \"avx2\")]
pub unsafe fn kernel(p: *const u8) -> u64 { 0 }

unsafe extern \"C\" { fn mmap() -> i32; }
";
        let items = parse(src);
        assert_eq!(items[0].kind, ItemKind::Fn);
        assert!(items[0].is_unsafe);
        assert!(items[0].has_attr("target_feature"));
        assert!(items[0].has_attr("avx2"));
        assert_eq!(items[1].kind, ItemKind::ExternBlock);
        assert!(items[1].is_unsafe);
    }

    #[test]
    fn enclosing_chain_walks_nesting() {
        let src = "\
mod outer {
    impl Thing {
        fn leaf(&self) {
            work();
        }
    }
}
";
        let items = parse(src);
        let chain = enclosing_chain(&items, 4);
        let names: Vec<&str> = chain.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "Thing", "leaf"]);
        assert!(enclosing_chain(&items, 200).is_empty());
    }

    #[test]
    fn garbage_never_panics() {
        for src in [
            "fn",
            "impl",
            "struct {",
            "fn f(",
            "pub pub pub",
            "mod m { fn g( }",
            "#[",
            "use a::",
            "macro_rules! m",
            "} } }",
            "const X",
            "impl<T for {}",
        ] {
            let _ = parse(src);
        }
    }

    #[test]
    fn const_fn_is_a_fn() {
        let items = parse("pub const fn id(x: u8) -> u8 { x }\nconst K: u8 = 1;\n");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Fn);
        assert_eq!(items[0].name, "id");
        assert_eq!(items[1].kind, ItemKind::Const);
    }
}
