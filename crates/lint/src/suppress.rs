//! Inline suppression: `// cbs-lint: allow(<rule>[, <rule>…]) -- <why>`.
//!
//! A trailing suppression applies to its own line; a standalone
//! suppression comment applies to the next line that carries code.
//! Every suppression must justify itself after `--` (enforced as the
//! `suppression-justification` pseudo-rule) and must actually suppress
//! something (enforced as `unused-suppression`), so allows cannot rot.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// The marker that introduces a suppression inside a comment.
pub const MARKER: &str = "cbs-lint:";

/// One parsed suppression comment.
#[derive(Debug)]
pub struct Suppression {
    /// Rules this comment allows.
    pub rules: Vec<String>,
    /// Line of the comment itself.
    pub comment_line: u32,
    /// Column of the comment itself.
    pub comment_col: u32,
    /// Line the suppression applies to.
    pub applies_to: u32,
    /// Justification text after `--` (empty when missing).
    pub justification: String,
    /// Set while matching diagnostics; unused suppressions are reported.
    pub used: bool,
}

/// Extracts all suppressions from a file's comments. Malformed
/// `cbs-lint:` comments are reported as `malformed-suppression`.
pub fn collect(file: &SourceFile, diags: &mut Vec<Diagnostic>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, tok) in file.tokens.iter().enumerate() {
        // Only plain comments carry suppressions: doc comments that
        // *describe* the syntax (like this module's) must not count.
        if tok.kind != TokenKind::Comment || !tok.text.contains(MARKER) {
            continue;
        }
        match parse(&tok.text) {
            Some((rules, justification)) => {
                // Trailing means code precedes the comment on its own
                // line. Compare against `end_line`: a multi-line token
                // (raw string, block comment) *ends* on the suppression's
                // line even though it *starts* earlier.
                let trailing = file.tokens[..idx]
                    .iter()
                    .rev()
                    .take_while(|t| t.end_line == tok.line)
                    .any(|t| !t.is_comment());
                let applies_to = if trailing {
                    tok.line
                } else {
                    // Standalone: the next line that carries a
                    // non-comment token.
                    file.tokens[idx + 1..]
                        .iter()
                        .find(|t| !t.is_comment())
                        .map_or(tok.line + 1, |t| t.line)
                };
                out.push(Suppression {
                    rules,
                    comment_line: tok.line,
                    comment_col: tok.col,
                    applies_to,
                    justification,
                    used: false,
                });
            }
            None => {
                diags.push(Diagnostic::error(
                    file.path.clone(),
                    tok.line,
                    tok.col,
                    "malformed-suppression",
                    format!(
                        "cannot parse suppression; expected \
                         `{MARKER} allow(<rule>[, <rule>]) -- <justification>`"
                    ),
                ));
            }
        }
    }
    out
}

/// Parses the body of a suppression comment; returns the allowed rules
/// and the justification (possibly empty).
fn parse(comment: &str) -> Option<(Vec<String>, String)> {
    let after = comment.split(MARKER).nth(1)?.trim_start();
    let body = after.strip_prefix("allow")?.trim_start();
    let body = body.strip_prefix('(')?;
    let close = body.find(')')?;
    let rules: Vec<String> = body[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let rest = body[close + 1..].trim();
    let justification = rest
        .strip_prefix("--")
        .map(|j| j.trim().to_owned())
        .unwrap_or_default();
    Some((rules, justification))
}

/// Filters `diags`, dropping ones covered by a suppression (marking it
/// used), then appends `unused-suppression` / missing-justification
/// findings.
pub fn apply(
    file: &SourceFile,
    mut suppressions: Vec<Suppression>,
    diags: Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    let mut kept = Vec::with_capacity(diags.len());
    for d in diags {
        let mut suppressed = false;
        for s in &mut suppressions {
            if s.applies_to == d.line && s.rules.iter().any(|r| r == d.rule) {
                s.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(d);
        }
    }
    for s in &suppressions {
        if !s.used {
            kept.push(Diagnostic::error(
                file.path.clone(),
                s.comment_line,
                s.comment_col,
                "unused-suppression",
                format!(
                    "suppression for {} matches no diagnostic on line {}; remove it",
                    s.rules.join(", "),
                    s.applies_to
                ),
            ));
        } else if s.justification.is_empty() {
            kept.push(Diagnostic::error(
                file.path.clone(),
                s.comment_line,
                s.comment_col,
                "suppression-justification",
                "suppression has no justification; append `-- <why this is sound>`",
            ));
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_and_justification() {
        let (rules, j) =
            parse("// cbs-lint: allow(no-unwrap-in-lib, no-panic-in-lib) -- invariant: set above")
                .expect("parses");
        assert_eq!(rules, vec!["no-unwrap-in-lib", "no-panic-in-lib"]);
        assert_eq!(j, "invariant: set above");
    }

    #[test]
    fn missing_allow_is_malformed() {
        assert!(parse("// cbs-lint: disable(no-unwrap-in-lib)").is_none());
        assert!(parse("// cbs-lint: allow()").is_none());
    }

    #[test]
    fn trailing_vs_standalone_target_lines() {
        let src = "\
let a = 1; // cbs-lint: allow(rule-a) -- why
// cbs-lint: allow(rule-b) -- why
let b = 2;
";
        let f = SourceFile::from_text("crates/core/src/x.rs", src);
        let mut diags = Vec::new();
        let sups = collect(&f, &mut diags);
        assert!(diags.is_empty());
        assert_eq!(sups.len(), 2);
        assert_eq!(sups[0].applies_to, 1);
        assert_eq!(sups[1].applies_to, 3);
    }

    #[test]
    fn trailing_after_multi_line_token_applies_to_own_line() {
        // The raw string starts on line 1 and ends on line 3; the
        // suppression is a *trailing* comment on line 3 (code precedes
        // it on that line), not a standalone one for line 4.
        let src = "let s = r#\"one\ntwo\nthree\"#; // cbs-lint: allow(rule-a) -- why\nlet t = 4;\n";
        let f = SourceFile::from_text("crates/core/src/x.rs", src);
        let mut diags = Vec::new();
        let sups = collect(&f, &mut diags);
        assert!(diags.is_empty());
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].comment_line, 3);
        assert_eq!(sups[0].applies_to, 3, "trailing, not standalone");
    }

    #[test]
    fn suppression_on_last_line_of_file() {
        // Trailing on the very last line (no trailing newline): works.
        let src = "let a = 1; // cbs-lint: allow(rule-a) -- why";
        let f = SourceFile::from_text("crates/core/src/x.rs", src);
        let mut diags = Vec::new();
        let sups = collect(&f, &mut diags);
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].applies_to, 1);
        let out = apply(
            &f,
            sups,
            vec![Diagnostic::error(f.path.clone(), 1, 5, "rule-a", "m")],
        );
        assert!(out.is_empty());

        // Standalone on the last line with no code after it: nothing to
        // apply to, so it must surface as unused rather than silently
        // vanish or panic.
        let src = "let a = 1;\n// cbs-lint: allow(rule-a) -- why";
        let f = SourceFile::from_text("crates/core/src/x.rs", src);
        let mut diags = Vec::new();
        let sups = collect(&f, &mut diags);
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].applies_to, 3, "points past EOF");
        let out = apply(&f, sups, Vec::new());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unused-suppression");
    }

    #[test]
    fn stacked_suppressions_cover_one_line() {
        // Two standalone suppression comments stacked above one line:
        // both apply to it, and each is tracked for use independently.
        let src = "\
// cbs-lint: allow(rule-a) -- first
// cbs-lint: allow(rule-b) -- second
let x = 1;
";
        let f = SourceFile::from_text("crates/core/src/x.rs", src);
        let mut diags = Vec::new();
        let sups = collect(&f, &mut diags);
        assert!(diags.is_empty());
        assert_eq!(sups.len(), 2);
        assert_eq!(sups[0].applies_to, 3);
        assert_eq!(sups[1].applies_to, 3);
        // Both rules fire on line 3: both suppressions used, no output.
        let hits = vec![
            Diagnostic::error(f.path.clone(), 3, 1, "rule-a", "m"),
            Diagnostic::error(f.path.clone(), 3, 1, "rule-b", "m"),
        ];
        let mut pre = Vec::new();
        let out = apply(&f, collect(&f, &mut pre), hits);
        assert!(out.is_empty());
        // Only rule-a fires: rule-b's suppression is unused.
        let hits = vec![Diagnostic::error(f.path.clone(), 3, 1, "rule-a", "m")];
        let out = apply(&f, sups, hits);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unused-suppression");
        assert!(out[0].message.contains("rule-b"));

        // Block-comment suppressions sharing a line with the code they
        // cover: both are standalone (no code *before* them) and the
        // "next code" is the same line.
        let src = "/* cbs-lint: allow(rule-a) -- a */ /* cbs-lint: allow(rule-b) -- b */ f();\n";
        let f = SourceFile::from_text("crates/core/src/x.rs", src);
        let mut pre = Vec::new();
        let sups = collect(&f, &mut pre);
        assert_eq!(sups.len(), 2);
        assert!(sups.iter().all(|s| s.applies_to == 1));
    }

    #[test]
    fn unused_suppression_fires_inside_cfg_test_modules() {
        // Most rules exempt test code, which makes suppressions there
        // especially prone to rot; unused-suppression must still fire.
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let a = 1; // cbs-lint: allow(rule-a) -- stale
        assert_eq!(a, 1);
    }
}
";
        let f = SourceFile::from_text("crates/core/src/x.rs", src);
        assert!(f.in_test_code(5), "fixture line must be in test code");
        let mut pre = Vec::new();
        let sups = collect(&f, &mut pre);
        assert_eq!(sups.len(), 1);
        let out = apply(&f, sups, Vec::new());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unused-suppression");
    }

    #[test]
    fn unused_and_unjustified_are_reported() {
        let src = "\
let a = 1; // cbs-lint: allow(rule-a)
";
        let f = SourceFile::from_text("crates/core/src/x.rs", src);
        let mut pre = Vec::new();
        let sups = collect(&f, &mut pre);
        // One diagnostic on line 1 for rule-a: suppressed, but the
        // suppression lacks a justification.
        let diags = vec![Diagnostic::error(f.path.clone(), 1, 9, "rule-a", "m")];
        let out = apply(&f, sups, diags);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "suppression-justification");

        // No diagnostic at all: the suppression is unused.
        let mut pre2 = Vec::new();
        let sups2 = collect(&f, &mut pre2);
        let out2 = apply(&f, sups2, Vec::new());
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].rule, "unused-suppression");
    }
}
