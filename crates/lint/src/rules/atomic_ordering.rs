//! `atomic-ordering-audit`: every atomic `Ordering::*` site must be
//! covered by an `// ORDERING:` justification.
//!
//! Memory orderings are the easiest concurrency decision to cargo-cult:
//! `Relaxed` copied from a counter into a flag, `SeqCst` sprinkled "to
//! be safe". The audit mirrors the `SAFETY:` machinery of
//! `forbid-unsafe-header` with one extra coverage position, because
//! orderings usually come in coherent per-type families: a comment is
//! covering when it sits
//!
//! 1. on the site's own line,
//! 2. in the contiguous comment/attribute block directly above the
//!    site, or
//! 3. in the block directly above any *enclosing item's* declaration
//!    (fn, impl, mod — via the item parser), so one `// ORDERING:`
//!    on an `impl Counter` justifies the whole counter protocol
//!    instead of demanding twenty copies.
//!
//! Stale `ORDERING:` comments (covering no site) are errors, exactly
//! like stale `SAFETY:` comments. Test code is exempt.
//!
//! Only the five atomic variants (`Relaxed`, `Acquire`, `Release`,
//! `AcqRel`, `SeqCst`) count; `cmp::Ordering` paths never match, and
//! `use` declarations are not sites.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::parser::ItemKind;
use crate::rules::Rule;
use crate::source::SourceFile;

/// The marker an ordering justification must carry.
pub const MARKER: &str = "ORDERING:";

/// Atomic memory-ordering variants.
const VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// See module docs.
#[derive(Debug)]
pub struct AtomicOrderingAudit;

/// One `Ordering::*` use site, as reported by
/// [`ordering_sites`] (also the basis of `--ordering-inventory`).
#[derive(Debug)]
pub struct OrderingSite {
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the `Ordering` token.
    pub col: u32,
    /// The variant (`Relaxed`, …).
    pub variant: &'static str,
}

/// All atomic-ordering sites in a file, test code included (the rule
/// filters; the inventory reports everything).
pub fn ordering_sites(file: &SourceFile) -> Vec<OrderingSite> {
    let toks: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    for w in toks.windows(3) {
        if w[0].text != "Ordering" || w[1].text != "::" {
            continue;
        }
        let Some(&variant) = VARIANTS.iter().find(|v| **v == w[2].text) else {
            continue;
        };
        // `use …::Ordering::Relaxed;` declares, it doesn't decide.
        if file
            .enclosing_items(w[0].line)
            .last()
            .is_some_and(|i| i.kind == ItemKind::Use)
        {
            continue;
        }
        out.push(OrderingSite {
            line: w[0].line,
            col: w[0].col,
            variant,
        });
    }
    out
}

impl Rule for AtomicOrderingAudit {
    fn name(&self) -> &'static str {
        "atomic-ordering-audit"
    }

    fn description(&self) -> &'static str {
        "atomic Ordering::* sites need a covering // ORDERING: justification"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if !file.is_library_code() {
            return;
        }
        // Per-line facts, as in forbid-unsafe-header: doc comments are
        // prose and neither carry nor satisfy an obligation.
        let mut comment_lines: BTreeSet<u32> = BTreeSet::new();
        let mut ordering_lines: BTreeMap<u32, u32> = BTreeMap::new(); // line -> col
        let mut first_code: BTreeMap<u32, &str> = BTreeMap::new();
        for t in &file.tokens {
            if t.is_comment() {
                comment_lines.insert(t.line);
                if !t.is_doc() && t.text.contains(MARKER) {
                    ordering_lines.entry(t.line).or_insert(t.col);
                }
            } else {
                first_code.entry(t.line).or_insert(t.text.as_str());
            }
        }
        let attr_only = |line: u32| first_code.get(&line) == Some(&"#");

        let mut used: BTreeSet<u32> = BTreeSet::new();
        for site in ordering_sites(file) {
            if file.in_test_code(site.line) {
                continue;
            }
            let mut covered = ordering_lines.contains_key(&site.line);
            if covered {
                used.insert(site.line);
            }
            // Contiguous comment/attr block directly above the site.
            let mut l = site.line;
            while l > 1 {
                l -= 1;
                if comment_lines.contains(&l) {
                    if ordering_lines.contains_key(&l) {
                        used.insert(l);
                        covered = true;
                    }
                } else if !attr_only(l) {
                    break;
                }
            }
            // The block above each enclosing item's declaration:
            // start_line already includes the contiguous doc/attr/
            // comment run above the keyword.
            for item in file.enclosing_items(site.line) {
                for (&l, _) in ordering_lines.range(item.start_line..=item.line) {
                    used.insert(l);
                    covered = true;
                }
            }
            if !covered {
                diags.push(Diagnostic::error(
                    file.path.clone(),
                    site.line,
                    site.col,
                    self.name(),
                    format!(
                        "Ordering::{} needs a covering `// ORDERING:` comment \
                         (this line, the block above, or above the enclosing \
                         fn/impl/mod)",
                        site.variant
                    ),
                ));
            }
        }

        for (&line, &col) in &ordering_lines {
            if !used.contains(&line) && !file.in_test_code(line) {
                diags.push(Diagnostic::error(
                    file.path.clone(),
                    line,
                    col,
                    self.name(),
                    "// ORDERING: comment does not cover any atomic ordering site",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text("crates/obs/src/x.rs", src);
        let mut d = Vec::new();
        AtomicOrderingAudit.check_file(&f, &mut d);
        d
    }

    #[test]
    fn bare_site_fires() {
        let d = run("fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Relaxed)\n}\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Relaxed"));
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn same_line_and_block_above_cover() {
        assert!(run(
            "fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Relaxed) // ORDERING: monotonic counter, no sync\n}\n"
        )
        .is_empty());
        assert!(run(
            "fn f(a: &AtomicU64) -> u64 {\n    // ORDERING: monotonic counter, no sync\n    a.load(Ordering::Relaxed)\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn enclosing_item_header_covers_whole_impl() {
        let src = "\
// ORDERING: counters are independent monotonic cells; Relaxed
// everywhere because no other memory is published through them.
impl Counter {
    fn add(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }
    fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn fn_header_covers_body_sites() {
        let src = "\
impl Counter {
    // ORDERING: read-only snapshot, Relaxed suffices.
    fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
    fn add(&self) {
        self.v.fetch_add(1, Ordering::SeqCst);
    }
}
";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("SeqCst"));
    }

    #[test]
    fn stale_ordering_comment_fires() {
        let d = run("// ORDERING: justifies nothing.\nfn f() {}\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("does not cover"));
    }

    #[test]
    fn use_declarations_and_cmp_ordering_are_not_sites() {
        assert!(run("use std::sync::atomic::Ordering::Relaxed;\nfn f() {}\n").is_empty());
        assert!(run(
            "fn f(o: core::cmp::Ordering) -> bool {\n    o == core::cmp::Ordering::Less\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        a.load(Ordering::Acquire);
    }
}
";
        assert!(run(src).is_empty());
        let f = SourceFile::from_text(
            "crates/obs/tests/x.rs",
            "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n",
        );
        let mut d = Vec::new();
        AtomicOrderingAudit.check_file(&f, &mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn inventory_reports_all_sites() {
        let f = SourceFile::from_text(
            "crates/obs/src/x.rs",
            "fn f(a: &AtomicU64) {\n    a.load(Ordering::Relaxed);\n    a.store(1, Ordering::Release);\n}\n",
        );
        let sites = ordering_sites(&f);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].variant, "Relaxed");
        assert_eq!(sites[1].variant, "Release");
    }
}
