//! `no-adhoc-timing`: forbid ad-hoc `std::time::Instant` in library
//! code outside `cbs-obs`.
//!
//! Pipeline stages must publish their timings through the `cbs-obs`
//! primitives (`Stopwatch`, `SpanTimer`) so every measurement lands in
//! a registry export instead of a one-off local variable — `cbs-obs`'s
//! `timer` module is the single clock-reading site in the workspace.
//! Binaries and tests may time things however they like; library code
//! that genuinely needs a raw `Instant` must justify it with
//! `// cbs-lint: allow(no-adhoc-timing) -- <why>`.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// See module docs.
#[derive(Debug)]
pub struct NoAdhocTiming;

impl Rule for NoAdhocTiming {
    fn name(&self) -> &'static str {
        "no-adhoc-timing"
    }

    fn description(&self) -> &'static str {
        "forbid std::time::Instant in non-test library code outside cbs-obs"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if !file.is_library_code() || file.crate_name == "obs" {
            return;
        }
        for tok in file.tokens.iter().filter(|t| !t.is_comment()) {
            if tok.text == "Instant" && !file.in_test_code(tok.line) {
                diags.push(Diagnostic::error(
                    file.path.clone(),
                    tok.line,
                    tok.col,
                    self.name(),
                    "ad-hoc `Instant` in library code; time through cbs-obs \
                     (`Stopwatch` / `SpanTimer`) so the measurement reaches a registry"
                        .to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text(path, src);
        let mut d = Vec::new();
        NoAdhocTiming.check_file(&f, &mut d);
        d
    }

    #[test]
    fn fires_on_instant_in_lib() {
        let d = run(
            "crates/core/src/x.rs",
            "use std::time::Instant;\nfn f() { let t = Instant::now(); }",
        );
        assert_eq!(d.len(), 2, "use path and call site");
        assert_eq!(d[0].rule, "no-adhoc-timing");
    }

    #[test]
    fn obs_crate_is_the_allowed_clock_site() {
        assert!(run(
            "crates/obs/src/timer.rs",
            "use std::time::Instant;\nfn f() { let _ = Instant::now(); }",
        )
        .is_empty());
    }

    #[test]
    fn bins_and_tests_may_time_freely() {
        assert!(run(
            "crates/bench/src/bin/ingest_perf.rs",
            "use std::time::Instant;",
        )
        .is_empty());
        assert!(run(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}",
        )
        .is_empty());
    }

    #[test]
    fn comments_and_docs_are_fine() {
        assert!(run(
            "crates/core/src/x.rs",
            "/// Unlike `Instant`, this is registry-backed.\n// Instant\nfn f() {}",
        )
        .is_empty());
    }
}
