//! `no-panic-in-lib`: forbid panicking macros in library code.
//!
//! `panic!`, `unimplemented!`, and `todo!` are never acceptable on a
//! library path of a long-running analysis pipeline; reachable failures
//! must be typed errors. `unreachable!` is also flagged so that every
//! genuinely-unreachable arm carries an explicit
//! `// cbs-lint: allow(no-panic-in-lib) -- <invariant>` justification.
//! `assert!`/`debug_assert!` are allowed (contract checks).

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

const BANNED: &[&str] = &["panic", "unimplemented", "todo", "unreachable"];

/// See module docs.
#[derive(Debug)]
pub struct NoPanicInLib;

impl Rule for NoPanicInLib {
    fn name(&self) -> &'static str {
        "no-panic-in-lib"
    }

    fn description(&self) -> &'static str {
        "forbid panic!/unimplemented!/todo!/unreachable! in non-test library code"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if !file.is_library_code() {
            return;
        }
        let toks: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        for w in toks.windows(2) {
            let (name, bang) = (&w[0], &w[1]);
            if bang.text == "!"
                && BANNED.contains(&name.text.as_str())
                && !file.in_test_code(name.line)
            {
                diags.push(Diagnostic::error(
                    file.path.clone(),
                    name.line,
                    name.col,
                    self.name(),
                    format!(
                        "`{}!` in library code; return a typed error (or, if truly \
                         unreachable, justify with a suppression)",
                        name.text
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text(path, src);
        let mut d = Vec::new();
        NoPanicInLib.check_file(&f, &mut d);
        d
    }

    #[test]
    fn fires_on_each_banned_macro() {
        let d = run(
            "crates/core/src/x.rs",
            "fn f() { panic!(\"x\"); todo!(); unimplemented!(); unreachable!(); }",
        );
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn asserts_and_negation_are_fine() {
        assert!(run(
            "crates/core/src/x.rs",
            "fn f(a: bool) { assert!(a); debug_assert!(a); let b = !a; }",
        )
        .is_empty());
    }

    #[test]
    fn panic_in_comment_or_doc_is_fine() {
        assert!(run(
            "crates/core/src/x.rs",
            "/// # Panics\n/// Panics via panic! when misused.\n// panic! here too\nfn f() {}",
        )
        .is_empty());
    }
}
