//! `no-float-eq`: no direct `==`/`!=` against float literals.
//!
//! Exact float equality in metric code is almost always a latent bug —
//! accumulated rounding turns `ratio == 1.0` false on real data. The
//! rule flags comparisons where either operand is a float literal
//! (`x == 0.0`, `1.5 != y`, `y != -2.5`); compare with an epsilon, or
//! suppress with a justification where an exact sentinel is intended.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::Rule;
use crate::source::SourceFile;

/// See module docs.
#[derive(Debug)]
pub struct NoFloatEq;

impl Rule for NoFloatEq {
    fn name(&self) -> &'static str {
        "no-float-eq"
    }

    fn description(&self) -> &'static str {
        "forbid ==/!= against float literals in library code; use an epsilon"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if !file.is_library_code() {
            return;
        }
        let toks: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        for (i, tok) in toks.iter().enumerate() {
            if tok.text != "==" && tok.text != "!=" {
                continue;
            }
            if file.in_test_code(tok.line) {
                continue;
            }
            let lhs_float = i > 0 && toks[i - 1].kind == TokenKind::Num && toks[i - 1].is_float;
            // RHS may carry a unary minus: `x == -1.5`.
            let mut j = i + 1;
            if j < toks.len() && toks[j].text == "-" {
                j += 1;
            }
            let rhs_float = j < toks.len() && toks[j].kind == TokenKind::Num && toks[j].is_float;
            if lhs_float || rhs_float {
                diags.push(Diagnostic::error(
                    file.path.clone(),
                    tok.line,
                    tok.col,
                    self.name(),
                    format!(
                        "direct `{}` against a float literal; compare with an epsilon \
                         (or justify an exact sentinel with a suppression)",
                        tok.text
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text("crates/stats/src/x.rs", src);
        let mut d = Vec::new();
        NoFloatEq.check_file(&f, &mut d);
        d
    }

    #[test]
    fn fires_on_literal_comparisons() {
        assert_eq!(run("fn f(x: f64) -> bool { x == 0.0 }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { 1.5 != x }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x == -2.5e3 }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x != 1f64 }").len(), 1);
    }

    #[test]
    fn integer_comparisons_are_fine() {
        assert!(run("fn f(x: u64) -> bool { x == 0 }").is_empty());
        assert!(run("fn f(x: u64) -> bool { x != 0x1e5 }").is_empty());
    }

    #[test]
    fn ordering_comparisons_are_fine() {
        assert!(run("fn f(x: f64) -> bool { x <= 0.5 || x >= 1.5 }").is_empty());
    }
}
