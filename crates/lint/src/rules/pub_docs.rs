//! `pub-item-docs`: public items of the foundation crates must be
//! documented.
//!
//! `cbs-trace`, `cbs-core`, `cbs-stats`, `cbs-obs`, `cbs-cache`, and
//! `cbs-replay` are the API surface every downstream consumer builds
//! on; an undocumented public `fn`, `struct`, `enum`, or `trait` there
//! is treated as a defect, not a style nit. `pub(crate)`/`pub(super)`
//! items are not public API and are exempt.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Crates whose public surface must be fully documented.
const DOCUMENTED_CRATES: &[&str] = &["trace", "core", "stats", "obs", "cache", "replay"];

/// Modifier keywords that may sit between `pub` and the item keyword.
const MODIFIERS: &[&str] = &["const", "unsafe", "async", "extern"];

/// Item keywords the rule covers.
const ITEM_KINDS: &[&str] = &["fn", "struct", "enum", "trait"];

/// See module docs.
#[derive(Debug)]
pub struct PubItemDocs;

impl Rule for PubItemDocs {
    fn name(&self) -> &'static str {
        "pub-item-docs"
    }

    fn description(&self) -> &'static str {
        "public fn/struct/enum/trait in cbs-trace/core/stats/obs/cache must have doc comments"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if !file.is_library_code() || !DOCUMENTED_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].kind != TokenKind::Ident || toks[i].text != "pub" {
                continue;
            }
            if file.in_test_code(toks[i].line) {
                continue;
            }
            // Forward scan (skipping comments): restricted visibility
            // (`pub(crate)` etc.) is not public API.
            let mut j = i + 1;
            let mut kind: Option<(&str, &str)> = None; // (item kw, name)
            let mut restricted = false;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_comment() {
                    j += 1;
                    continue;
                }
                if t.text == "(" && kind.is_none() {
                    restricted = true;
                    break;
                }
                if MODIFIERS.contains(&t.text.as_str()) || t.kind == TokenKind::Str {
                    j += 1; // `pub const fn`, `pub extern "C" fn`, ...
                    continue;
                }
                if ITEM_KINDS.contains(&t.text.as_str()) {
                    let name = toks[j + 1..]
                        .iter()
                        .find(|n| !n.is_comment())
                        .map_or("", |n| n.text.as_str());
                    kind = Some((t.text.as_str(), name));
                }
                break;
            }
            let Some((item_kind, item_name)) = kind else {
                continue;
            };
            if restricted || has_doc(file, i) {
                continue;
            }
            diags.push(Diagnostic::error(
                file.path.clone(),
                toks[i].line,
                toks[i].col,
                self.name(),
                format!("public `{item_kind} {item_name}` has no doc comment (`///`)"),
            ));
        }
    }
}

/// Walks backwards from the `pub` token at `idx`, skipping attributes
/// (`#[…]`, including `#[doc = "…"]` which counts as documentation),
/// looking for an outer doc comment.
fn has_doc(file: &SourceFile, idx: usize) -> bool {
    let toks = &file.tokens;
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = &toks[i];
        if t.kind == TokenKind::DocOuter {
            return true;
        }
        if t.is_comment() {
            continue; // plain comments between docs and item are fine
        }
        if t.text == "]" {
            // Skip the attribute `#[…]`; `#[doc…]` counts as docs.
            let mut depth = 1usize;
            let mut saw_doc = false;
            while i > 0 && depth > 0 {
                i -= 1;
                match toks[i].text.as_str() {
                    "]" => depth += 1,
                    "[" => depth -= 1,
                    "doc" => saw_doc = true,
                    _ => {}
                }
            }
            if saw_doc {
                return true;
            }
            // Step back over the introducing `#`.
            if i > 0 && toks[i - 1].text == "#" {
                i -= 1;
            }
            continue;
        }
        return false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text(path, src);
        let mut d = Vec::new();
        PubItemDocs.check_file(&f, &mut d);
        d
    }

    #[test]
    fn undocumented_pub_fn_fires() {
        let d = run("crates/core/src/x.rs", "pub fn f() {}");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`fn f`"), "{}", d[0].message);
    }

    #[test]
    fn documented_items_pass() {
        assert!(run(
            "crates/core/src/x.rs",
            "/// Does f.\npub fn f() {}\n/// S.\n#[derive(Debug)]\npub struct S;\n",
        )
        .is_empty());
    }

    #[test]
    fn attribute_between_doc_and_item_is_skipped() {
        assert!(run(
            "crates/core/src/x.rs",
            "/// Docs.\n#[derive(Debug, Clone)]\n#[must_use]\npub struct S;\n",
        )
        .is_empty());
    }

    #[test]
    fn doc_attr_counts_as_docs() {
        assert!(run(
            "crates/core/src/x.rs",
            "#[doc = \"generated docs\"]\npub fn f() {}\n",
        )
        .is_empty());
    }

    #[test]
    fn restricted_visibility_is_exempt() {
        assert!(run(
            "crates/core/src/x.rs",
            "pub(crate) fn f() {}\npub(super) struct S;\n",
        )
        .is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_exempt() {
        assert!(run("crates/synth/src/x.rs", "pub fn f() {}").is_empty());
    }

    #[test]
    fn pub_use_and_mod_are_exempt() {
        assert!(run(
            "crates/core/src/x.rs",
            "pub use foo::Bar;\npub mod baz;\npub const X: u32 = 1;\n",
        )
        .is_empty());
    }

    #[test]
    fn pub_const_fn_needs_docs() {
        let d = run("crates/core/src/x.rs", "pub const fn f() -> u32 { 1 }");
        assert_eq!(d.len(), 1);
    }
}
