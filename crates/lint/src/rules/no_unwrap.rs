//! `no-unwrap-in-lib`: forbid `.unwrap()` / `.expect(…)` in library code.
//!
//! One stray `unwrap()` deep in a shard worker kills hours of streaming
//! analysis with no diagnostic; library crates must propagate errors so
//! callers choose the failure policy. Test, bench, example, and binary
//! code is exempt.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// See module docs.
#[derive(Debug)]
pub struct NoUnwrapInLib;

impl Rule for NoUnwrapInLib {
    fn name(&self) -> &'static str {
        "no-unwrap-in-lib"
    }

    fn description(&self) -> &'static str {
        "forbid .unwrap()/.expect() in non-test library code; propagate errors instead"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if !file.is_library_code() {
            return;
        }
        let toks: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        for w in toks.windows(3) {
            let (dot, name, paren) = (&w[0], &w[1], &w[2]);
            if dot.text == "."
                && paren.text == "("
                && (name.text == "unwrap" || name.text == "expect")
                && !file.in_test_code(name.line)
            {
                diags.push(Diagnostic::error(
                    file.path.clone(),
                    name.line,
                    name.col,
                    self.name(),
                    format!(
                        "`.{}(…)` in library code; propagate with `?` or handle the \
                         `None`/`Err` case",
                        name.text
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text(path, src);
        let mut d = Vec::new();
        NoUnwrapInLib.check_file(&f, &mut d);
        d
    }

    #[test]
    fn fires_on_unwrap_and_expect_in_lib() {
        let d = run(
            "crates/core/src/x.rs",
            "fn f() { a.unwrap(); b.expect(\"m\"); }",
        );
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].rule, "no-unwrap-in-lib");
    }

    #[test]
    fn silent_in_tests_bins_and_strings() {
        assert!(run("crates/core/tests/t.rs", "fn f() { a.unwrap(); }").is_empty());
        assert!(run("crates/core/src/bin/x.rs", "fn f() { a.unwrap(); }").is_empty());
        assert!(run(
            "crates/core/src/x.rs",
            r#"fn f() { let s = "never .unwrap() here"; }"#
        )
        .is_empty());
        assert!(run(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n fn f() { a.unwrap(); }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        assert!(run(
            "crates/core/src/x.rs",
            "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }",
        )
        .is_empty());
    }
}
