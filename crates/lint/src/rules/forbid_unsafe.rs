//! `forbid-unsafe-header`: every workspace crate root must carry
//! `#![forbid(unsafe_code)]`, and the few files that opt out must
//! justify every unsafe site.
//!
//! `#![deny(unsafe_code)]` is accepted as a root fallback, but only
//! when a justifying comment sits on the attribute's line or the line
//! above (some crates need deny-with-local-allow rather than forbid).
//!
//! Inside library files the rule then audits the opted-out surface,
//! mirroring the header's suppression machinery at item granularity:
//!
//! - every `unsafe` block / `unsafe impl` / `unsafe extern` needs a
//!   `// SAFETY:` comment on its line or in the contiguous run of
//!   comment and attribute lines directly above it (`unsafe fn`
//!   declarations are exempt — their obligation sits at call sites);
//! - every `allow(unsafe_code)` needs a justifying comment in the same
//!   positions;
//! - a `// SAFETY:` comment that covers no unsafe site is itself an
//!   error, so stale justifications cannot linger after a refactor.
//!
//! Test code is exempt throughout.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// See module docs.
#[derive(Debug)]
pub struct ForbidUnsafeHeader;

/// What kind of unsafe surface a site exposes, which decides the
/// justification it needs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Site {
    /// An `unsafe` keyword (block, impl, extern): needs `// SAFETY:`.
    Keyword,
    /// An `allow(unsafe_code)` suppression: needs any comment.
    Suppress,
}

impl Rule for ForbidUnsafeHeader {
    fn name(&self) -> &'static str {
        "forbid-unsafe-header"
    }

    fn description(&self) -> &'static str {
        "crate roots must forbid unsafe_code; opted-out unsafe sites need SAFETY comments"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        let is_crate_root = file.path.contains("crates/")
            && (file.path.ends_with("/src/lib.rs") || file.path.ends_with("/src/main.rs"));
        if is_crate_root {
            self.check_root_header(file, diags);
        }
        if file.is_library_code() {
            self.check_unsafe_sites(file, diags);
        }
    }
}

impl ForbidUnsafeHeader {
    fn check_root_header(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        let toks: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        for w in toks.windows(8) {
            let texts: Vec<&str> = w.iter().map(|t| t.text.as_str()).collect();
            if texts[0] == "#"
                && texts[1] == "!"
                && texts[2] == "["
                && (texts[3] == "forbid" || texts[3] == "deny")
                && texts[4] == "("
                && texts[5] == "unsafe_code"
                && texts[6] == ")"
                && texts[7] == "]"
            {
                if texts[3] == "forbid" {
                    return; // satisfied
                }
                // deny: require a justifying comment on this line or
                // the line above.
                let attr_line = w[0].line;
                let justified = file
                    .tokens
                    .iter()
                    .any(|t| t.is_comment() && (t.line == attr_line || t.line + 1 == attr_line));
                if justified {
                    return;
                }
                diags.push(Diagnostic::error(
                    file.path.clone(),
                    attr_line,
                    w[0].col,
                    self.name(),
                    "#![deny(unsafe_code)] needs a comment justifying why \
                     #![forbid(unsafe_code)] is not usable",
                ));
                return;
            }
        }
        diags.push(Diagnostic::error(
            file.path.clone(),
            1,
            1,
            self.name(),
            "crate root is missing #![forbid(unsafe_code)]",
        ));
    }

    fn check_unsafe_sites(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        // Per-line facts. Doc comments are prose, not justifications:
        // they neither carry a safety obligation nor satisfy one.
        let mut comment_lines: BTreeSet<u32> = BTreeSet::new();
        let mut plain_comment_lines: BTreeSet<u32> = BTreeSet::new();
        let mut safety_lines: BTreeMap<u32, u32> = BTreeMap::new(); // line -> col
        let mut first_code: BTreeMap<u32, &str> = BTreeMap::new();
        for t in &file.tokens {
            if t.is_comment() {
                comment_lines.insert(t.line);
                if !t.is_doc() {
                    plain_comment_lines.insert(t.line);
                    if t.text.contains("SAFETY:") {
                        safety_lines.entry(t.line).or_insert(t.col);
                    }
                }
            } else {
                first_code.entry(t.line).or_insert(t.text.as_str());
            }
        }
        // A line holding only attributes may sit between a site and its
        // justification (safety comment above `#[allow(unsafe_code)]`
        // above the unsafe keyword), so the upward walk steps over it.
        let attr_only = |line: u32| first_code.get(&line) == Some(&"#");

        let toks: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        let mut sites: Vec<(u32, u32, Site)> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            // `unsafe fn` is a declaration: the body's operations still
            // need their own justified blocks (or the fn is itself the
            // documented contract), and call sites carry the proof.
            if t.text == "unsafe" && toks.get(i + 1).map(|n| n.text.as_str()) != Some("fn") {
                sites.push((t.line, t.col, Site::Keyword));
            }
        }
        for w in toks.windows(4) {
            if w[0].text == "allow"
                && w[1].text == "("
                && w[2].text == "unsafe_code"
                && w[3].text == ")"
            {
                sites.push((w[0].line, w[0].col, Site::Suppress));
            }
        }
        sites.sort_unstable();

        let mut used_safety: BTreeSet<u32> = BTreeSet::new();
        for &(line, col, kind) in &sites {
            if file.in_test_code(line) {
                continue;
            }
            // A trailing comment on the site's own line counts, then
            // the contiguous block of comment/attribute lines above.
            let mut justified = match kind {
                Site::Keyword => safety_lines.contains_key(&line),
                Site::Suppress => plain_comment_lines.contains(&line),
            };
            if safety_lines.contains_key(&line) {
                used_safety.insert(line);
            }
            let mut l = line;
            while l > 1 {
                l -= 1;
                if comment_lines.contains(&l) {
                    if safety_lines.contains_key(&l) {
                        used_safety.insert(l);
                        justified = true;
                    } else if kind == Site::Suppress && plain_comment_lines.contains(&l) {
                        justified = true;
                    }
                } else if !attr_only(l) {
                    break; // code or a blank line ends the block
                }
            }
            if !justified {
                let msg = match kind {
                    Site::Keyword => {
                        "unsafe code needs a `// SAFETY:` comment on the preceding lines"
                    }
                    Site::Suppress => "allow(unsafe_code) needs a justifying comment above it",
                };
                diags.push(Diagnostic::error(
                    file.path.clone(),
                    line,
                    col,
                    self.name(),
                    msg,
                ));
            }
        }

        for (&line, &col) in &safety_lines {
            if !used_safety.contains(&line) && !file.in_test_code(line) {
                diags.push(Diagnostic::error(
                    file.path.clone(),
                    line,
                    col,
                    self.name(),
                    "// SAFETY: comment does not cover any unsafe code",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text(path, src);
        let mut d = Vec::new();
        ForbidUnsafeHeader.check_file(&f, &mut d);
        d
    }

    #[test]
    fn forbid_satisfies() {
        assert!(run(
            "crates/core/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}",
        )
        .is_empty());
    }

    #[test]
    fn missing_header_fires() {
        let d = run("crates/core/src/lib.rs", "pub fn f() {}");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "forbid-unsafe-header");
    }

    #[test]
    fn deny_needs_justification() {
        assert_eq!(
            run("crates/core/src/lib.rs", "#![deny(unsafe_code)]\n").len(),
            1
        );
        assert!(run(
            "crates/core/src/lib.rs",
            "// compat shim needs local allow(unsafe_code)\n#![deny(unsafe_code)]\n",
        )
        .is_empty());
    }

    #[test]
    fn non_root_files_skip_header_check() {
        assert!(run("crates/core/src/streaming.rs", "pub fn f() {}").is_empty());
    }

    #[test]
    fn justified_simd_style_block_passes() {
        // The exact shape used by the SIMD dispatchers: SAFETY comment,
        // then an allow attribute, then the unsafe expression.
        let src = "\
pub fn f() -> u64 {
    // SAFETY: AVX2 support was verified at runtime on the line above.
    #[allow(unsafe_code)]
    unsafe { g() }
}
";
        assert!(run("crates/analysis/src/simd.rs", src).is_empty());
    }

    #[test]
    fn bare_unsafe_block_fires() {
        let d = run(
            "crates/analysis/src/simd.rs",
            "pub fn f() -> u64 {\n    unsafe { g() }\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("SAFETY"));
    }

    #[test]
    fn unjustified_allow_fires() {
        let d = run(
            "crates/trace/src/mmap.rs",
            "#[allow(unsafe_code)]\nmod imp {}\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("allow(unsafe_code)"));
    }

    #[test]
    fn module_level_allow_with_comment_passes() {
        let src = "\
// allow (not forbid): the whole module is FFI, each call site is
// individually justified.
#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {}
";
        assert!(run("crates/trace/src/mmap.rs", src).is_empty());
    }

    #[test]
    fn unsafe_fn_declarations_are_exempt() {
        let src = "\
/// Docs.
#[target_feature(enable = \"avx2\")]
pub unsafe fn kernel(x: u64) -> u64 {
    x
}
";
        assert!(run("crates/analysis/src/simd.rs", src).is_empty());
    }

    #[test]
    fn unsafe_impl_needs_safety() {
        let bare = "struct M;\nunsafe impl Send for M {}\n";
        assert_eq!(run("crates/trace/src/mmap.rs", bare).len(), 1);
        let ok = "struct M;\n// SAFETY: read-only pages, no interior mutability.\nunsafe impl Send for M {}\n";
        assert!(run("crates/trace/src/mmap.rs", ok).is_empty());
    }

    #[test]
    fn unused_safety_comment_fires() {
        let d = run(
            "crates/analysis/src/simd.rs",
            "// SAFETY: this justifies nothing.\npub fn f() {}\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("does not cover"));
    }

    #[test]
    fn doc_comments_are_not_safety_carriers() {
        // `SAFETY:` in prose docs is neither an obligation nor a
        // justification.
        let unused_doc = "//! Every block carries a `SAFETY:` tag.\npub fn f() {}\n";
        assert!(run("crates/trace/src/helper.rs", unused_doc).is_empty());
        let doc_above_unsafe = "/// SAFETY: docs do not justify.\nfn f() { unsafe { g() } }\n";
        assert_eq!(run("crates/trace/src/helper.rs", doc_above_unsafe).len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        unsafe { core::hint::unreachable_unchecked() }
    }
}
";
        assert!(run("crates/analysis/src/simd.rs", src).is_empty());
        assert!(run("crates/analysis/tests/x.rs", "fn f() { unsafe { g() } }\n").is_empty());
    }
}
