//! `forbid-unsafe-header`: every workspace crate root must carry
//! `#![forbid(unsafe_code)]`.
//!
//! `#![deny(unsafe_code)]` is accepted as a fallback, but only when a
//! justifying comment sits on the attribute's line or the line above
//! (some compat shims need deny-with-local-allow rather than forbid).

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// See module docs.
#[derive(Debug)]
pub struct ForbidUnsafeHeader;

impl Rule for ForbidUnsafeHeader {
    fn name(&self) -> &'static str {
        "forbid-unsafe-header"
    }

    fn description(&self) -> &'static str {
        "workspace crate roots must declare #![forbid(unsafe_code)]"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        let is_crate_root = file.path.contains("crates/")
            && (file.path.ends_with("/src/lib.rs") || file.path.ends_with("/src/main.rs"));
        if !is_crate_root {
            return;
        }
        let toks: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        for w in toks.windows(8) {
            let texts: Vec<&str> = w.iter().map(|t| t.text.as_str()).collect();
            if texts[0] == "#"
                && texts[1] == "!"
                && texts[2] == "["
                && (texts[3] == "forbid" || texts[3] == "deny")
                && texts[4] == "("
                && texts[5] == "unsafe_code"
                && texts[6] == ")"
                && texts[7] == "]"
            {
                if texts[3] == "forbid" {
                    return; // satisfied
                }
                // deny: require a justifying comment on this line or
                // the line above.
                let attr_line = w[0].line;
                let justified = file
                    .tokens
                    .iter()
                    .any(|t| t.is_comment() && (t.line == attr_line || t.line + 1 == attr_line));
                if justified {
                    return;
                }
                diags.push(Diagnostic::error(
                    file.path.clone(),
                    attr_line,
                    w[0].col,
                    self.name(),
                    "#![deny(unsafe_code)] needs a comment justifying why \
                     #![forbid(unsafe_code)] is not usable",
                ));
                return;
            }
        }
        diags.push(Diagnostic::error(
            file.path.clone(),
            1,
            1,
            self.name(),
            "crate root is missing #![forbid(unsafe_code)]",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text(path, src);
        let mut d = Vec::new();
        ForbidUnsafeHeader.check_file(&f, &mut d);
        d
    }

    #[test]
    fn forbid_satisfies() {
        assert!(run(
            "crates/core/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}",
        )
        .is_empty());
    }

    #[test]
    fn missing_header_fires() {
        let d = run("crates/core/src/lib.rs", "pub fn f() {}");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "forbid-unsafe-header");
    }

    #[test]
    fn deny_needs_justification() {
        assert_eq!(
            run("crates/core/src/lib.rs", "#![deny(unsafe_code)]\n").len(),
            1
        );
        assert!(run(
            "crates/core/src/lib.rs",
            "// compat shim needs local allow(unsafe_code)\n#![deny(unsafe_code)]\n",
        )
        .is_empty());
    }

    #[test]
    fn non_root_files_are_ignored() {
        assert!(run("crates/core/src/streaming.rs", "pub fn f() {}").is_empty());
    }
}
