//! `simd-twin-parity`: every `#[target_feature]` kernel must have a
//! scalar twin, and one test must exercise both.
//!
//! The AVX2 kernels in `crates/analysis` are trustworthy only because
//! each has a scalar twin proven bit-identical by proptest. That
//! convention — `avx2::op_len_sums` ↔ `op_len_sums_scalar`, both named
//! by one parity test — was enforced by review. This rule makes it
//! mechanical, via the symbol index:
//!
//! - every **public** `#[target_feature(...)]` function must have a
//!   twin named `<base>_scalar` in the same crate (`<base>` is the
//!   kernel's name with any `_avx2` suffix stripped);
//! - some single file's test code must mention both the kernel and
//!   the twin (macro bodies lex as ordinary tokens, so `proptest!`
//!   blocks count).
//!
//! Private helpers inside a SIMD module (e.g. `hsum_epi64`) are
//! implementation detail of a kernel that is itself checked, and are
//! exempt.

use crate::diag::Diagnostic;
use crate::index::WorkspaceIndex;
use crate::rules::Rule;

/// See module docs.
#[derive(Debug)]
pub struct SimdTwinParity;

impl Rule for SimdTwinParity {
    fn name(&self) -> &'static str {
        "simd-twin-parity"
    }

    fn description(&self) -> &'static str {
        "target_feature kernels need a <base>_scalar twin plus a shared parity test"
    }

    fn check_index(&self, index: &WorkspaceIndex<'_>, diags: &mut Vec<Diagnostic>) {
        for cx in index.crates.values() {
            for (name, sites) in &cx.fns {
                for site in sites {
                    if site.in_test
                        || !site.item.vis_pub
                        || !site.item.has_attr("target_feature")
                        || !site.file.is_library_code()
                    {
                        continue;
                    }
                    let base = name.strip_suffix("_avx2").unwrap_or(name);
                    let twin = format!("{base}_scalar");
                    if cx.lib_fns(&twin).is_empty() {
                        diags.push(Diagnostic::error(
                            site.file.path.clone(),
                            site.item.line,
                            1,
                            self.name(),
                            format!(
                                "kernel `{name}` has no scalar twin `{twin}` in this \
                                 crate; SIMD paths must be checkable against scalar \
                                 ground truth"
                            ),
                        ));
                    } else if !cx.any_test_mentions_all(&[name, &twin]) {
                        diags.push(Diagnostic::error(
                            site.file.path.clone(),
                            site.item.line,
                            1,
                            self.name(),
                            format!(
                                "no single test mentions both `{name}` and `{twin}`; \
                                 add a parity test driving the pair on shared inputs"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(files: Vec<SourceFile>) -> Vec<Diagnostic> {
        let mut d = Vec::new();
        let index = WorkspaceIndex::build(&files);
        SimdTwinParity.check_index(&index, &mut d);
        d
    }

    const KERNEL: &str = "\
pub mod avx2 {
    #[target_feature(enable = \"avx2\")]
    pub unsafe fn op_sums(p: *const u8) -> u64 { 0 }
}
pub fn op_sums_scalar(p: &[u8]) -> u64 { 0 }
";

    #[test]
    fn kernel_with_twin_and_parity_test_passes() {
        let lib = SourceFile::from_text("crates/analysis/src/simd.rs", KERNEL);
        let t = SourceFile::from_text(
            "crates/analysis/tests/parity.rs",
            "#[test]\nfn parity() { assert_eq!(unsafe { avx2::op_sums(p) }, op_sums_scalar(s)); }\n",
        );
        assert!(run(vec![lib, t]).is_empty());
    }

    #[test]
    fn missing_twin_fires() {
        let lib = SourceFile::from_text(
            "crates/analysis/src/simd.rs",
            "#[target_feature(enable = \"avx2\")]\npub unsafe fn lonely(p: *const u8) -> u64 { 0 }\n",
        );
        let d = run(vec![lib]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("lonely_scalar"));
    }

    #[test]
    fn missing_parity_test_fires() {
        let lib = SourceFile::from_text("crates/analysis/src/simd.rs", KERNEL);
        let t = SourceFile::from_text(
            "crates/analysis/tests/partial.rs",
            "#[test]\nfn only_simd() { unsafe { avx2::op_sums(p) }; }\n",
        );
        let d = run(vec![lib, t]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("no single test mentions both"));
    }

    #[test]
    fn avx2_suffix_maps_to_base_scalar_twin() {
        let lib = SourceFile::from_text(
            "crates/analysis/src/simd.rs",
            "#[target_feature(enable = \"avx2\")]\npub unsafe fn deltas_avx2(p: *const u8) {}\npub fn deltas_scalar(p: &[u8]) {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn parity() { deltas_avx2(); deltas_scalar(); }\n}\n",
        );
        assert!(run(vec![lib]).is_empty());
    }

    #[test]
    fn private_helpers_are_exempt() {
        let lib = SourceFile::from_text(
            "crates/analysis/src/simd.rs",
            "mod avx2 {\n    #[target_feature(enable = \"avx2\")]\n    unsafe fn hsum(x: u64) -> u64 { x }\n}\n",
        );
        assert!(run(vec![lib]).is_empty());
    }
}
