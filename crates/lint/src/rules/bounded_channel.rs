//! `bounded-channel`: streaming/parallel paths must use bounded
//! channels.
//!
//! An unbounded `std::sync::mpsc::channel()` between a fast producer
//! and a slow shard worker buffers the whole trace (the exact failure
//! the one-pass architecture exists to avoid); `sync_channel(depth)`
//! provides backpressure. Scoped to `crates/core/src`, the cache-sweep
//! worker fan-out under `crates/cache/src`, and the parallel decode
//! paths under `crates/trace/src/codec`.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// See module docs.
#[derive(Debug)]
pub struct BoundedChannel;

impl Rule for BoundedChannel {
    fn name(&self) -> &'static str {
        "bounded-channel"
    }

    fn description(&self) -> &'static str {
        "forbid unbounded mpsc::channel() in streaming/parallel paths; use sync_channel"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        let in_scope = file.path.contains("crates/core/src")
            || file.path.contains("crates/cache/src")
            || file.path.contains("crates/trace/src/codec");
        if !in_scope || !file.is_library_code() {
            return;
        }
        let toks: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        for w in toks.windows(3) {
            let (name, next, next2) = (&w[0], &w[1], &w[2]);
            // A call: `channel(…)` or turbofish `channel::<T>(…)`.
            let is_call = next.text == "(" || (next.text == "::" && next2.text == "<");
            if name.text == "channel" && is_call && !file.in_test_code(name.line) {
                diags.push(Diagnostic::error(
                    file.path.clone(),
                    name.line,
                    name.col,
                    self.name(),
                    "unbounded `channel()` on a streaming/parallel path; use \
                     `sync_channel(depth)` for backpressure",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text(path, src);
        let mut d = Vec::new();
        BoundedChannel.check_file(&f, &mut d);
        d
    }

    #[test]
    fn fires_on_unbounded_channel_in_core() {
        let d = run(
            "crates/core/src/streaming.rs",
            "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); }",
        );
        assert!(!d.is_empty());
    }

    #[test]
    fn sync_channel_is_fine() {
        assert!(run(
            "crates/core/src/streaming.rs",
            "fn f() { let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(4); }",
        )
        .is_empty());
    }

    #[test]
    fn fires_in_cache_sweep_paths() {
        let d = run(
            "crates/cache/src/sweep.rs",
            "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); }",
        );
        assert!(!d.is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        assert!(run(
            "crates/stats/src/summary.rs",
            "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); }",
        )
        .is_empty());
    }
}
