//! `mergeable-audit`: types tagged `MERGEABLE` must expose `merge`
//! plus an associativity test.
//!
//! ROADMAP item 1 (agent/controller fan-out) rests on one algebraic
//! fact: partial analysis states merge lawfully, so
//! `analyze(a ++ b) == merge(analyze(a), analyze(b))`. This rule
//! enforces the contract from day one. Tagging is by doc comment —
//! write `MERGEABLE` in a struct's or enum's docs (upper-case, so
//! prose mentions don't trigger) and the index-level audit requires:
//!
//! - a `merge` method in some non-test `impl` of the type, in the
//!   same crate;
//! - a test (in one file) that mentions the type, `merge`, and an
//!   identifier containing `assoc` — the shape of an associativity
//!   proptest like `counter_merge_is_associative`. Cross-crate law
//!   tests living in the repository-root `tests/` directory (indexed
//!   under the unnamed workspace crate) count for every crate.
//!
//! The audit also runs in reverse: a library type that defines a
//! `merge` method without carrying the tag is flagged — every merge
//! in the workspace must declare (and prove) its laws, so the
//! controller fold can trust any `merge` it composes. Types with
//! neither the tag nor a `merge` method are unconstrained.

use crate::diag::Diagnostic;
use crate::index::WorkspaceIndex;
use crate::rules::Rule;

/// The doc-comment tag marking a type as mergeable.
pub const TAG: &str = "MERGEABLE";

/// See module docs.
#[derive(Debug)]
pub struct MergeableAudit;

impl Rule for MergeableAudit {
    fn name(&self) -> &'static str {
        "mergeable-audit"
    }

    fn description(&self) -> &'static str {
        "MERGEABLE-tagged types need a merge method and an associativity test"
    }

    fn check_index(&self, index: &WorkspaceIndex<'_>, diags: &mut Vec<Diagnostic>) {
        // Repository-root `tests/` files index under the unnamed crate
        // (empty key); their identifiers form a workspace-wide pool of
        // associativity evidence, because cross-crate merge laws (e.g.
        // `Analysis::merge` ≡ the sequential whole) can only be pinned
        // from outside any single crate.
        let shared: &[crate::index::TestIdents] = index
            .crates
            .get("")
            .map(|cx| cx.test_idents.as_slice())
            .unwrap_or(&[]);
        for cx in index.crates.values() {
            for (name, sites) in &cx.types {
                let lib_sites: Vec<_> = sites
                    .iter()
                    .filter(|s| s.file.is_library_code() && !s.file.in_test_code(s.item.line))
                    .collect();
                let Some(first) = lib_sites.first() else {
                    continue;
                };
                let tagged = lib_sites.iter().any(|s| s.item.doc.contains(TAG));
                let has_merge = !cx.methods_named(name, "merge").is_empty();
                if !tagged {
                    if has_merge {
                        diags.push(Diagnostic::error(
                            first.file.path.clone(),
                            first.item.line,
                            1,
                            self.name(),
                            format!(
                                "type `{name}` defines `merge` but its doc lacks the \
                                 {TAG} tag — declare the merge laws (tag the type and \
                                 add an associativity test) or rename the method"
                            ),
                        ));
                    }
                    continue;
                }
                if !has_merge {
                    diags.push(Diagnostic::error(
                        first.file.path.clone(),
                        first.item.line,
                        1,
                        self.name(),
                        format!(
                            "type `{name}` is tagged {TAG} but no `impl {name}` \
                             in this crate defines `merge`"
                        ),
                    ));
                    continue;
                }
                let mentions_law = |t: &crate::index::TestIdents| {
                    t.idents.contains(name)
                        && t.idents.contains("merge")
                        && t.idents.iter().any(|i| i.to_lowercase().contains("assoc"))
                };
                let has_assoc_test =
                    cx.test_idents.iter().any(mentions_law) || shared.iter().any(mentions_law);
                if !has_assoc_test {
                    diags.push(Diagnostic::error(
                        first.file.path.clone(),
                        first.item.line,
                        1,
                        self.name(),
                        format!(
                            "type `{name}` is tagged {TAG} but no test exercises \
                             `{name}`/`merge` associativity (name the test \
                             `*_assoc*` and drive merge(merge(a,b),c) == \
                             merge(a,merge(b,c)))"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(files: Vec<SourceFile>) -> Vec<Diagnostic> {
        let mut d = Vec::new();
        let index = WorkspaceIndex::build(&files);
        MergeableAudit.check_index(&index, &mut d);
        d
    }

    const TAGGED: &str = "\
/// A running total. MERGEABLE: merging adds the totals.
pub struct Counter {
    total: u64,
}
impl Counter {
    pub fn merge(&mut self, other: &Counter) {
        self.total += other.total;
    }
}
";

    #[test]
    fn tagged_type_with_merge_and_assoc_test_passes() {
        let lib = SourceFile::from_text("crates/obs/src/metrics.rs", TAGGED);
        let t = SourceFile::from_text(
            "crates/obs/tests/merge_props.rs",
            "#[test]\nfn counter_merge_is_associative() {\n    let mut a = Counter::default();\n    a.merge(&b);\n}\n",
        );
        assert!(run(vec![lib, t]).is_empty());
    }

    #[test]
    fn tagged_type_without_merge_fires() {
        let lib = SourceFile::from_text(
            "crates/obs/src/metrics.rs",
            "/// MERGEABLE.\npub struct Gauge { v: u64 }\n",
        );
        let d = run(vec![lib]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("defines `merge`"));
    }

    #[test]
    fn tagged_type_without_assoc_test_fires() {
        let lib = SourceFile::from_text("crates/obs/src/metrics.rs", TAGGED);
        let t = SourceFile::from_text(
            "crates/obs/tests/merge_props.rs",
            "#[test]\nfn merge_works() { let mut a = Counter::default(); a.merge(&b); }\n",
        );
        let d = run(vec![lib, t]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("associativity"), "{d:?}");
    }

    #[test]
    fn untagged_types_are_unconstrained() {
        let lib = SourceFile::from_text(
            "crates/obs/src/metrics.rs",
            "/// Keeps a mergeable-looking total, but is not tagged.\npub struct Plain { v: u64 }\n",
        );
        assert!(run(vec![lib]).is_empty());
    }

    #[test]
    fn untagged_type_with_merge_method_fires_reverse_check() {
        let lib = SourceFile::from_text(
            "crates/obs/src/metrics.rs",
            "/// A total without declared laws.\npub struct Sneaky { v: u64 }\nimpl Sneaky {\n    pub fn merge(&mut self, other: &Sneaky) { self.v += other.v; }\n}\n",
        );
        let d = run(vec![lib]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("lacks the MERGEABLE tag"), "{d:?}");
    }

    #[test]
    fn root_tests_directory_supplies_assoc_evidence_workspace_wide() {
        // The associativity proptest lives at the repository root
        // (`tests/`), outside any `crates/<name>/` layout — it must
        // still satisfy the audit for the type's home crate.
        let lib = SourceFile::from_text("crates/obs/src/metrics.rs", TAGGED);
        let t = SourceFile::from_text(
            "tests/merge_laws.rs",
            "#[test]\nfn counter_merge_is_associative() {\n    let mut a = Counter::default();\n    a.merge(&b);\n}\n",
        );
        assert!(run(vec![lib, t]).is_empty());
    }

    #[test]
    fn cfg_test_assoc_module_counts() {
        let src = format!(
            "{TAGGED}#[cfg(test)]\nmod tests {{\n    #[test]\n    fn assoc_law() {{ Counter::default().merge(&o); }}\n}}\n"
        );
        let lib = SourceFile::from_text("crates/obs/src/metrics.rs", &src);
        assert!(run(vec![lib]).is_empty());
    }
}
