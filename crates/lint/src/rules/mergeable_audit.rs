//! `mergeable-audit`: types tagged `MERGEABLE` must expose `merge`
//! plus an associativity test.
//!
//! ROADMAP item 1 (agent/controller fan-out) rests on one algebraic
//! fact: partial analysis states merge lawfully, so
//! `analyze(a ++ b) == merge(analyze(a), analyze(b))`. This rule
//! enforces the contract from day one. Tagging is by doc comment —
//! write `MERGEABLE` in a struct's or enum's docs (upper-case, so
//! prose mentions don't trigger) and the index-level audit requires:
//!
//! - a `merge` method in some non-test `impl` of the type, in the
//!   same crate;
//! - a test (in one file) that mentions the type, `merge`, and an
//!   identifier containing `assoc` — the shape of an associativity
//!   proptest like `counter_merge_is_associative`.
//!
//! Untagged types are unconstrained; the tag is the opt-in.

use crate::diag::Diagnostic;
use crate::index::WorkspaceIndex;
use crate::rules::Rule;

/// The doc-comment tag marking a type as mergeable.
pub const TAG: &str = "MERGEABLE";

/// See module docs.
#[derive(Debug)]
pub struct MergeableAudit;

impl Rule for MergeableAudit {
    fn name(&self) -> &'static str {
        "mergeable-audit"
    }

    fn description(&self) -> &'static str {
        "MERGEABLE-tagged types need a merge method and an associativity test"
    }

    fn check_index(&self, index: &WorkspaceIndex<'_>, diags: &mut Vec<Diagnostic>) {
        for cx in index.crates.values() {
            for (name, sites) in &cx.types {
                for site in sites {
                    if !site.item.doc.contains(TAG)
                        || !site.file.is_library_code()
                        || site.file.in_test_code(site.item.line)
                    {
                        continue;
                    }
                    if cx.methods_named(name, "merge").is_empty() {
                        diags.push(Diagnostic::error(
                            site.file.path.clone(),
                            site.item.line,
                            1,
                            self.name(),
                            format!(
                                "type `{name}` is tagged {TAG} but no `impl {name}` \
                                 in this crate defines `merge`"
                            ),
                        ));
                        continue;
                    }
                    let has_assoc_test = cx.test_idents.iter().any(|t| {
                        t.idents.contains(name)
                            && t.idents.contains("merge")
                            && t.idents.iter().any(|i| i.to_lowercase().contains("assoc"))
                    });
                    if !has_assoc_test {
                        diags.push(Diagnostic::error(
                            site.file.path.clone(),
                            site.item.line,
                            1,
                            self.name(),
                            format!(
                                "type `{name}` is tagged {TAG} but no test exercises \
                                 `{name}`/`merge` associativity (name the test \
                                 `*_assoc*` and drive merge(merge(a,b),c) == \
                                 merge(a,merge(b,c)))"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(files: Vec<SourceFile>) -> Vec<Diagnostic> {
        let mut d = Vec::new();
        let index = WorkspaceIndex::build(&files);
        MergeableAudit.check_index(&index, &mut d);
        d
    }

    const TAGGED: &str = "\
/// A running total. MERGEABLE: merging adds the totals.
pub struct Counter {
    total: u64,
}
impl Counter {
    pub fn merge(&mut self, other: &Counter) {
        self.total += other.total;
    }
}
";

    #[test]
    fn tagged_type_with_merge_and_assoc_test_passes() {
        let lib = SourceFile::from_text("crates/obs/src/metrics.rs", TAGGED);
        let t = SourceFile::from_text(
            "crates/obs/tests/merge_props.rs",
            "#[test]\nfn counter_merge_is_associative() {\n    let mut a = Counter::default();\n    a.merge(&b);\n}\n",
        );
        assert!(run(vec![lib, t]).is_empty());
    }

    #[test]
    fn tagged_type_without_merge_fires() {
        let lib = SourceFile::from_text(
            "crates/obs/src/metrics.rs",
            "/// MERGEABLE.\npub struct Gauge { v: u64 }\n",
        );
        let d = run(vec![lib]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("defines `merge`"));
    }

    #[test]
    fn tagged_type_without_assoc_test_fires() {
        let lib = SourceFile::from_text("crates/obs/src/metrics.rs", TAGGED);
        let t = SourceFile::from_text(
            "crates/obs/tests/merge_props.rs",
            "#[test]\nfn merge_works() { let mut a = Counter::default(); a.merge(&b); }\n",
        );
        let d = run(vec![lib, t]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("associativity"), "{d:?}");
    }

    #[test]
    fn untagged_types_are_unconstrained() {
        let lib = SourceFile::from_text(
            "crates/obs/src/metrics.rs",
            "/// Keeps a mergeable-looking total, but is not tagged.\npub struct Plain { v: u64 }\n",
        );
        assert!(run(vec![lib]).is_empty());
    }

    #[test]
    fn cfg_test_assoc_module_counts() {
        let src = format!(
            "{TAGGED}#[cfg(test)]\nmod tests {{\n    #[test]\n    fn assoc_law() {{ Counter::default().merge(&o); }}\n}}\n"
        );
        let lib = SourceFile::from_text("crates/obs/src/metrics.rs", &src);
        assert!(run(vec![lib]).is_empty());
    }
}
