//! `finding-traceability`: every findings module cites its paper
//! finding, and all 15 findings are covered.
//!
//! The IISWC'20 study reports 15 numbered findings (`F1`–`F15`). Each
//! module under `crates/analysis/src/findings/` must say in a doc
//! comment which finding(s) it reproduces, and the union across modules
//! must cover all 15 — so a reader can go from any paper claim to the
//! code that checks it, and a refactor cannot silently drop one.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Number of findings in the paper.
pub const FINDING_COUNT: u32 = 15;

const FINDINGS_DIR: &str = "crates/analysis/src/findings/";

/// See module docs.
#[derive(Debug)]
pub struct FindingTraceability;

impl Rule for FindingTraceability {
    fn name(&self) -> &'static str {
        "finding-traceability"
    }

    fn description(&self) -> &'static str {
        "findings modules must cite paper finding IDs (F1-F15); all 15 must be covered"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if !file.path.contains(FINDINGS_DIR) || file.is_test_path {
            return;
        }
        if cited_ids(file).is_empty() {
            diags.push(Diagnostic::error(
                file.path.clone(),
                1,
                1,
                self.name(),
                format!(
                    "findings module cites no paper finding ID; add e.g. `//! … (F7)` \
                     (F1-F{FINDING_COUNT})"
                ),
            ));
        }
    }

    fn check_workspace(&self, files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
        let findings_files: Vec<&SourceFile> = files
            .iter()
            .filter(|f| f.path.contains(FINDINGS_DIR) && !f.is_test_path)
            .collect();
        if findings_files.is_empty() {
            return; // nothing scanned; per-file runs cover fixtures
        }
        let mut covered: BTreeSet<u32> = BTreeSet::new();
        for f in &findings_files {
            covered.extend(cited_ids(f));
        }
        let missing: Vec<String> = (1..=FINDING_COUNT)
            .filter(|id| !covered.contains(id))
            .map(|id| format!("F{id}"))
            .collect();
        if !missing.is_empty() {
            let anchor = findings_files
                .iter()
                .find(|f| f.path.ends_with("/mod.rs"))
                .unwrap_or(&findings_files[0]);
            diags.push(Diagnostic::error(
                anchor.path.clone(),
                1,
                1,
                self.name(),
                format!(
                    "paper findings {} are cited by no findings module",
                    missing.join(", ")
                ),
            ));
        }
    }
}

/// Finding IDs (`1..=15`) cited in the file's doc comments as `F<n>`.
fn cited_ids(file: &SourceFile) -> BTreeSet<u32> {
    let mut ids = BTreeSet::new();
    for tok in file.tokens.iter().filter(|t| t.is_doc()) {
        let chars: Vec<char> = tok.text.chars().collect();
        for i in 0..chars.len() {
            if chars[i] != 'F' {
                continue;
            }
            if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
                continue; // part of a longer word
            }
            let digits: String = chars[i + 1..]
                .iter()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if digits.is_empty() {
                continue;
            }
            let after = chars.get(i + 1 + digits.len());
            if after.is_some_and(|c| c.is_alphanumeric() || *c == '_') {
                continue; // e.g. `F1a`
            }
            if let Ok(n) = digits.parse::<u32>() {
                if (1..=FINDING_COUNT).contains(&n) {
                    ids.insert(n);
                }
            }
        }
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::from_text(path, src)
    }

    #[test]
    fn module_without_id_fires() {
        let f = file("crates/analysis/src/findings/foo.rs", "//! No citation.\n");
        let mut d = Vec::new();
        FindingTraceability.check_file(&f, &mut d);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn module_with_id_passes() {
        let f = file(
            "crates/analysis/src/findings/foo.rs",
            "//! Reproduces Finding 7 (F7) of the paper.\n",
        );
        let mut d = Vec::new();
        FindingTraceability.check_file(&f, &mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn id_in_code_or_plain_comment_does_not_count() {
        let f = file(
            "crates/analysis/src/findings/foo.rs",
            "// F7 in a plain comment\nconst F7: u32 = 7;\n",
        );
        let mut d = Vec::new();
        FindingTraceability.check_file(&f, &mut d);
        assert_eq!(d.len(), 1, "only doc comments count");
    }

    #[test]
    fn workspace_coverage_reports_missing() {
        let a = file(
            "crates/analysis/src/findings/a.rs",
            "//! F1, F2 (also F3).\n",
        );
        let b = file(
            "crates/analysis/src/findings/mod.rs",
            "//! F4-F15? cites F4 only.\n",
        );
        let mut d = Vec::new();
        FindingTraceability.check_workspace(&[a, b], &mut d);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("F5"), "{}", d[0].message);
        assert!(!d[0].message.contains("F3,"), "{}", d[0].message);
        assert!(d[0].file.ends_with("mod.rs"));
    }

    #[test]
    fn out_of_range_and_embedded_ids_ignored() {
        let f = file(
            "crates/analysis/src/findings/foo.rs",
            "//! F16 F0 XF7 F1a are all non-citations.\n",
        );
        assert!(cited_ids(&f).is_empty());
    }
}
