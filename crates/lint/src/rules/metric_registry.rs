//! `obs-metric-registry`: every metric-name literal is registered and
//! documented exactly once.
//!
//! cbs-obs metric names are stringly-typed: `registry.counter(
//! "stream.batches")` compiles no matter what the string says, and
//! EXPERIMENTS.md documents names by hand. The two drift. This rule
//! pins both sides to one canonical table, `METRIC_NAMES` in
//! `crates/obs/src/names.rs` (`&[(&str, &str)]` of name → doc):
//!
//! - every name passed to `.counter(…)`, `.gauge(…)`, `.histogram(…)`
//!   or `.span(…)` as a string literal (directly or via `format!`)
//!   must match a registry entry exactly — `format!` interpolations
//!   normalize to `*`, so `format!("stream.shard{i}.requests")`
//!   matches the entry `stream.shard*.requests`;
//! - a registry entry no scanned code emits is stale and flagged;
//! - duplicate registry names are flagged.
//!
//! Names built from `&str` variables don't match the pattern and are
//! invisible to this rule — keep emission sites literal. When the
//! scanned set contains no `METRIC_NAMES` table (scoped runs, fixture
//! sets without one), the rule is silent.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Registry-emitting methods whose first argument is a metric name.
const EMITTERS: &[&str] = &["counter", "gauge", "histogram", "span"];

/// See module docs.
#[derive(Debug)]
pub struct ObsMetricRegistry;

struct Entry {
    name: String,
    file: String,
    line: u32,
    col: u32,
}

struct UseSite {
    name: String,
    file: String,
    line: u32,
    col: u32,
}

impl Rule for ObsMetricRegistry {
    fn name(&self) -> &'static str {
        "obs-metric-registry"
    }

    fn description(&self) -> &'static str {
        "metric-name literals must match the METRIC_NAMES registry exactly once"
    }

    fn check_workspace(&self, files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
        let mut entries: Vec<Entry> = Vec::new();
        for file in files {
            collect_registry(file, &mut entries);
        }
        if entries.is_empty() {
            return; // no registry in scope: nothing to pin against
        }
        for (i, e) in entries.iter().enumerate() {
            if entries[..i].iter().any(|p| p.name == e.name) {
                diags.push(Diagnostic::error(
                    e.file.clone(),
                    e.line,
                    e.col,
                    self.name(),
                    format!("metric `{}` is registered more than once", e.name),
                ));
            }
        }

        let mut sites: Vec<UseSite> = Vec::new();
        for file in files {
            collect_use_sites(file, &mut sites);
        }
        let mut used: BTreeSet<&str> = BTreeSet::new();
        for s in &sites {
            if let Some(e) = entries.iter().find(|e| e.name == s.name) {
                used.insert(e.name.as_str());
            } else {
                diags.push(Diagnostic::error(
                    s.file.clone(),
                    s.line,
                    s.col,
                    self.name(),
                    format!(
                        "metric `{}` is not in METRIC_NAMES; register and document \
                         it in crates/obs/src/names.rs",
                        s.name
                    ),
                ));
            }
        }
        for e in &entries {
            if !used.contains(e.name.as_str()) {
                diags.push(Diagnostic::error(
                    e.file.clone(),
                    e.line,
                    e.col,
                    self.name(),
                    format!(
                        "registered metric `{}` is emitted by no scanned code; \
                         remove the stale entry",
                        e.name
                    ),
                ));
            }
        }
    }
}

/// Parses `METRIC_NAMES: &[(&str, &str)] = &[("name", "doc"), …]`
/// entries out of a file's token stream.
fn collect_registry(file: &SourceFile, entries: &mut Vec<Entry>) {
    if !file.is_library_code() {
        return;
    }
    let toks: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    let Some(start) = toks.iter().position(|t| t.text == "METRIC_NAMES") else {
        return;
    };
    // Find the initializer's opening `[` (after `=`), then walk tuples
    // until its matching `]`.
    let Some(eq) = toks[start..].iter().position(|t| t.text == "=") else {
        return;
    };
    let Some(open) = toks[start + eq..].iter().position(|t| t.text == "[") else {
        return;
    };
    let mut depth = 0usize;
    let mut i = start + eq + open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "(" if depth == 1 => {
                // Tuple: first Str is the metric name.
                if let Some(t) = toks.get(i + 1) {
                    if t.kind == TokenKind::Str {
                        entries.push(Entry {
                            name: unquote(&t.text),
                            file: file.path.clone(),
                            line: t.line,
                            col: t.col,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Collects `.counter("…")`-shaped emission sites (literal or
/// `format!`-built names) from non-test library code.
fn collect_use_sites(file: &SourceFile, sites: &mut Vec<UseSite>) {
    if !file.is_library_code() {
        return;
    }
    let toks: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in toks.iter().enumerate() {
        if !EMITTERS.contains(&t.text.as_str())
            || i == 0
            || toks[i - 1].text != "."
            || toks.get(i + 1).map(|n| n.text.as_str()) != Some("(")
            || file.in_test_code(t.line)
        {
            continue;
        }
        // First argument: `"lit"`, `format!("lit…", …)`, or
        // `&format!(…)`.
        let mut j = i + 2;
        if toks.get(j).map(|n| n.text.as_str()) == Some("&") {
            j += 1;
        }
        let name = match toks.get(j) {
            Some(s) if s.kind == TokenKind::Str => Some((normalize(&unquote(&s.text)), *s)),
            Some(f) if f.text == "format" => match toks.get(j + 3) {
                // format ! ( "lit"
                Some(s) if s.kind == TokenKind::Str => Some((normalize(&unquote(&s.text)), *s)),
                _ => None,
            },
            _ => None,
        };
        if let Some((name, at)) = name {
            sites.push(UseSite {
                name,
                file: file.path.clone(),
                line: at.line,
                col: at.col,
            });
        }
    }
}

/// Strips the surrounding quotes off a string-literal token.
fn unquote(text: &str) -> String {
    text.trim_start_matches('"')
        .trim_end_matches('"')
        .to_owned()
}

/// Replaces every `{…}` interpolation with `*` (and unescapes `{{`).
fn normalize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut chars = name.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
                out.push('{');
            }
            '{' => {
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                }
                out.push('*');
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
                out.push('}');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: Vec<SourceFile>) -> Vec<Diagnostic> {
        let mut d = Vec::new();
        ObsMetricRegistry.check_workspace(&files, &mut d);
        d
    }

    const REGISTRY: &str = "\
/// Canonical metric names.
pub const METRIC_NAMES: &[(&str, &str)] = &[
    (\"decode.batches\", \"batches decoded\"),
    (\"stream.shard*.requests\", \"per-shard request count\"),
];
";

    #[test]
    fn registered_literal_and_format_sites_pass() {
        let names = SourceFile::from_text("crates/obs/src/names.rs", REGISTRY);
        let user = SourceFile::from_text(
            "crates/core/src/streaming.rs",
            "fn f(r: &Registry, i: usize) {\n    r.counter(\"decode.batches\");\n    r.counter(&format!(\"stream.shard{i}.requests\"));\n}\n",
        );
        assert!(run(vec![names, user]).is_empty());
    }

    #[test]
    fn unregistered_name_fires() {
        let names = SourceFile::from_text("crates/obs/src/names.rs", REGISTRY);
        let user = SourceFile::from_text(
            "crates/core/src/streaming.rs",
            "fn f(r: &Registry) {\n    r.counter(\"decode.batches\");\n    r.gauge(\"stream.shard0.requests\");\n    r.counter(\"surprise.metric\");\n}\n",
        );
        let d = run(vec![names, user]);
        // `stream.shard0.requests` is a literal, not a format!, so it
        // does not normalize to the wildcard entry — by design: emit
        // wildcard families through format!. That in turn leaves the
        // wildcard entry unemitted here, so it reports stale.
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("surprise.metric")));
        assert!(d
            .iter()
            .any(|x| x.message.contains("stream.shard0.requests")));
        assert!(d
            .iter()
            .any(|x| x.message.contains("emitted by no scanned code")));
    }

    #[test]
    fn stale_and_duplicate_entries_fire() {
        let names = SourceFile::from_text(
            "crates/obs/src/names.rs",
            "pub const METRIC_NAMES: &[(&str, &str)] = &[\n    (\"a.b\", \"doc\"),\n    (\"a.b\", \"doc again\"),\n    (\"never.emitted\", \"doc\"),\n];\n",
        );
        let user = SourceFile::from_text(
            "crates/core/src/x.rs",
            "fn f(r: &Registry) { r.counter(\"a.b\"); }\n",
        );
        let d = run(vec![names, user]);
        assert!(
            d.iter().any(|x| x.message.contains("more than once")),
            "{d:?}"
        );
        assert!(
            d.iter().any(|x| x.message.contains("never.emitted")),
            "{d:?}"
        );
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn silent_without_registry_in_scope() {
        let user = SourceFile::from_text(
            "crates/core/src/x.rs",
            "fn f(r: &Registry) { r.counter(\"anything.goes\"); }\n",
        );
        assert!(run(vec![user]).is_empty());
    }

    #[test]
    fn test_code_sites_are_exempt() {
        let names = SourceFile::from_text(
            "crates/obs/src/names.rs",
            "pub const METRIC_NAMES: &[(&str, &str)] = &[(\"decode.batches\", \"doc\")];\n",
        );
        let user = SourceFile::from_text(
            "crates/core/src/x.rs",
            "fn f(r: &Registry) { r.counter(\"decode.batches\"); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t(r: &Registry) { r.counter(\"ad.hoc.test.metric\"); }\n}\n",
        );
        assert!(run(vec![names, user]).is_empty());
    }

    #[test]
    fn normalize_handles_interpolations_and_escapes() {
        assert_eq!(
            normalize("stream.shard{i}.requests"),
            "stream.shard*.requests"
        );
        assert_eq!(normalize("plain.name"), "plain.name");
        assert_eq!(normalize("odd.{{literal}}.braces"), "odd.{literal}.braces");
        assert_eq!(normalize("a.{x:>8}.b"), "a.*.b");
    }
}
