//! `channel-discipline`: semantic upgrade of `bounded-channel` — every
//! `send`/`try_send` result must reach an error path.
//!
//! PR 4 made streaming fail-fast: a worker that dies must poison the
//! session, not silently drop batches. That only works if no send
//! result is discarded. This rule traces the construct→send→error-path
//! chain at token level:
//!
//! - a `.send(…)` / `.try_send(…)` whose `Result` is dropped (`;`
//!   right after the call), discarded (`.ok();`), shrugged off
//!   (`let _ = …`), or panicked through (`.unwrap()` / `.expect(…)`)
//!   is a violation — propagate with `?`, branch on
//!   `.is_err()`/`.is_ok()`, or `match`/`if let` on it;
//! - a library file that *constructs* a bounded channel
//!   (`sync_channel`) but contains no send site at all gets a
//!   file-level diagnostic: the sender leaves the file unobserved, so
//!   its error path cannot be audited here (justify with a
//!   suppression naming where the sends live, or move them).
//!
//! Test code is exempt; `bounded-channel` (CBS-L05) still polices
//! *which* constructor is allowed.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// See module docs.
#[derive(Debug)]
pub struct ChannelDiscipline;

impl Rule for ChannelDiscipline {
    fn name(&self) -> &'static str {
        "channel-discipline"
    }

    fn description(&self) -> &'static str {
        "send/try_send results must be handled; constructed channels need visible send sites"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if !file.is_library_code() {
            return;
        }
        let toks: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        let mut construct_site: Option<(u32, u32)> = None;
        let mut send_sites = 0usize;

        for (i, t) in toks.iter().enumerate() {
            if t.text == "sync_channel" && !file.in_test_code(t.line) && construct_site.is_none() {
                // A type ascription (`Receiver<T>` in a signature)
                // mentions no constructor; require a call `(`.
                if toks.get(i + 1).map(|n| n.text.as_str()) == Some("(") {
                    construct_site = Some((t.line, t.col));
                }
            }
            if (t.text == "send" || t.text == "try_send")
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
                && !file.in_test_code(t.line)
            {
                send_sites += 1;
                // `let _ =` first: its trailing `;` would otherwise
                // read as a plain drop and mislabel the message.
                if let Some(problem) = let_underscore_before(&toks, i.saturating_sub(1))
                    .or_else(|| misuse_after_call(&toks, i + 1))
                {
                    diags.push(Diagnostic::error(
                        file.path.clone(),
                        t.line,
                        t.col,
                        self.name(),
                        format!(
                            "{}(…) result is {problem}; propagate the error or \
                             branch on it (the receiver may be gone — that is \
                             the poison path)",
                            t.text
                        ),
                    ));
                }
            }
        }

        if let Some((line, col)) = construct_site {
            if send_sites == 0 {
                diags.push(Diagnostic::error(
                    file.path.clone(),
                    line,
                    col,
                    self.name(),
                    "bounded channel is constructed here but no send site exists \
                     in this file; its error path cannot be audited",
                ));
            }
        }
    }
}

/// Looks past the call's argument list: returns a description of the
/// misuse, or `None` when the result is handled.
fn misuse_after_call(toks: &[&crate::lexer::Token], open: usize) -> Option<&'static str> {
    // Match the argument parens.
    let mut depth = 0usize;
    let mut k = open;
    loop {
        match toks.get(k)?.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        k += 1;
    }
    let after: Vec<&str> = toks[k + 1..]
        .iter()
        .take(4)
        .map(|t| t.text.as_str())
        .collect();
    match after.as_slice() {
        [";", ..] => Some("dropped on the floor"),
        [".", "ok", "(", ")"] => Some("discarded via .ok()"),
        [".", "unwrap", "(", ")"] => Some("panicked through with .unwrap()"),
        [".", "expect", "(", ..] => Some("panicked through with .expect()"),
        _ => None,
    }
}

/// Was the statement holding index `i` opened with `let _ =`?
fn let_underscore_before(toks: &[&crate::lexer::Token], i: usize) -> Option<&'static str> {
    // Walk back to the statement boundary.
    let mut j = i;
    while j > 0 {
        let t = toks[j - 1].text.as_str();
        if matches!(t, ";" | "{" | "}") {
            break;
        }
        j -= 1;
    }
    let stmt: Vec<&str> = toks[j..=i.min(toks.len() - 1)]
        .iter()
        .take(3)
        .map(|t| t.text.as_str())
        .collect();
    if stmt.starts_with(&["let", "_", "="]) {
        Some("shrugged off with `let _ =`")
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text("crates/core/src/x.rs", src);
        let mut d = Vec::new();
        ChannelDiscipline.check_file(&f, &mut d);
        d
    }

    #[test]
    fn dropped_send_fires() {
        let d = run("fn f(tx: &Sender<u32>) {\n    tx.send(1);\n}\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("dropped"));
    }

    #[test]
    fn discarded_and_panicking_sends_fire() {
        assert!(run("fn f(tx: &S) { tx.send(1).ok(); }\n")[0]
            .message
            .contains(".ok()"));
        assert!(run("fn f(tx: &S) { tx.try_send(1).unwrap(); }\n")[0]
            .message
            .contains("unwrap"));
        assert!(run("fn f(tx: &S) { tx.send(1).expect(\"boom\"); }\n")[0]
            .message
            .contains("expect"));
        assert!(run("fn f(tx: &S) { let _ = tx.send(1); }\n")[0]
            .message
            .contains("let _ ="));
    }

    #[test]
    fn handled_sends_pass() {
        assert!(
            run("fn f(tx: &S) -> Result<(), E> {\n    tx.send(1)?;\n    Ok(())\n}\n").is_empty()
        );
        assert!(run("fn f(tx: &S) -> bool {\n    tx.send(1).is_err()\n}\n").is_empty());
        assert!(run(
            "fn f(tx: &S) {\n    match tx.try_send(1) {\n        Ok(()) => {}\n        Err(e) => poison(e),\n    }\n}\n"
        )
        .is_empty());
        assert!(
            run("fn f(tx: &S) {\n    if tx.send(1).is_ok() {\n        advance();\n    }\n}\n")
                .is_empty()
        );
    }

    #[test]
    fn unrelated_send_free_code_passes() {
        assert!(run("fn f() { resend(); sender(); }\n").is_empty());
    }

    #[test]
    fn constructed_channel_without_send_site_fires() {
        let d = run("fn f() -> (SyncSender<u32>, Receiver<u32>) {\n    mpsc::sync_channel(8)\n}\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("no send site"));
    }

    #[test]
    fn constructed_channel_with_handled_send_passes() {
        let src = "\
fn f() -> Result<(), E> {
    let (tx, rx) = mpsc::sync_channel(8);
    tx.send(1)?;
    drop(rx);
    Ok(())
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_and_test_files_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t(tx: &S) {
        tx.send(1).unwrap();
    }
}
";
        assert!(run(src).is_empty());
        let f = SourceFile::from_text("crates/core/tests/x.rs", "fn f(tx: &S) { tx.send(1); }\n");
        let mut d = Vec::new();
        ChannelDiscipline.check_file(&f, &mut d);
        assert!(d.is_empty());
    }
}
