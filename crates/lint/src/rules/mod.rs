//! The pluggable rule set.
//!
//! A [`Rule`] pattern-matches short token sequences over lexed
//! [`SourceFile`]s and reports [`Diagnostic`]s. Per-file checks go in
//! [`Rule::check_file`]; cross-file invariants (e.g. "all 15 paper
//! findings are covered somewhere") go in [`Rule::check_workspace`].
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `no-unwrap-in-lib` | library code, non-test | `.unwrap()` / `.expect(…)` |
//! | `no-panic-in-lib` | library code, non-test | `panic!` / `unimplemented!` / `todo!` / `unreachable!` |
//! | `forbid-unsafe-header` | crate roots + library code | missing `#![forbid(unsafe_code)]`; unsafe sites and `allow(unsafe_code)` without a justifying `SAFETY` comment; stale `SAFETY` comments |
//! | `pub-item-docs` | `cbs-trace`/`core`/`stats`/`obs`/`cache` src | undocumented public items |
//! | `bounded-channel` | `crates/core` + codec paths | unbounded `mpsc::channel()` |
//! | `finding-traceability` | `crates/analysis/src/findings` | modules citing no `F1`–`F15` ID; uncovered IDs |
//! | `no-float-eq` | library code, non-test | `==`/`!=` against float literals |
//! | `no-adhoc-timing` | library code, non-test, outside `cbs-obs` | `std::time::Instant` |
//!
//! Suppression (`// cbs-lint: allow(rule) -- why`) is handled by the
//! engine, not by individual rules.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

mod bounded_channel;
mod finding_trace;
mod forbid_unsafe;
mod no_adhoc_timing;
mod no_float_eq;
mod no_panic;
mod no_unwrap;
mod pub_docs;

pub use bounded_channel::BoundedChannel;
pub use finding_trace::FindingTraceability;
pub use forbid_unsafe::ForbidUnsafeHeader;
pub use no_adhoc_timing::NoAdhocTiming;
pub use no_float_eq::NoFloatEq;
pub use no_panic::NoPanicInLib;
pub use no_unwrap::NoUnwrapInLib;
pub use pub_docs::PubItemDocs;

/// A static-analysis rule.
pub trait Rule {
    /// Kebab-case rule name, used in output and suppressions.
    fn name(&self) -> &'static str;

    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;

    /// Per-file check.
    fn check_file(&self, _file: &SourceFile, _diags: &mut Vec<Diagnostic>) {}

    /// Cross-file check, run once over the whole scanned set.
    fn check_workspace(&self, _files: &[SourceFile], _diags: &mut Vec<Diagnostic>) {}
}

/// The shipped rule set, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoUnwrapInLib),
        Box::new(NoPanicInLib),
        Box::new(ForbidUnsafeHeader),
        Box::new(PubItemDocs),
        Box::new(BoundedChannel),
        Box::new(FindingTraceability),
        Box::new(NoFloatEq),
        Box::new(NoAdhocTiming),
    ]
}
