//! The pluggable rule set.
//!
//! A [`Rule`] pattern-matches short token sequences over lexed
//! [`SourceFile`]s and reports [`Diagnostic`]s. Per-file checks go in
//! [`Rule::check_file`]; cross-file invariants (e.g. "all 15 paper
//! findings are covered somewhere") go in [`Rule::check_workspace`];
//! symbol-level invariants ("every kernel has a scalar twin") go in
//! [`Rule::check_index`], which receives the parsed
//! [`WorkspaceIndex`].
//!
//! | id | rule | scope | forbids |
//! |----|------|-------|---------|
//! | CBS-L01 | `no-unwrap-in-lib` | library code, non-test | `.unwrap()` / `.expect(…)` |
//! | CBS-L02 | `no-panic-in-lib` | library code, non-test | `panic!` / `unimplemented!` / `todo!` / `unreachable!` |
//! | CBS-L03 | `forbid-unsafe-header` | crate roots + library code | missing `#![forbid(unsafe_code)]`; unsafe sites and `allow(unsafe_code)` without a justifying `SAFETY` comment; stale `SAFETY` comments |
//! | CBS-L04 | `pub-item-docs` | `cbs-trace`/`core`/`stats`/`obs`/`cache` src | undocumented public items |
//! | CBS-L05 | `bounded-channel` | `crates/core`/`cache` + codec paths | unbounded `mpsc::channel()` |
//! | CBS-L06 | `finding-traceability` | `crates/analysis/src/findings` | modules citing no `F1`–`F15` ID; uncovered IDs |
//! | CBS-L07 | `no-float-eq` | library code, non-test | `==`/`!=` against float literals |
//! | CBS-L08 | `no-adhoc-timing` | library code, non-test, outside `cbs-obs` | `std::time::Instant` |
//! | CBS-L09 | `atomic-ordering-audit` | library code, non-test | `Ordering::*` sites without a covering `// ORDERING:` justification; stale `ORDERING:` comments |
//! | CBS-L10 | `channel-discipline` | library code, non-test | dropped/ignored `send`/`try_send` results; channels constructed but never fed |
//! | CBS-L11 | `simd-twin-parity` | per crate | `#[target_feature]` kernels without a scalar twin, or twins no single test exercises together |
//! | CBS-L12 | `obs-metric-registry` | library code, non-test | metric names absent from the `METRIC_NAMES` registry; registry entries no code emits; duplicate registry entries |
//! | CBS-L13 | `mergeable-audit` | per crate | `MERGEABLE`-tagged types without a `merge` method or an associativity test |
//!
//! Suppression (`// cbs-lint: allow(rule) -- why`) is handled by the
//! engine, not by individual rules; its pseudo-rules carry IDs too
//! (CBS-S01 `malformed-suppression`, CBS-S02 `unused-suppression`,
//! CBS-S03 `suppression-justification`).

use crate::diag::Diagnostic;
use crate::index::WorkspaceIndex;
use crate::source::SourceFile;

pub mod atomic_ordering;
mod bounded_channel;
mod channel_discipline;
mod finding_trace;
mod forbid_unsafe;
mod mergeable_audit;
mod metric_registry;
mod no_adhoc_timing;
mod no_float_eq;
mod no_panic;
mod no_unwrap;
mod pub_docs;
mod simd_twin;

pub use atomic_ordering::AtomicOrderingAudit;
pub use bounded_channel::BoundedChannel;
pub use channel_discipline::ChannelDiscipline;
pub use finding_trace::FindingTraceability;
pub use forbid_unsafe::ForbidUnsafeHeader;
pub use mergeable_audit::MergeableAudit;
pub use metric_registry::ObsMetricRegistry;
pub use no_adhoc_timing::NoAdhocTiming;
pub use no_float_eq::NoFloatEq;
pub use no_panic::NoPanicInLib;
pub use no_unwrap::NoUnwrapInLib;
pub use pub_docs::PubItemDocs;
pub use simd_twin::SimdTwinParity;

/// A static-analysis rule.
pub trait Rule {
    /// Kebab-case rule name, used in output and suppressions.
    fn name(&self) -> &'static str;

    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;

    /// Per-file check.
    fn check_file(&self, _file: &SourceFile, _diags: &mut Vec<Diagnostic>) {}

    /// Cross-file check, run once over the whole scanned set.
    fn check_workspace(&self, _files: &[SourceFile], _diags: &mut Vec<Diagnostic>) {}

    /// Symbol-level check over the parsed per-crate index, run once.
    fn check_index(&self, _index: &WorkspaceIndex<'_>, _diags: &mut Vec<Diagnostic>) {}
}

/// Stable rule IDs, keyed by rule name. `CBS-L*` are lint rules in
/// registration order; `CBS-S*` are the engine's suppression
/// pseudo-rules. IDs are append-only: renaming a rule keeps its ID.
pub const RULE_IDS: &[(&str, &str)] = &[
    ("no-unwrap-in-lib", "CBS-L01"),
    ("no-panic-in-lib", "CBS-L02"),
    ("forbid-unsafe-header", "CBS-L03"),
    ("pub-item-docs", "CBS-L04"),
    ("bounded-channel", "CBS-L05"),
    ("finding-traceability", "CBS-L06"),
    ("no-float-eq", "CBS-L07"),
    ("no-adhoc-timing", "CBS-L08"),
    ("atomic-ordering-audit", "CBS-L09"),
    ("channel-discipline", "CBS-L10"),
    ("simd-twin-parity", "CBS-L11"),
    ("obs-metric-registry", "CBS-L12"),
    ("mergeable-audit", "CBS-L13"),
    ("malformed-suppression", "CBS-S01"),
    ("unused-suppression", "CBS-S02"),
    ("suppression-justification", "CBS-S03"),
];

/// The stable ID for a rule name (`CBS-???` for names outside the
/// table, which only fixture rules hit).
pub fn rule_id(name: &str) -> &'static str {
    RULE_IDS
        .iter()
        .find(|(n, _)| *n == name)
        .map_or("CBS-???", |(_, id)| id)
}

/// The shipped rule set, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoUnwrapInLib),
        Box::new(NoPanicInLib),
        Box::new(ForbidUnsafeHeader),
        Box::new(PubItemDocs),
        Box::new(BoundedChannel),
        Box::new(FindingTraceability),
        Box::new(NoFloatEq),
        Box::new(NoAdhocTiming),
        Box::new(AtomicOrderingAudit),
        Box::new(ChannelDiscipline),
        Box::new(SimdTwinParity),
        Box::new(ObsMetricRegistry),
        Box::new(MergeableAudit),
    ]
}

#[cfg(test)]
mod id_tests {
    use super::*;

    #[test]
    fn every_shipped_rule_has_a_stable_id() {
        for rule in all_rules() {
            assert!(
                rule_id(rule.name()) != "CBS-???",
                "rule {} missing from RULE_IDS",
                rule.name()
            );
        }
        assert_eq!(rule_id("no-such-rule"), "CBS-???");
    }

    #[test]
    fn ids_are_unique() {
        for (i, (_, a)) in RULE_IDS.iter().enumerate() {
            for (_, b) in &RULE_IDS[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
