//! Structured diagnostics and their human/JSON renderings.

use core::fmt;

/// How serious a diagnostic is. All shipped rules emit
/// [`Severity::Error`]; `Warning` exists so downstream rules can report
/// advisory findings without failing the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run (non-zero exit).
    Error,
    /// Reported but does not fail the run.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One finding: a rule fired at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// Name of the rule that fired (kebab-case).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Whether this finding fails the run.
    pub severity: Severity,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(
        file: impl Into<String>,
        line: u32,
        col: u32,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            col,
            rule,
            message: message.into(),
            severity: Severity::Error,
        }
    }

    /// Renders as one JSON object (stable field order). The `id`
    /// field is the rule's stable identifier (`CBS-L01`, …) so CI
    /// annotations can deep-link the rule catalog (DESIGN.md §15)
    /// even if a rule is ever renamed.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"id\":{},\"severity\":{},\"message\":{}}}",
            json_str(&self.file),
            self.line,
            self.col,
            json_str(self.rule),
            json_str(crate::rules::rule_id(self.rule)),
            json_str(&self.severity.to_string()),
            json_str(&self.message),
        )
    }
}

/// Renders a diagnostic list as a JSON array (the `--json` output).
pub fn to_json_array(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str("  ");
        out.push_str(&d.to_json());
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a diagnostic in the human-readable format, with the source
/// line and a caret when `source_line` is available.
pub fn render_human(d: &Diagnostic, source_line: Option<&str>) -> String {
    let mut out = format!(
        "{}[{}]: {}\n  --> {}:{}:{}\n",
        d.severity, d.rule, d.message, d.file, d.line, d.col
    );
    if let Some(src) = source_line {
        let gutter = d.line.to_string();
        let pad = " ".repeat(gutter.len());
        out.push_str(&format!("{pad} |\n{gutter} | {src}\n{pad} | "));
        out.push_str(&" ".repeat(d.col.saturating_sub(1) as usize));
        out.push_str("^\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let d = Diagnostic::error("a.rs", 1, 2, "r", "say \"hi\"\nline2");
        let j = d.to_json();
        assert!(j.contains("\\\"hi\\\""), "{j}");
        assert!(j.contains("\\n"), "{j}");
    }

    #[test]
    fn json_carries_stable_rule_id() {
        let d = Diagnostic::error("a.rs", 1, 2, "no-unwrap-in-lib", "m");
        assert!(
            d.to_json().contains("\"id\":\"CBS-L01\""),
            "{}",
            d.to_json()
        );
        let d = Diagnostic::error("a.rs", 1, 2, "unused-suppression", "m");
        assert!(
            d.to_json().contains("\"id\":\"CBS-S02\""),
            "{}",
            d.to_json()
        );
    }

    #[test]
    fn empty_array_is_flat() {
        assert_eq!(to_json_array(&[]), "[]");
    }

    #[test]
    fn human_render_has_caret_under_column() {
        let d = Diagnostic::error("a.rs", 3, 5, "no-unwrap-in-lib", "msg");
        let r = render_human(&d, Some("let x = y.unwrap();"));
        assert!(r.contains("a.rs:3:5"), "{r}");
        assert!(r.contains("    ^"), "{r}");
    }
}
