//! Volume remapping: [`Remap`] policies and the stateful
//! [`VolumeRemapper`] that applies them request-by-request.
//!
//! Remapping rewrites *where* load lands without touching *what* the
//! load is: every source request maps to exactly one output request
//! with the same op, offset, length, and timestamp — only the volume id
//! changes. That invariant is what makes replay results comparable to
//! the source analysis (total request and byte counts are preserved by
//! construction; the `remap_laws` proptests pin it down).
//!
//! The three policies are the warp-replay feature set:
//!
//! * **1→1** ([`Remap::Identity`]) — replay onto the recorded volumes;
//! * **1→N** ([`Remap::fan_out`]) — spread each source volume's
//!   requests round-robin across `n` target volumes, emulating a
//!   migration that splits one hot device across `n` devices;
//! * **N→1** ([`Remap::merge_into`]) — fold every `n` consecutive
//!   source volume ids onto one target, emulating consolidation onto
//!   fewer, larger devices.

use std::collections::HashMap;

use cbs_trace::{IoRequest, VolumeId};

use crate::error::ReplayError;

/// A volume remapping policy. See the [module docs](self) for the
/// semantics of each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Remap {
    /// 1→1: requests keep their recorded volume.
    Identity,
    /// 1→N: source volume `v` spreads round-robin over target volumes
    /// `v*n .. v*n+n`. Constructed by [`Remap::fan_out`].
    FanOut(u32),
    /// N→1: source volume `v` lands on target volume `v / n`.
    /// Constructed by [`Remap::merge_into`].
    Merge(u32),
}

impl Remap {
    /// Validated 1→N fan-out (`n >= 1`; `n == 1` degenerates to a
    /// renumbering-free identity).
    pub fn fan_out(n: u32) -> Result<Remap, ReplayError> {
        if n == 0 {
            return Err(ReplayError::InvalidRemapFactor);
        }
        Ok(Remap::FanOut(n))
    }

    /// Validated N→1 merge (`n >= 1`).
    pub fn merge_into(n: u32) -> Result<Remap, ReplayError> {
        if n == 0 {
            return Err(ReplayError::InvalidRemapFactor);
        }
        Ok(Remap::Merge(n))
    }

    /// Parses a CLI-style spec: `identity`, `fanout:N`, or `merge:N`.
    pub fn parse(spec: &str) -> Result<Remap, ReplayError> {
        if spec == "identity" {
            return Ok(Remap::Identity);
        }
        let parse_n = |s: &str| {
            s.parse::<u32>()
                .map_err(|_| ReplayError::InvalidRemapFactor)
        };
        if let Some(n) = spec.strip_prefix("fanout:") {
            return Remap::fan_out(parse_n(n)?);
        }
        if let Some(n) = spec.strip_prefix("merge:") {
            return Remap::merge_into(parse_n(n)?);
        }
        Err(ReplayError::InvalidRemapFactor)
    }

    /// Stable label for reports (`identity`, `fanout:4`, `merge:4`).
    pub fn label(&self) -> String {
        match self {
            Remap::Identity => "identity".to_string(),
            Remap::FanOut(n) => format!("fanout:{n}"),
            Remap::Merge(n) => format!("merge:{n}"),
        }
    }
}

/// Applies a [`Remap`] policy to a request stream.
///
/// Fan-out keeps one round-robin cursor per *source* volume so each
/// source volume's traffic spreads evenly over its targets regardless
/// of how volumes interleave in the stream.
#[derive(Debug)]
pub struct VolumeRemapper {
    mode: Remap,
    cursors: HashMap<u32, u32>,
}

impl VolumeRemapper {
    /// Creates a remapper for `mode`.
    pub fn new(mode: Remap) -> Self {
        VolumeRemapper {
            mode,
            cursors: HashMap::new(),
        }
    }

    /// The policy this remapper applies.
    pub fn mode(&self) -> Remap {
        self.mode
    }

    /// Maps one source request to its (single) output request.
    ///
    /// Target ids are computed in `u64` and truncated to `u32`; with
    /// the corpus sizes the workbench supports (`max_volume * n`
    /// below 2^32) no truncation occurs.
    pub fn map(&mut self, req: IoRequest) -> IoRequest {
        match self.mode {
            Remap::Identity => req,
            Remap::FanOut(n) => {
                let src = req.volume().get();
                let cursor = self.cursors.entry(src).or_insert(0);
                let lane = *cursor;
                *cursor = (*cursor + 1) % n;
                let target = (src as u64 * n as u64 + lane as u64) as u32;
                req.with_volume(VolumeId::new(target))
            }
            Remap::Merge(n) => req.with_volume(VolumeId::new(req.volume().get() / n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_trace::{OpKind, Timestamp};

    fn req(vol: u32) -> IoRequest {
        IoRequest::new(
            VolumeId::new(vol),
            OpKind::Read,
            4096,
            512,
            Timestamp::from_micros(10),
        )
    }

    #[test]
    fn identity_is_identity() {
        let mut m = VolumeRemapper::new(Remap::Identity);
        assert_eq!(m.map(req(42)), req(42));
    }

    #[test]
    fn fan_out_round_robins_per_source_volume() {
        let mut m = VolumeRemapper::new(Remap::fan_out(3).unwrap());
        // Volume 2 targets 6, 7, 8, 6, ... even with volume 5 interleaved.
        assert_eq!(m.map(req(2)).volume().get(), 6);
        assert_eq!(m.map(req(5)).volume().get(), 15);
        assert_eq!(m.map(req(2)).volume().get(), 7);
        assert_eq!(m.map(req(5)).volume().get(), 16);
        assert_eq!(m.map(req(2)).volume().get(), 8);
        assert_eq!(m.map(req(2)).volume().get(), 6);
    }

    #[test]
    fn fan_out_preserves_everything_but_volume() {
        let mut m = VolumeRemapper::new(Remap::fan_out(4).unwrap());
        let out = m.map(req(9));
        assert_eq!(out.op(), OpKind::Read);
        assert_eq!(out.offset(), 4096);
        assert_eq!(out.len(), 512);
        assert_eq!(out.ts(), Timestamp::from_micros(10));
    }

    #[test]
    fn merge_folds_consecutive_ids() {
        let mut m = VolumeRemapper::new(Remap::merge_into(4).unwrap());
        assert_eq!(m.map(req(0)).volume().get(), 0);
        assert_eq!(m.map(req(3)).volume().get(), 0);
        assert_eq!(m.map(req(4)).volume().get(), 1);
        assert_eq!(m.map(req(11)).volume().get(), 2);
    }

    #[test]
    fn zero_factors_are_rejected() {
        assert!(Remap::fan_out(0).is_err());
        assert!(Remap::merge_into(0).is_err());
        assert!(Remap::parse("fanout:0").is_err());
    }

    #[test]
    fn parse_and_label_round_trip() {
        for spec in ["identity", "fanout:4", "merge:16"] {
            assert_eq!(Remap::parse(spec).unwrap().label(), spec);
        }
        assert!(Remap::parse("bogus").is_err());
        assert!(Remap::parse("fanout:x").is_err());
    }
}
