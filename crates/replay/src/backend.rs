//! The [`StorageBackend`] trait and its three stock implementations:
//! [`NullBackend`], [`MemBackend`], and [`FileBackend`].
//!
//! A backend is the *target* of a replay: the scheduler decides *when*
//! a request is issued, the backend decides *what issuing costs*. The
//! trait is deliberately synchronous and `&mut self` — the open-loop
//! scheduler issues from one thread and measures the call's wall time
//! into the `replay.backend_nanos` histogram, so any internal
//! parallelism is a backend implementation detail.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use cbs_trace::VolumeId;

/// Page granularity of the in-memory page store (4 KiB — the paper's
/// block size for cache analyses).
pub const PAGE_BYTES: u64 = 4096;

/// A replay target: somewhere reads and writes can be issued.
///
/// Implementations return `std::io::Error` on failure; the replayer
/// wraps it with the backend's [`name`](StorageBackend::name) and
/// aborts the run — a replay that silently drops I/O would corrupt the
/// achieved-throughput claim.
pub trait StorageBackend {
    /// Short stable identifier for reports (`"null"`, `"mem"`, `"file"`).
    fn name(&self) -> &'static str;

    /// Issues a read of `len` bytes at `offset` on `volume`.
    fn read(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()>;

    /// Issues a write of `len` bytes at `offset` on `volume`.
    fn write(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()>;

    /// Makes all issued writes durable (or whatever the backend's
    /// closest notion is). Called once at the end of a replay.
    fn flush(&mut self) -> io::Result<()>;
}

/// A backend that does nothing, instantly.
///
/// This is the scheduler-calibration target: with service time pinned
/// at ~0, achieved-vs-offered throughput measures the *replay engine*,
/// not the storage — the `replay_perf` ×1000 acceptance run uses it.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullBackend;

impl NullBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        NullBackend
    }
}

impl StorageBackend for NullBackend {
    fn name(&self) -> &'static str {
        "null"
    }

    fn read(&mut self, _volume: VolumeId, _offset: u64, _len: u32) -> io::Result<()> {
        Ok(())
    }

    fn write(&mut self, _volume: VolumeId, _offset: u64, _len: u32) -> io::Result<()> {
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// An in-memory page store: writes materialize 4 KiB pages in a hash
/// map and fill them with a deterministic pattern; reads copy resident
/// page contents into a scratch buffer (absent pages read as zeroes,
/// like a thin-provisioned volume).
///
/// Memory grows with the written working set, not the address space —
/// the same sparsity the paper's volumes rely on. Use
/// [`resident_bytes`](MemBackend::resident_bytes) to audit footprint.
#[derive(Debug, Default)]
pub struct MemBackend {
    pages: HashMap<(u32, u64), Box<[u8]>>,
    scratch: Vec<u8>,
}

impl MemBackend {
    /// Creates an empty page store.
    pub fn new() -> Self {
        MemBackend::default()
    }

    /// Number of 4 KiB pages materialized by writes so far.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Bytes of page payload currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_BYTES
    }

    /// The deterministic fill byte for a (volume, page) pair, so tests
    /// can verify read-back without the backend storing per-write
    /// provenance.
    fn fill_byte(volume: u32, page: u64) -> u8 {
        (volume as u64 ^ page ^ 0xA5) as u8
    }

    fn page_range(offset: u64, len: u32) -> (u64, u64) {
        let first = offset / PAGE_BYTES;
        let last = offset.saturating_add(len as u64).saturating_sub(1) / PAGE_BYTES;
        (first, last)
    }
}

impl StorageBackend for MemBackend {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn read(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        self.scratch.resize(PAGE_BYTES as usize, 0);
        let (first, last) = Self::page_range(offset, len);
        for page in first..=last {
            match self.pages.get(&(volume.get(), page)) {
                Some(data) => self.scratch[..data.len()].copy_from_slice(data),
                None => self.scratch.fill(0),
            }
        }
        Ok(())
    }

    fn write(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        let (first, last) = Self::page_range(offset, len);
        for page in first..=last {
            let fill = Self::fill_byte(volume.get(), page);
            let data = self
                .pages
                .entry((volume.get(), page))
                .or_insert_with(|| vec![0u8; PAGE_BYTES as usize].into_boxed_slice());
            data.fill(fill);
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A file-per-volume backend: requests become `seek` + `read`/`write`
/// on sparse files under a directory, so replay exercises the real VFS
/// and page-cache path.
///
/// Files are created lazily on first touch as `vol-<id>.dat`; reads
/// past EOF (thin-provisioned holes) read as zeroes.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    files: HashMap<u32, File>,
    scratch: Vec<u8>,
}

impl FileBackend {
    /// Opens (creating if needed) the backing directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileBackend {
            dir,
            files: HashMap::new(),
            scratch: Vec::new(),
        })
    }

    /// Number of volume files touched so far.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    // Associated, not a method: borrows only `files`/`dir`, leaving
    // `scratch` free for the caller.
    fn file<'m>(
        files: &'m mut HashMap<u32, File>,
        dir: &std::path::Path,
        volume: u32,
    ) -> io::Result<&'m mut File> {
        match files.entry(volume) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(e) => {
                let path = dir.join(format!("vol-{volume}.dat"));
                let f = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(false)
                    .open(path)?;
                Ok(e.insert(f))
            }
        }
    }
}

impl StorageBackend for FileBackend {
    fn name(&self) -> &'static str {
        "file"
    }

    fn read(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        self.scratch.resize(len as usize, 0);
        let f = Self::file(&mut self.files, &self.dir, volume.get())?;
        f.seek(SeekFrom::Start(offset))?;
        // Short reads (offset past EOF on a sparse file) are holes:
        // the unread tail reads as zeroes, which is the thin-volume
        // semantics we want, so only propagate hard errors.
        let mut filled = 0;
        while filled < self.scratch.len() {
            match f.read(&mut self.scratch[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.scratch[filled..].fill(0);
        Ok(())
    }

    fn write(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        self.scratch.resize(len as usize, 0);
        let pattern = (volume.get() as u64 ^ offset) as u8;
        self.scratch.fill(pattern);
        let f = Self::file(&mut self.files, &self.dir, volume.get())?;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(&self.scratch)
    }

    fn flush(&mut self) -> io::Result<()> {
        for f in self.files.values_mut() {
            f.sync_data()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_backend_accepts_everything() {
        let mut b = NullBackend::new();
        assert!(b.read(VolumeId::new(1), 0, 4096).is_ok());
        assert!(b.write(VolumeId::new(1), u64::MAX - 4096, 4096).is_ok());
        assert!(b.flush().is_ok());
        assert_eq!(b.name(), "null");
    }

    #[test]
    fn mem_backend_materializes_pages_on_write_only() {
        let mut b = MemBackend::new();
        b.read(VolumeId::new(7), 0, 65536).unwrap();
        assert_eq!(b.page_count(), 0, "reads must not allocate");
        // 8 KiB write straddling a page boundary touches 3 pages.
        b.write(VolumeId::new(7), 2048, 8192).unwrap();
        assert_eq!(b.page_count(), 3);
        assert_eq!(b.resident_bytes(), 3 * PAGE_BYTES);
        // Rewriting the same range allocates nothing new.
        b.write(VolumeId::new(7), 2048, 8192).unwrap();
        assert_eq!(b.page_count(), 3);
        // Same offsets on another volume are distinct pages.
        b.write(VolumeId::new(8), 2048, 8192).unwrap();
        assert_eq!(b.page_count(), 6);
        b.flush().unwrap();
    }

    #[test]
    fn mem_backend_zero_len_is_noop() {
        let mut b = MemBackend::new();
        b.write(VolumeId::new(1), 4096, 0).unwrap();
        b.read(VolumeId::new(1), 4096, 0).unwrap();
        assert_eq!(b.page_count(), 0);
    }

    #[test]
    fn file_backend_round_trips() {
        let dir = std::env::temp_dir().join(format!("cbs-replay-test-{}", std::process::id()));
        let mut b = FileBackend::new(&dir).unwrap();
        b.write(VolumeId::new(3), 8192, 4096).unwrap();
        b.read(VolumeId::new(3), 8192, 4096).unwrap();
        // Read from a hole (never written) succeeds as zeroes.
        b.read(VolumeId::new(3), 1 << 30, 4096).unwrap();
        // A second volume creates a second file.
        b.write(VolumeId::new(4), 0, 512).unwrap();
        assert_eq!(b.file_count(), 2);
        b.flush().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
