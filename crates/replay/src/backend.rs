//! The [`StorageBackend`] trait and its four stock implementations:
//! [`NullBackend`], [`MemBackend`], [`FileBackend`], and
//! [`DirectFileBackend`].
//!
//! A backend is the *target* of a replay: the scheduler decides *when*
//! a request is issued, the backend decides *what issuing costs*. The
//! trait is deliberately synchronous and `&mut self` — the open-loop
//! scheduler issues from one thread and measures the call's wall time
//! into the `replay.backend_nanos` histogram, so any internal
//! parallelism is a backend implementation detail. Under a
//! [`LaneSet`](crate::LaneSet) each lane owns its own instance, so the
//! contract is unchanged.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use cbs_trace::VolumeId;

/// Page granularity of the in-memory page store (4 KiB — the paper's
/// block size for cache analyses).
pub const PAGE_BYTES: u64 = 4096;

/// A replay target: somewhere reads and writes can be issued.
///
/// Implementations return `std::io::Error` on failure; the replayer
/// wraps it with the backend's [`name`](StorageBackend::name) and
/// aborts the run — a replay that silently drops I/O would corrupt the
/// achieved-throughput claim.
pub trait StorageBackend {
    /// Short stable identifier for reports (`"null"`, `"mem"`, `"file"`).
    fn name(&self) -> &'static str;

    /// Issues a read of `len` bytes at `offset` on `volume`.
    fn read(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()>;

    /// Issues a write of `len` bytes at `offset` on `volume`.
    fn write(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()>;

    /// Makes all issued writes durable (or whatever the backend's
    /// closest notion is). Called once at the end of a replay.
    fn flush(&mut self) -> io::Result<()>;
}

/// A backend that does nothing, instantly.
///
/// This is the scheduler-calibration target: with service time pinned
/// at ~0, achieved-vs-offered throughput measures the *replay engine*,
/// not the storage — the `replay_perf` ×1000 acceptance run uses it.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullBackend;

impl NullBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        NullBackend
    }
}

impl StorageBackend for NullBackend {
    fn name(&self) -> &'static str {
        "null"
    }

    fn read(&mut self, _volume: VolumeId, _offset: u64, _len: u32) -> io::Result<()> {
        Ok(())
    }

    fn write(&mut self, _volume: VolumeId, _offset: u64, _len: u32) -> io::Result<()> {
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// An in-memory page store: writes materialize 4 KiB pages in a hash
/// map and fill them with a deterministic pattern; reads copy resident
/// page contents into a scratch buffer (absent pages read as zeroes,
/// like a thin-provisioned volume).
///
/// Memory grows with the written working set, not the address space —
/// the same sparsity the paper's volumes rely on. Use
/// [`resident_bytes`](MemBackend::resident_bytes) to audit footprint.
#[derive(Debug, Default)]
pub struct MemBackend {
    pages: HashMap<(u32, u64), Box<[u8]>>,
    scratch: Vec<u8>,
}

impl MemBackend {
    /// Creates an empty page store.
    pub fn new() -> Self {
        MemBackend::default()
    }

    /// Number of 4 KiB pages materialized by writes so far.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Bytes of page payload currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_BYTES
    }

    /// The deterministic fill byte for a (volume, page) pair, so tests
    /// can verify read-back without the backend storing per-write
    /// provenance.
    fn fill_byte(volume: u32, page: u64) -> u8 {
        (volume as u64 ^ page ^ 0xA5) as u8
    }

    fn page_range(offset: u64, len: u32) -> (u64, u64) {
        let first = offset / PAGE_BYTES;
        let last = offset.saturating_add(len as u64).saturating_sub(1) / PAGE_BYTES;
        (first, last)
    }
}

impl StorageBackend for MemBackend {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn read(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        self.scratch.resize(PAGE_BYTES as usize, 0);
        let (first, last) = Self::page_range(offset, len);
        for page in first..=last {
            match self.pages.get(&(volume.get(), page)) {
                Some(data) => self.scratch[..data.len()].copy_from_slice(data),
                None => self.scratch.fill(0),
            }
        }
        Ok(())
    }

    fn write(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        let (first, last) = Self::page_range(offset, len);
        for page in first..=last {
            let fill = Self::fill_byte(volume.get(), page);
            let data = self
                .pages
                .entry((volume.get(), page))
                .or_insert_with(|| vec![0u8; PAGE_BYTES as usize].into_boxed_slice());
            data.fill(fill);
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A file-per-volume backend: requests become `seek` + `read`/`write`
/// on sparse files under a directory, so replay exercises the real VFS
/// and page-cache path.
///
/// Files are created lazily on first touch as `vol-<id>.dat`; reads
/// past EOF (thin-provisioned holes) read as zeroes. With
/// [`with_preallocate`](FileBackend::with_preallocate), each file is
/// extended (`ftruncate`-style, still sparse) to the expected volume
/// size at open, so first-touch writes mid-replay don't pay the
/// length-extension metadata churn on every append.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    files: HashMap<u32, File>,
    scratch: Vec<u8>,
    preallocate: u64,
}

impl FileBackend {
    /// Opens (creating if needed) the backing directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileBackend {
            dir,
            files: HashMap::new(),
            scratch: Vec::new(),
            preallocate: 0,
        })
    }

    /// Extends every volume file to at least `bytes` at open (builder
    /// style). Pass the remapped stream's maximum `offset + len` so
    /// replay-time writes land inside the established length instead
    /// of growing the file request by request. The extension is
    /// sparse: no blocks are materialized until written.
    #[must_use]
    pub fn with_preallocate(mut self, bytes: u64) -> Self {
        self.preallocate = bytes;
        self
    }

    /// Number of volume files touched so far.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Grow-only scratch borrow: the buffer keeps its high-water
    /// capacity across requests, so varying request sizes reuse one
    /// allocation instead of re-zeroing on every shrink/grow cycle.
    fn scratch_slice(scratch: &mut Vec<u8>, len: usize) -> &mut [u8] {
        if scratch.len() < len {
            scratch.resize(len, 0);
        }
        &mut scratch[..len]
    }

    // Associated, not a method: borrows only `files`/`dir`, leaving
    // `scratch` free for the caller.
    fn file<'m>(
        files: &'m mut HashMap<u32, File>,
        dir: &std::path::Path,
        volume: u32,
        preallocate: u64,
    ) -> io::Result<&'m mut File> {
        match files.entry(volume) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(e) => {
                let path = dir.join(format!("vol-{volume}.dat"));
                let f = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(false)
                    .open(path)?;
                if preallocate > 0 && f.metadata()?.len() < preallocate {
                    f.set_len(preallocate)?;
                }
                Ok(e.insert(f))
            }
        }
    }
}

impl StorageBackend for FileBackend {
    fn name(&self) -> &'static str {
        "file"
    }

    fn read(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        let buf = Self::scratch_slice(&mut self.scratch, len as usize);
        let f = Self::file(&mut self.files, &self.dir, volume.get(), self.preallocate)?;
        f.seek(SeekFrom::Start(offset))?;
        // Short reads (offset past EOF on a sparse file) are holes:
        // the unread tail reads as zeroes, which is the thin-volume
        // semantics we want, so only propagate hard errors.
        let mut filled = 0;
        while filled < buf.len() {
            match f.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        buf[filled..].fill(0);
        Ok(())
    }

    fn write(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        let pattern = (volume.get() as u64 ^ offset) as u8;
        let buf = Self::scratch_slice(&mut self.scratch, len as usize);
        buf.fill(pattern);
        let f = Self::file(&mut self.files, &self.dir, volume.get(), self.preallocate)?;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(&self.scratch[..len as usize])
    }

    fn flush(&mut self) -> io::Result<()> {
        for f in self.files.values_mut() {
            f.sync_data()?;
        }
        Ok(())
    }
}

/// Alignment O_DIRECT transfers must satisfy on offset, length, and
/// buffer address (4 KiB covers every mainstream filesystem/device;
/// the logical-block-size minimum is never larger in practice).
pub const DIRECT_ALIGN: u64 = 4096;

/// Linux `O_DIRECT` open flag. The value is architecture-specific:
/// most targets use 0x4000, but aarch64 (like powerpc before it)
/// swapped `O_DIRECT` and `O_DIRECTORY`, so it is 0x10000 there.
#[cfg(unix)]
const O_DIRECT_FLAG: i32 = if cfg!(any(
    target_arch = "aarch64",
    target_arch = "powerpc",
    target_arch = "powerpc64"
)) {
    0x10000
} else {
    0x4000
};

/// A heap buffer whose readable window starts on a [`DIRECT_ALIGN`]
/// boundary — the aligned-allocation helper `O_DIRECT` transfers
/// require, built safely (no `unsafe`) by over-allocating and slicing
/// from the first aligned byte.
#[derive(Debug, Default)]
pub struct AlignedBuf {
    buf: Vec<u8>,
    /// Offset of the first [`DIRECT_ALIGN`]-aligned byte in `buf`.
    start: usize,
    /// Usable aligned capacity from `start`.
    cap: usize,
}

impl AlignedBuf {
    /// Allocates an aligned buffer holding at least `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        let buf = vec![0u8; cap + DIRECT_ALIGN as usize];
        let start = buf.as_ptr().align_offset(DIRECT_ALIGN as usize);
        AlignedBuf { buf, start, cap }
    }

    /// Borrows `len` aligned bytes, growing (with a fresh aligned
    /// allocation) only when the current capacity is exceeded — the
    /// same grow-only reuse discipline as [`FileBackend`]'s scratch.
    pub fn slice_mut(&mut self, len: usize) -> &mut [u8] {
        if self.cap < len {
            *self = Self::with_capacity(len);
        }
        &mut self.buf[self.start..self.start + len]
    }

    /// Borrows `len` aligned bytes read-only. Callers must have sized
    /// the buffer with [`slice_mut`](AlignedBuf::slice_mut) first.
    pub fn slice(&self, len: usize) -> &[u8] {
        &self.buf[self.start..self.start + len]
    }
}

/// A file-per-volume backend that opens its files with `O_DIRECT`,
/// bypassing the page cache so replayed I/O hits storage at device
/// speed — the fidelity TraceTracker-style replay needs (a
/// page-cache-absorbed replay measures DRAM, not the device).
///
/// `O_DIRECT` requires offset, length, and buffer address aligned to
/// [`DIRECT_ALIGN`]; requests are widened to the containing aligned
/// span and staged through an [`AlignedBuf`]. Filesystems that refuse
/// `O_DIRECT` (tmpfs, some overlays) are detected by a one-block probe
/// at construction: the backend then falls back to buffered I/O and
/// records why in [`fallback_reason`](DirectFileBackend::fallback_reason)
/// — the replay still runs, and reports can disclose the degraded
/// fidelity instead of silently measuring the page cache.
#[derive(Debug)]
pub struct DirectFileBackend {
    dir: PathBuf,
    files: HashMap<u32, File>,
    scratch: AlignedBuf,
    preallocate: u64,
    direct: bool,
    fallback_reason: Option<String>,
}

impl DirectFileBackend {
    /// Opens (creating if needed) the backing directory and probes it
    /// for `O_DIRECT` support.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let (direct, fallback_reason) = match Self::probe(&dir) {
            Ok(()) => (true, None),
            Err(e) => (false, Some(format!("O_DIRECT unavailable: {e}"))),
        };
        Ok(DirectFileBackend {
            dir,
            files: HashMap::new(),
            scratch: AlignedBuf::default(),
            preallocate: 0,
            direct,
            fallback_reason,
        })
    }

    /// Extends every volume file to at least `bytes` at open — see
    /// [`FileBackend::with_preallocate`].
    #[must_use]
    pub fn with_preallocate(mut self, bytes: u64) -> Self {
        self.preallocate = bytes;
        self
    }

    /// `true` when files are actually opened with `O_DIRECT`; `false`
    /// when the probe failed and the backend fell back to buffered
    /// I/O (see [`fallback_reason`](DirectFileBackend::fallback_reason)).
    pub fn is_direct(&self) -> bool {
        self.direct
    }

    /// Why the backend fell back to buffered I/O, or `None` when
    /// `O_DIRECT` is active.
    pub fn fallback_reason(&self) -> Option<&str> {
        self.fallback_reason.as_deref()
    }

    /// Number of volume files touched so far.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// One aligned write through a freshly `O_DIRECT`-opened probe
    /// file: both the open and the first transfer can be the step a
    /// filesystem refuses, so both must succeed before the backend
    /// commits to direct I/O.
    fn probe(dir: &std::path::Path) -> io::Result<()> {
        let path = dir.join(".o_direct.probe");
        let result = (|| {
            let mut f = Self::open_direct(&path, true)?;
            let mut buf = AlignedBuf::with_capacity(DIRECT_ALIGN as usize);
            f.write_all(buf.slice_mut(DIRECT_ALIGN as usize))?;
            Ok(())
        })();
        let _ = std::fs::remove_file(&path);
        result
    }

    #[cfg(unix)]
    fn open_direct(path: &std::path::Path, direct: bool) -> io::Result<File> {
        use std::os::unix::fs::OpenOptionsExt;
        let mut opts = OpenOptions::new();
        opts.read(true).write(true).create(true).truncate(false);
        if direct {
            opts.custom_flags(O_DIRECT_FLAG);
        }
        opts.open(path)
    }

    #[cfg(not(unix))]
    fn open_direct(path: &std::path::Path, direct: bool) -> io::Result<File> {
        if direct {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "O_DIRECT requires a unix platform",
            ));
        }
        OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
    }

    /// The aligned span containing `[offset, offset + len)`: start
    /// rounded down, end rounded up to [`DIRECT_ALIGN`].
    fn aligned_span(offset: u64, len: u32) -> (u64, usize) {
        let start = offset - (offset % DIRECT_ALIGN);
        let end = offset
            .saturating_add(len as u64)
            .saturating_add(DIRECT_ALIGN - 1)
            / DIRECT_ALIGN
            * DIRECT_ALIGN;
        (start, (end - start) as usize)
    }

    fn file<'m>(
        files: &'m mut HashMap<u32, File>,
        dir: &std::path::Path,
        volume: u32,
        direct: bool,
        preallocate: u64,
    ) -> io::Result<&'m mut File> {
        match files.entry(volume) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(e) => {
                let path = dir.join(format!("vol-{volume}.dat"));
                let f = Self::open_direct(&path, direct)?;
                if preallocate > 0 && f.metadata()?.len() < preallocate {
                    // Aligned up so a direct read of the last request's
                    // span never crosses EOF mid-sector.
                    let len =
                        preallocate.saturating_add(DIRECT_ALIGN - 1) / DIRECT_ALIGN * DIRECT_ALIGN;
                    f.set_len(len)?;
                }
                Ok(e.insert(f))
            }
        }
    }
}

impl StorageBackend for DirectFileBackend {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn read(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        let (start, span) = Self::aligned_span(offset, len);
        let buf = self.scratch.slice_mut(span);
        let f = Self::file(
            &mut self.files,
            &self.dir,
            volume.get(),
            self.direct,
            self.preallocate,
        )?;
        f.seek(SeekFrom::Start(start))?;
        // Holes read as zeroes, exactly like FileBackend; O_DIRECT
        // short-reads at EOF the same way buffered I/O does.
        let mut filled = 0;
        while filled < buf.len() {
            match f.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        buf[filled..].fill(0);
        Ok(())
    }

    fn write(&mut self, volume: VolumeId, offset: u64, len: u32) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        let (start, span) = Self::aligned_span(offset, len);
        let pattern = (volume.get() as u64 ^ offset) as u8;
        self.scratch.slice_mut(span).fill(pattern);
        let f = Self::file(
            &mut self.files,
            &self.dir,
            volume.get(),
            self.direct,
            self.preallocate,
        )?;
        f.seek(SeekFrom::Start(start))?;
        f.write_all(self.scratch.slice(span))
    }

    fn flush(&mut self) -> io::Result<()> {
        for f in self.files.values_mut() {
            f.sync_data()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_backend_accepts_everything() {
        let mut b = NullBackend::new();
        assert!(b.read(VolumeId::new(1), 0, 4096).is_ok());
        assert!(b.write(VolumeId::new(1), u64::MAX - 4096, 4096).is_ok());
        assert!(b.flush().is_ok());
        assert_eq!(b.name(), "null");
    }

    #[test]
    fn mem_backend_materializes_pages_on_write_only() {
        let mut b = MemBackend::new();
        b.read(VolumeId::new(7), 0, 65536).unwrap();
        assert_eq!(b.page_count(), 0, "reads must not allocate");
        // 8 KiB write straddling a page boundary touches 3 pages.
        b.write(VolumeId::new(7), 2048, 8192).unwrap();
        assert_eq!(b.page_count(), 3);
        assert_eq!(b.resident_bytes(), 3 * PAGE_BYTES);
        // Rewriting the same range allocates nothing new.
        b.write(VolumeId::new(7), 2048, 8192).unwrap();
        assert_eq!(b.page_count(), 3);
        // Same offsets on another volume are distinct pages.
        b.write(VolumeId::new(8), 2048, 8192).unwrap();
        assert_eq!(b.page_count(), 6);
        b.flush().unwrap();
    }

    #[test]
    fn mem_backend_zero_len_is_noop() {
        let mut b = MemBackend::new();
        b.write(VolumeId::new(1), 4096, 0).unwrap();
        b.read(VolumeId::new(1), 4096, 0).unwrap();
        assert_eq!(b.page_count(), 0);
    }

    #[test]
    fn file_backend_round_trips() {
        let dir = std::env::temp_dir().join(format!("cbs-replay-test-{}", std::process::id()));
        let mut b = FileBackend::new(&dir).unwrap();
        b.write(VolumeId::new(3), 8192, 4096).unwrap();
        b.read(VolumeId::new(3), 8192, 4096).unwrap();
        // Read from a hole (never written) succeeds as zeroes.
        b.read(VolumeId::new(3), 1 << 30, 4096).unwrap();
        // A second volume creates a second file.
        b.write(VolumeId::new(4), 0, 512).unwrap();
        assert_eq!(b.file_count(), 2);
        b.flush().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backend_preallocates_at_open() {
        let dir = std::env::temp_dir().join(format!("cbs-replay-prealloc-{}", std::process::id()));
        let mut b = FileBackend::new(&dir).unwrap().with_preallocate(1 << 20);
        b.write(VolumeId::new(0), 0, 512).unwrap();
        let len = std::fs::metadata(dir.join("vol-0.dat")).unwrap().len();
        assert_eq!(len, 1 << 20, "file extended to the preallocation size");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aligned_buf_is_aligned_and_reuses() {
        let mut buf = AlignedBuf::with_capacity(8192);
        let p1 = buf.slice_mut(8192).as_ptr() as usize;
        assert_eq!(p1 % DIRECT_ALIGN as usize, 0);
        // Smaller borrows reuse the same allocation at the same base.
        let p2 = buf.slice_mut(512).as_ptr() as usize;
        assert_eq!(p1, p2, "grow-only: no realloc for smaller requests");
        // Growing reallocates but stays aligned.
        let p3 = buf.slice_mut(1 << 16).as_ptr() as usize;
        assert_eq!(p3 % DIRECT_ALIGN as usize, 0);
    }

    #[test]
    fn aligned_span_widens_to_sector_boundaries() {
        assert_eq!(DirectFileBackend::aligned_span(0, 4096), (0, 4096));
        assert_eq!(DirectFileBackend::aligned_span(100, 200), (0, 4096));
        assert_eq!(DirectFileBackend::aligned_span(4095, 2), (0, 8192));
        assert_eq!(DirectFileBackend::aligned_span(8192, 4096), (8192, 4096));
        assert_eq!(DirectFileBackend::aligned_span(8191, 4098), (4096, 12288));
    }

    #[test]
    fn direct_backend_round_trips_with_or_without_o_direct() {
        let dir = std::env::temp_dir().join(format!("cbs-replay-direct-{}", std::process::id()));
        let mut b = DirectFileBackend::new(&dir)
            .unwrap()
            .with_preallocate(1 << 20);
        // Probe outcome must be internally consistent: either O_DIRECT
        // is on (no reason recorded) or off with the reason captured.
        assert_eq!(
            b.is_direct(),
            b.fallback_reason().is_none(),
            "{:?}",
            b.fallback_reason()
        );
        // Unaligned request: widened to the containing aligned span.
        b.write(VolumeId::new(9), 1000, 300).unwrap();
        b.read(VolumeId::new(9), 1000, 300).unwrap();
        // Aligned request at a hole.
        b.read(VolumeId::new(9), 1 << 19, 4096).unwrap();
        b.flush().unwrap();
        assert_eq!(b.file_count(), 1);
        let len = std::fs::metadata(dir.join("vol-9.dat")).unwrap().len();
        assert_eq!(len, 1 << 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
