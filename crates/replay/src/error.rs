//! Replay error type: [`ReplayError`].

use core::fmt;

use cbs_trace::CbtError;

use crate::schedule::{MAX_MULTIPLIER, MIN_MULTIPLIER};

/// Everything that can go wrong while configuring or driving a replay.
#[derive(Debug)]
pub enum ReplayError {
    /// The requested rate multiplier is outside the supported
    /// ×[`MIN_MULTIPLIER`]…×[`MAX_MULTIPLIER`] range (or not finite).
    InvalidMultiplier(f64),
    /// The remap parameter was zero — fan-out and merge factors must
    /// map every source volume to a real target.
    InvalidRemapFactor,
    /// A [`StorageBackend`](crate::StorageBackend) call failed.
    Backend {
        /// The failing backend's [`name`](crate::StorageBackend::name).
        backend: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The trace source itself failed mid-stream (e.g. a corrupt CBT
    /// block); the replay stops at the failure point.
    Source(CbtError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::InvalidMultiplier(m) => write!(
                f,
                "rate multiplier {m} outside supported range \
                 x{MIN_MULTIPLIER}..=x{MAX_MULTIPLIER}"
            ),
            ReplayError::InvalidRemapFactor => {
                write!(f, "remap factor must be at least 1")
            }
            ReplayError::Backend { backend, source } => {
                write!(f, "{backend} backend failed: {source}")
            }
            ReplayError::Source(e) => write!(f, "trace source failed: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Backend { source, .. } => Some(source),
            ReplayError::Source(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CbtError> for ReplayError {
    fn from(e: CbtError) -> Self {
        ReplayError::Source(e)
    }
}
