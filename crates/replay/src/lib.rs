//! `cbs-replay` — timing-faithful open-loop trace replay.
//!
//! The rest of the workbench *analyzes* cloud block storage traces;
//! this crate closes the loop by *generating load* from them, the way
//! TraceTracker replays reconstructed workloads against new hardware.
//! Any trace source — CBT files ([`cbs_trace::CbtReader`] /
//! [`CbtSliceRequests`]), decoded CSV, or the synthetic corpus
//! generator's stream — replays at recorded timestamps or a rate
//! multiplier (×0.1…×1000), with volume remapping (1→1, 1→N fan-out,
//! N→1 merge), onto a pluggable [`StorageBackend`].
//!
//! Three pieces, composed by [`Replayer`]:
//!
//! * **[`Timing`]** (schedule) — the open-loop scheduler issues each
//!   request at its scaled recorded time, sleeping coarsely and
//!   spinning the final stretch; per-request *issue lag* (actual minus
//!   target issue time) is the fidelity signal.
//! * **[`Remap`]** (placement) — rewrites volume ids only; op, offset,
//!   length, and timestamp are preserved, so replayed streams stay
//!   comparable to the source analysis.
//! * **[`StorageBackend`]** (target) — [`NullBackend`] measures the
//!   engine itself, [`MemBackend`] is a deterministic in-memory page
//!   store, [`FileBackend`] exercises the real VFS path against
//!   preallocated per-volume files, and [`DirectFileBackend`] opens
//!   them `O_DIRECT` (aligned scratch, recorded fallback reason when
//!   the filesystem refuses) so service times come from the device,
//!   not the page cache.
//!
//! When one scheduler thread can't pace the stream, [`LaneSet`]
//! shards the issue side: a feeder thread decodes/remaps in stream
//! order and fans batches out to N per-volume scheduler lanes
//! (sticky least-loaded routing, bounded channels, panic-poison
//! parity), and the per-lane metrics fold through lawful `merge()`
//! into a [`MultiLaneReport`] whose merged view is identical to the
//! single-lane run at any lane count.
//!
//! Everything observable lands in `cbs-obs` metrics under registered
//! `replay.*` names, and [`ReplayReport`] summarizes the run
//! (achieved-vs-offered throughput, lag and service-time
//! distributions).
//!
//! # Example
//!
//! ```
//! use cbs_replay::{NullBackend, Replayer, Timing};
//! use cbs_trace::{IoRequest, OpKind, Timestamp, Trace, VolumeId};
//!
//! # fn main() -> Result<(), cbs_replay::ReplayError> {
//! let trace = Trace::from_requests(
//!     (0..256)
//!         .map(|i| {
//!             IoRequest::new(
//!                 VolumeId::new(i % 16),
//!                 OpKind::Write,
//!                 (i as u64) * 4096,
//!                 4096,
//!                 Timestamp::from_micros(i as u64 * 100),
//!             )
//!         })
//!         .collect(),
//! );
//! let mut replayer =
//!     Replayer::new(NullBackend::new()).with_timing(Timing::multiplier(1000.0)?);
//! let report = replayer.run(trace.iter_time_ordered())?;
//! assert_eq!(report.requests, 256);
//! println!(
//!     "achieved {:.0} req/s ({:.1}% of offered), p99 lag {} ns",
//!     report.achieved_rps(),
//!     report.achieved_offered_ratio() * 100.0,
//!     report.issue_lag.p99
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod error;
pub mod lanes;
pub mod remap;
pub mod schedule;
pub mod source;

pub use backend::{
    AlignedBuf, DirectFileBackend, FileBackend, MemBackend, NullBackend, StorageBackend,
    DIRECT_ALIGN, PAGE_BYTES,
};
pub use error::ReplayError;
pub use lanes::{
    LaneSet, MultiLaneReport, ReplayLaneReport, DEFAULT_LANE_CHANNEL_DEPTH, LANE_BATCH_REQUESTS,
};
pub use remap::{Remap, VolumeRemapper};
pub use schedule::{ReplayReport, Replayer, Timing, MAX_MULTIPLIER, MIN_MULTIPLIER};
pub use source::CbtSliceRequests;
