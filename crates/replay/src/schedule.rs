//! The open-loop replay scheduler: [`Timing`], [`Replayer`], and
//! [`ReplayReport`].
//!
//! # Open loop
//!
//! The scheduler computes each request's *target issue time* from its
//! recorded timestamp (scaled by the rate multiplier) and issues at
//! that wall-clock instant **whether or not earlier requests have
//! completed** — the arrival process is the trace's, not the
//! backend's. This is what makes the replay a load *generator* rather
//! than a closed feedback loop: a slow backend shows up as growing
//! issue lag (`replay.issue_lag_nanos`) and a depressed
//! achieved-vs-offered ratio, exactly the signals TraceTracker-style
//! replay uses to compare hardware generations.
//!
//! # Clock arithmetic
//!
//! Target times are derived from `request.ts - first.ts` (saturating:
//! an out-of-order source timestamp clamps to the trace start, and
//! targets are made monotonic so a disordered source can never stall
//! the replay), scaled through
//! [`TimeDelta::saturating_mul_f64`](cbs_trace::TimeDelta::saturating_mul_f64) — the
//! overflow-checked rate-multiplier primitive — and quantized to the
//! microsecond resolution of the trace clock.

use cbs_obs::{Counter, Histogram, HistogramSnapshot, Registry, Stopwatch};
use cbs_trace::{IoRequest, Timestamp};

use crate::backend::StorageBackend;
use crate::error::ReplayError;
use crate::remap::{Remap, VolumeRemapper};

/// Slowest supported replay speed (×0.1 = ten-fold slow motion).
pub const MIN_MULTIPLIER: f64 = 0.1;

/// Fastest supported replay speed (×1000 compresses a day to ~86 s).
pub const MAX_MULTIPLIER: f64 = 1000.0;

/// How close to a deadline the scheduler stops sleeping and spins.
/// `thread::sleep` routinely overshoots by tens of microseconds; the
/// last stretch is burned in a spin loop so issue lag stays bounded by
/// scheduler jitter, not timer slack.
pub(crate) const SPIN_WINDOW_NANOS: u64 = 100_000;

/// Replay pacing: recorded timestamps, optionally scaled.
///
/// Constructed through [`Timing::recorded`] or [`Timing::multiplier`]
/// so an out-of-range rate can never reach the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    rate: f64,
}

impl Timing {
    /// Replay at recorded timestamps (×1).
    pub fn recorded() -> Timing {
        Timing { rate: 1.0 }
    }

    /// Replay at `rate` × recorded speed. `rate` must be finite and in
    /// ×[`MIN_MULTIPLIER`]…×[`MAX_MULTIPLIER`].
    pub fn multiplier(rate: f64) -> Result<Timing, ReplayError> {
        if !rate.is_finite() || !(MIN_MULTIPLIER..=MAX_MULTIPLIER).contains(&rate) {
            return Err(ReplayError::InvalidMultiplier(rate));
        }
        Ok(Timing { rate })
    }

    /// The speed-up factor (1.0 for recorded pacing).
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Default for Timing {
    fn default() -> Self {
        Timing::recorded()
    }
}

/// What a finished replay measured. All times are nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct ReplayReport {
    /// Requests issued to the backend.
    pub requests: u64,
    /// Payload bytes issued (sum of request lengths).
    pub bytes: u64,
    /// Read requests issued.
    pub reads: u64,
    /// Write requests issued.
    pub writes: u64,
    /// Wall-clock duration of the whole replay (including the final
    /// backend flush).
    pub wall_nanos: u64,
    /// The offered load's duration: the scaled target issue time of
    /// the last request — what a perfectly fast replay would take.
    pub offered_nanos: u64,
    /// Nanoseconds the scheduler spent sleeping ahead of deadlines
    /// (idle headroom; ~0 when saturated).
    pub slept_nanos: u64,
    /// Distribution of per-request issue lag (actual minus target
    /// issue time).
    pub issue_lag: HistogramSnapshot,
    /// Distribution of per-request backend service time.
    pub backend: HistogramSnapshot,
}

impl ReplayReport {
    /// Requests per second the trace *offered* at the configured rate.
    pub fn offered_rps(&self) -> f64 {
        if self.offered_nanos == 0 {
            return self.requests as f64 * 1e9;
        }
        self.requests as f64 / (self.offered_nanos as f64 / 1e9)
    }

    /// Requests per second actually sustained.
    pub fn achieved_rps(&self) -> f64 {
        if self.wall_nanos == 0 {
            return self.requests as f64 * 1e9;
        }
        self.requests as f64 / (self.wall_nanos as f64 / 1e9)
    }

    /// Achieved / offered throughput, in (0, 1]. 1.0 means the replay
    /// kept up with the offered schedule exactly; the acceptance gate
    /// requires ≥ 0.95 on the null backend at ×1000.
    pub fn achieved_offered_ratio(&self) -> f64 {
        if self.offered_nanos == 0 || self.wall_nanos == 0 {
            return 1.0;
        }
        (self.offered_nanos as f64 / self.wall_nanos as f64).min(1.0)
    }
}

/// The open-loop replayer: pair a [`StorageBackend`] with a [`Timing`]
/// and a [`Remap`], then [`run`](Replayer::run) a request stream
/// through it.
///
/// # Example
///
/// ```
/// use cbs_replay::{NullBackend, Remap, Replayer, Timing};
/// use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};
///
/// # fn main() -> Result<(), cbs_replay::ReplayError> {
/// let reqs = (0..100).map(|i| {
///     IoRequest::new(
///         VolumeId::new(i % 4),
///         if i % 3 == 0 { OpKind::Write } else { OpKind::Read },
///         (i as u64) * 4096,
///         4096,
///         Timestamp::from_micros(i as u64 * 50),
///     )
/// });
/// let mut replayer = Replayer::new(NullBackend::new())
///     .with_timing(Timing::multiplier(1000.0)?)
///     .with_remap(Remap::fan_out(2)?);
/// let report = replayer.run(reqs)?;
/// assert_eq!(report.requests, 100);
/// assert!(report.achieved_offered_ratio() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Replayer<B: StorageBackend> {
    backend: B,
    timing: Timing,
    remapper: VolumeRemapper,
    registry: Registry,
    requests: Counter,
    bytes: Counter,
    reads: Counter,
    writes: Counter,
    slept: Counter,
    issue_lag: Histogram,
    backend_nanos: Histogram,
}

impl<B: StorageBackend> Replayer<B> {
    /// Creates a replayer with recorded (×1) pacing, identity
    /// remapping, and a private metric registry.
    pub fn new(backend: B) -> Self {
        Self::with_registry_impl(backend, Registry::new())
    }

    /// Creates a replayer whose metrics land in (a clone of) `registry`
    /// so replay counters export alongside the caller's.
    pub fn with_registry(backend: B, registry: &Registry) -> Self {
        Self::with_registry_impl(backend, registry.clone())
    }

    fn with_registry_impl(backend: B, registry: Registry) -> Self {
        let requests = registry.counter("replay.requests");
        let bytes = registry.counter("replay.bytes");
        let reads = registry.counter("replay.reads");
        let writes = registry.counter("replay.writes");
        let slept = registry.counter("replay.sleep_nanos");
        let issue_lag = registry.histogram("replay.issue_lag_nanos");
        let backend_nanos = registry.histogram("replay.backend_nanos");
        Replayer {
            backend,
            timing: Timing::recorded(),
            remapper: VolumeRemapper::new(Remap::Identity),
            registry,
            requests,
            bytes,
            reads,
            writes,
            slept,
            issue_lag,
            backend_nanos,
        }
    }

    /// Sets the pacing (builder style).
    pub fn with_timing(mut self, timing: Timing) -> Self {
        self.timing = timing;
        self
    }

    /// Sets the volume remapping policy (builder style).
    pub fn with_remap(mut self, remap: Remap) -> Self {
        self.remapper = VolumeRemapper::new(remap);
        self
    }

    /// The metric registry this replayer records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Borrows the backend (e.g. to inspect a
    /// [`MemBackend`](crate::MemBackend)'s resident pages).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Consumes the replayer, returning the backend.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// Replays an infallible, time-ordered request stream
    /// (`Trace::iter_time_ordered`, `CorpusGenerator::stream()`, a
    /// `Vec`). Out-of-order timestamps are tolerated: their targets
    /// clamp to the latest deadline already issued.
    pub fn run<I>(&mut self, source: I) -> Result<ReplayReport, ReplayError>
    where
        I: IntoIterator<Item = IoRequest>,
    {
        self.run_observed(source, |_| {})
    }

    /// Replays a fallible stream (e.g. [`CbtRequests`]) — the replay
    /// stops at, and returns, the first source error.
    ///
    /// [`CbtRequests`]: crate::CbtRequests
    pub fn run_results<I, E>(&mut self, source: I) -> Result<ReplayReport, ReplayError>
    where
        I: IntoIterator<Item = Result<IoRequest, E>>,
        E: Into<ReplayError>,
    {
        let mut failed: Option<ReplayError> = None;
        let report = self.run_observed(
            source.into_iter().map_while(|r| match r {
                Ok(req) => Some(req),
                Err(e) => {
                    failed = Some(e.into());
                    None
                }
            }),
            |_| {},
        )?;
        match failed {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// [`run`](Replayer::run), additionally handing every *issued*
    /// (post-remap) request to `observe` — the hook the re-analysis
    /// equivalence tests use to feed the replayed stream back through
    /// the analysis workbench.
    pub fn run_observed<I, F>(
        &mut self,
        source: I,
        mut observe: F,
    ) -> Result<ReplayReport, ReplayError>
    where
        I: IntoIterator<Item = IoRequest>,
        F: FnMut(IoRequest),
    {
        let inv_rate = 1.0 / self.timing.rate();
        let clock = Stopwatch::start();
        let mut t0: Option<Timestamp> = None;
        let mut last_target_nanos = 0u64;
        let slept_at_start = self.slept.get();

        for req in source {
            let start = *t0.get_or_insert_with(|| req.ts());
            // Scaled offset from trace start, on the new checked
            // arithmetic: saturating clamp beats wrapping for a
            // pathological source, and the monotonic max keeps a
            // disordered stream from re-targeting the past.
            let delta = req.ts().saturating_duration_since(start);
            let scaled = delta.saturating_mul_f64(inv_rate);
            let target_nanos = scaled
                .as_micros()
                .saturating_mul(1000)
                .max(last_target_nanos);
            last_target_nanos = target_nanos;

            self.wait_until(&clock, target_nanos);
            let lag = clock.elapsed_nanos().saturating_sub(target_nanos);
            self.issue_lag.record(lag);

            let out = self.remapper.map(req);
            observe(out);
            let service = Stopwatch::start();
            let io = if out.is_write() {
                self.backend.write(out.volume(), out.offset(), out.len())
            } else {
                self.backend.read(out.volume(), out.offset(), out.len())
            };
            self.backend_nanos.record(service.elapsed_nanos());
            if let Err(source) = io {
                return Err(ReplayError::Backend {
                    backend: self.backend.name(),
                    source,
                });
            }

            self.requests.inc();
            self.bytes.add(out.len() as u64);
            if out.is_write() {
                self.writes.inc();
            } else {
                self.reads.inc();
            }
        }

        if let Err(source) = self.backend.flush() {
            return Err(ReplayError::Backend {
                backend: self.backend.name(),
                source,
            });
        }

        Ok(ReplayReport {
            requests: self.requests.get(),
            bytes: self.bytes.get(),
            reads: self.reads.get(),
            writes: self.writes.get(),
            wall_nanos: clock.elapsed_nanos(),
            offered_nanos: last_target_nanos,
            slept_nanos: self.slept.get() - slept_at_start,
            issue_lag: self.issue_lag.snapshot(),
            backend: self.backend_nanos.snapshot(),
        })
    }

    /// Sleeps (coarsely) then spins (precisely) until `clock` reaches
    /// `target_nanos`. Returns immediately when already past due —
    /// the saturated fast path when the backend can't keep up or the
    /// multiplier outruns the engine.
    fn wait_until(&self, clock: &Stopwatch, target_nanos: u64) {
        loop {
            let now = clock.elapsed_nanos();
            if now >= target_nanos {
                return;
            }
            let remaining = target_nanos - now;
            if remaining > SPIN_WINDOW_NANOS {
                let nap = Stopwatch::start();
                std::thread::sleep(std::time::Duration::from_nanos(
                    remaining - SPIN_WINDOW_NANOS,
                ));
                self.slept.add(nap.elapsed_nanos());
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{MemBackend, NullBackend};
    use cbs_trace::{OpKind, VolumeId};

    fn make(n: u64, gap_us: u64) -> Vec<IoRequest> {
        (0..n)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new((i % 8) as u32),
                    if i % 4 == 0 {
                        OpKind::Write
                    } else {
                        OpKind::Read
                    },
                    i * 4096,
                    4096,
                    Timestamp::from_micros(i * gap_us),
                )
            })
            .collect()
    }

    #[test]
    fn multiplier_bounds_enforced() {
        assert!(Timing::multiplier(0.1).is_ok());
        assert!(Timing::multiplier(1000.0).is_ok());
        assert!(Timing::multiplier(0.09).is_err());
        assert!(Timing::multiplier(1000.1).is_err());
        assert!(Timing::multiplier(f64::NAN).is_err());
        assert!(Timing::multiplier(f64::INFINITY).is_err());
        assert!(Timing::multiplier(-1.0).is_err());
    }

    #[test]
    fn replay_counts_everything() {
        let reqs = make(200, 10);
        let mut r =
            Replayer::new(NullBackend::new()).with_timing(Timing::multiplier(1000.0).unwrap());
        let report = r.run(reqs).unwrap();
        assert_eq!(report.requests, 200);
        assert_eq!(report.bytes, 200 * 4096);
        assert_eq!(report.reads, 150);
        assert_eq!(report.writes, 50);
        assert_eq!(report.issue_lag.count, 200);
        assert_eq!(report.backend.count, 200);
        assert!(report.achieved_offered_ratio() > 0.0);
        assert!(report.achieved_offered_ratio() <= 1.0);
    }

    #[test]
    fn recorded_pacing_takes_at_least_the_trace_span() {
        // 20 requests, 1 ms apart -> 19 ms of offered schedule.
        let reqs = make(20, 1000);
        let mut r = Replayer::new(NullBackend::new());
        let report = r.run(reqs).unwrap();
        assert_eq!(report.offered_nanos, 19 * 1_000_000);
        assert!(
            report.wall_nanos >= report.offered_nanos,
            "open loop cannot finish before the last deadline: {} < {}",
            report.wall_nanos,
            report.offered_nanos
        );
        // Pacing a sparse schedule means actually sleeping.
        assert!(report.slept_nanos > 0);
    }

    #[test]
    fn slow_motion_stretches_the_schedule() {
        // 10 requests 100 us apart at x0.5 -> 1.8 ms offered.
        let reqs = make(10, 100);
        let mut r = Replayer::new(NullBackend::new()).with_timing(Timing::multiplier(0.5).unwrap());
        let report = r.run(reqs).unwrap();
        assert_eq!(report.offered_nanos, 9 * 200 * 1000);
        assert!(report.wall_nanos >= report.offered_nanos);
    }

    #[test]
    fn out_of_order_timestamps_do_not_stall() {
        let mut reqs = make(50, 10);
        reqs.swap(10, 40); // violently disorder the stream
        let mut r =
            Replayer::new(NullBackend::new()).with_timing(Timing::multiplier(1000.0).unwrap());
        let report = r.run(reqs).unwrap();
        assert_eq!(report.requests, 50);
    }

    #[test]
    fn empty_source_reports_zeroes() {
        let mut r = Replayer::new(NullBackend::new());
        let report = r.run(Vec::new()).unwrap();
        assert_eq!(report.requests, 0);
        assert_eq!(report.offered_nanos, 0);
        assert!((report.achieved_offered_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn mem_backend_sees_remapped_writes() {
        let reqs = make(64, 1);
        let mut r = Replayer::new(MemBackend::new())
            .with_timing(Timing::multiplier(1000.0).unwrap())
            .with_remap(Remap::merge_into(8).unwrap());
        let report = r.run(reqs).unwrap();
        assert_eq!(report.writes, 16);
        assert!(r.backend().page_count() > 0);
        // merge:8 folds volumes 0..8 onto volume 0 only.
        let backend = r.into_backend();
        assert!(backend.resident_bytes() > 0);
    }

    #[test]
    fn observer_sees_post_remap_stream_in_order() {
        let reqs = make(30, 5);
        let mut seen = Vec::new();
        let mut r = Replayer::new(NullBackend::new())
            .with_timing(Timing::multiplier(1000.0).unwrap())
            .with_remap(Remap::fan_out(2).unwrap());
        r.run_observed(reqs.clone(), |req| seen.push(req)).unwrap();
        assert_eq!(seen.len(), 30);
        for (src, out) in reqs.iter().zip(&seen) {
            assert_eq!(src.ts(), out.ts());
            assert_eq!(src.len(), out.len());
            assert_eq!(src.op(), out.op());
            assert_eq!(out.volume().get() / 2, src.volume().get());
        }
    }

    #[test]
    fn registry_exports_replay_metrics() {
        let registry = Registry::new();
        let mut r = Replayer::with_registry(NullBackend::new(), &registry)
            .with_timing(Timing::multiplier(1000.0).unwrap());
        r.run(make(10, 1)).unwrap();
        let json = registry.to_json();
        assert!(json.contains("\"replay.requests\""));
        assert!(json.contains("\"replay.issue_lag_nanos\""));
        assert!(json.contains("\"replay.backend_nanos\""));
    }

    #[test]
    fn run_results_stops_at_source_error() {
        use cbs_trace::CbtError;
        let items: Vec<Result<IoRequest, CbtError>> = vec![
            Ok(make(1, 1)[0]),
            Err(CbtError::Corrupt {
                block: 0,
                detail: "synthetic test corruption",
            }),
            Ok(make(1, 1)[0]),
        ];
        let mut r = Replayer::new(NullBackend::new());
        let err = r.run_results(items).unwrap_err();
        assert!(matches!(err, ReplayError::Source(_)), "{err}");
        // The request before the error was still issued.
        assert_eq!(r.registry().snapshot().len(), 7);
    }
}
