//! Request-stream adapters for the replayer.
//!
//! [`Replayer::run`](crate::Replayer::run) takes any
//! `IntoIterator<Item = IoRequest>` and
//! [`run_results`](crate::Replayer::run_results) any fallible stream,
//! so most sources plug in directly:
//!
//! * **CBT files** — `CbtReader` is already an
//!   `Iterator<Item = Result<IoRequest, CbtError>>`; hand it to
//!   `run_results` as-is.
//! * **Synthetic corpora** — `CorpusGenerator::stream()` yields
//!   time-ordered `IoRequest`s; hand it to `run` as-is.
//! * **In-memory traces** — `Trace::iter_time_ordered()` likewise.
//! * **CSV** — decode with `ParallelDecoder::decode_alicloud_slice`
//!   (or `decode_msrc_slice`), sort into a `Trace`, then replay its
//!   time-ordered iterator.
//!
//! This module adds the one adapter that needs real code:
//! [`CbtSliceRequests`], which drives the zero-copy
//! [`CbtSliceReader`] batch-by-batch and flattens the lent batches
//! into owned requests (the 32-byte records are `Copy`, so "owning"
//! them costs a memcpy per batch, not an allocation per request).

use cbs_trace::{CbtError, CbtSliceReader, IoRequest};

/// Flattens a [`CbtSliceReader`]'s lent batches into a request stream
/// suitable for [`Replayer::run_results`](crate::Replayer::run_results).
///
/// # Example
///
/// ```
/// use cbs_replay::{CbtSliceRequests, NullBackend, Replayer, Timing};
/// use cbs_trace::{CbtSliceReader, CbtWriter, IoRequest, OpKind, Timestamp, VolumeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut encoded = Vec::new();
/// {
///     let mut w = CbtWriter::new(&mut encoded);
///     for i in 0..32u64 {
///         w.write_request(&IoRequest::new(
///             VolumeId::new(1),
///             OpKind::Read,
///             i * 4096,
///             4096,
///             Timestamp::from_micros(i),
///         ))?;
///     }
///     w.finish()?;
/// }
/// let source = CbtSliceRequests::new(CbtSliceReader::new(&encoded));
/// let mut replayer = Replayer::new(NullBackend::new())
///     .with_timing(Timing::multiplier(1000.0)?);
/// let report = replayer.run_results(source)?;
/// assert_eq!(report.requests, 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CbtSliceRequests<'a> {
    reader: CbtSliceReader<'a>,
    buffer: Vec<IoRequest>,
    next: usize,
    done: bool,
}

impl<'a> CbtSliceRequests<'a> {
    /// Wraps a slice reader (configure `with_registry` etc. before
    /// wrapping).
    pub fn new(reader: CbtSliceReader<'a>) -> Self {
        CbtSliceRequests {
            reader,
            buffer: Vec::new(),
            next: 0,
            done: false,
        }
    }
}

impl Iterator for CbtSliceRequests<'_> {
    type Item = Result<IoRequest, CbtError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.next < self.buffer.len() {
                let req = self.buffer[self.next];
                self.next += 1;
                return Some(Ok(req));
            }
            if self.done {
                return None;
            }
            match self.reader.read_batch_ref() {
                Ok(Some(batch)) => {
                    self.buffer.clear();
                    self.buffer.extend(batch.iter());
                    self.next = 0;
                }
                Ok(None) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    // The reader is poisoned now; fuse after yielding.
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_trace::{CbtWriter, OpKind, Timestamp, VolumeId};

    fn encode(n: u64) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = CbtWriter::new(&mut out);
        for i in 0..n {
            w.write_request(&IoRequest::new(
                VolumeId::new((i % 3) as u32),
                if i % 2 == 0 {
                    OpKind::Read
                } else {
                    OpKind::Write
                },
                i * 512,
                512,
                Timestamp::from_micros(i * 7),
            ))
            .unwrap();
        }
        w.finish().unwrap();
        out
    }

    #[test]
    fn yields_every_record_in_order() {
        let bytes = encode(1000);
        let reqs: Vec<IoRequest> = CbtSliceRequests::new(CbtSliceReader::new(&bytes))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(reqs.len(), 1000);
        assert_eq!(reqs[999].ts(), Timestamp::from_micros(999 * 7));
    }

    #[test]
    fn corruption_yields_one_error_then_fuses() {
        let mut bytes = encode(1000);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let mut it = CbtSliceRequests::new(CbtSliceReader::new(&bytes));
        let mut errs = 0;
        for item in &mut it {
            if item.is_err() {
                errs += 1;
            }
        }
        assert_eq!(errs, 1);
        assert!(it.next().is_none(), "iterator must fuse after an error");
    }

    #[test]
    fn empty_stream_is_empty() {
        let bytes = encode(0);
        assert_eq!(
            CbtSliceRequests::new(CbtSliceReader::new(&bytes)).count(),
            0
        );
    }
}
