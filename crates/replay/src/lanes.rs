//! The multi-lane issue engine: [`LaneSet`], [`MultiLaneReport`], and
//! [`ReplayLaneReport`].
//!
//! The single-threaded [`Replayer`](crate::Replayer) interleaves three
//! jobs on one thread: *generating* the next request (decode, remap,
//! target-time arithmetic), *pacing* (sleep-then-spin to the target),
//! and *issuing* (the backend call). During the paper's microbursts at
//! ×1000 the generation cost alone outruns the offered schedule, so
//! issue lag measures the engine, not the pacing. This module splits
//! the jobs across threads:
//!
//! ```text
//! feeder (caller thread)              N issue lanes
//! ┌──────────────────────────┐ bounded ┌─────────────────────────────┐
//! │ decode + remap in order  │ channels│ sleep-then-spin scheduler,  │
//! │ compute global monotone  │ ───────►│ own StorageBackend instance │
//! │ target times             │ (entry  │ per-lane replay.lane<i>.*   │
//! │ route: volume → lane     │ batches)│ counters + histograms       │
//! └──────────────────────────┘         └─────────────────────────────┘
//! ```
//!
//! The feeder consumes the source **in stream order** — the stateful
//! fan-out remap cursors and the monotone target-time clamp both
//! require it — and runs *ahead of the wall clock* whenever the lanes
//! allow, so bursts are pre-decoded into the bounded channels during
//! pacing idle and the lanes drain them at issue cost only.
//!
//! # Routing
//!
//! Volumes stick to lanes on first touch, each new (post-remap) volume
//! joining the lane with the least routed traffic so far — the same
//! skew-aware assignment [`StreamingWorkbench`] uses for analysis
//! shards. Stickiness is what keeps a lane's backend self-consistent:
//! every request of a volume reaches exactly one backend instance, in
//! send order, so per-volume file/page state and per-volume issue
//! order are preserved at any lane count.
//!
//! # Merged-report laws
//!
//! Each lane records into its own `replay.lane<i>.*` metrics; the
//! merged [`ReplayReport`] is the fold of those partials through the
//! MERGEABLE `merge()` laws of `cbs-obs` ([`Counter`] totals add,
//! [`Histogram`] buckets add). Request, byte, read, and write counts —
//! and the issue-lag/service-time sample counts — are therefore
//! **identical to the single-lane run at any lane count**; only the
//! timing distributions themselves may differ (that is the point). The
//! `lane_laws` proptests pin this down, including panic-poison parity
//! with the single-lane engine.
//!
//! [`StreamingWorkbench`]: ../../cbs_core/struct.StreamingWorkbench.html

use std::io;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

use cbs_obs::{Counter, Histogram, Registry, Stopwatch};
use cbs_trace::hash::FxHashMap;
use cbs_trace::{IoRequest, Timestamp, VolumeId};

use crate::backend::StorageBackend;
use crate::error::ReplayError;
use crate::remap::{Remap, VolumeRemapper};
use crate::schedule::{ReplayReport, Timing, SPIN_WINDOW_NANOS};

/// Requests buffered per lane before the feeder hands the batch to the
/// lane's channel. Small enough that a batch is a few KiB, large
/// enough that channel handoff is amortized across hundreds of
/// requests.
pub const LANE_BATCH_REQUESTS: usize = 256;

/// Default in-flight batches allowed per lane channel. Together with
/// [`LANE_BATCH_REQUESTS`] this bounds the feeder's lookahead at
/// `lanes × depth × batch` pre-decoded requests — the reservoir the
/// lanes drain during microbursts that outrun live generation.
pub const DEFAULT_LANE_CHANNEL_DEPTH: usize = 8;

/// How far (in scaled schedule nanoseconds) a partially filled lane
/// buffer may trail the stream head before the feeder force-flushes
/// it. Targets are globally monotone, so "head minus oldest buffered
/// target" bounds how stale a buffered entry can get while the feeder
/// works on other lanes; 1 ms keeps that well under the lag scales the
/// lane curve measures.
pub const FLUSH_HORIZON_NANOS: u64 = 1_000_000;

/// One routed unit of work: the request's absolute target issue time
/// on the shared run clock, plus the post-remap request itself.
type LaneEntry = (u64, IoRequest);

/// What one issue lane measured (a per-lane slice of the merged
/// [`ReplayReport`]; same units).
#[derive(Debug, Clone, Copy)]
pub struct ReplayLaneReport {
    /// Lane index (0-based).
    pub lane: usize,
    /// Requests this lane issued.
    pub requests: u64,
    /// Payload bytes this lane issued.
    pub bytes: u64,
    /// Read requests this lane issued.
    pub reads: u64,
    /// Write requests this lane issued.
    pub writes: u64,
    /// Nanoseconds this lane slept ahead of deadlines.
    pub slept_nanos: u64,
    /// This lane's issue-lag distribution.
    pub issue_lag: cbs_obs::HistogramSnapshot,
    /// This lane's backend service-time distribution.
    pub backend: cbs_obs::HistogramSnapshot,
}

/// What a finished multi-lane replay measured: the merged
/// [`ReplayReport`] (the fold of every lane's partial metrics through
/// the lawful `merge()` of the metric types) plus the per-lane
/// breakdown.
#[derive(Debug, Clone)]
pub struct MultiLaneReport {
    /// The fold of all lanes: request/byte/read/write-identical to the
    /// single-lane run over the same source and remap.
    pub merged: ReplayReport,
    /// Per-lane measurements, indexed by lane.
    pub per_lane: Vec<ReplayLaneReport>,
    /// Nanoseconds the feeder spent blocked on full lane channels
    /// (nonzero means generation outran the lanes, not vice versa).
    pub feed_backpressure_nanos: u64,
}

impl MultiLaneReport {
    /// Number of issue lanes that ran.
    pub fn lanes(&self) -> usize {
        self.per_lane.len()
    }

    /// The worst per-lane p99 issue lag, nanoseconds — the number the
    /// lane-scaling curve reports per row.
    pub fn worst_lane_p99_lag(&self) -> u64 {
        self.per_lane
            .iter()
            .map(|l| l.issue_lag.p99)
            .max()
            .unwrap_or(0)
    }
}

/// Per-lane metric handles; cloned into the lane worker thread.
#[derive(Debug, Clone)]
struct LaneMetrics {
    requests: Counter,
    bytes: Counter,
    reads: Counter,
    writes: Counter,
    slept: Counter,
    issue_lag: Histogram,
    backend_nanos: Histogram,
}

impl LaneMetrics {
    fn new(registry: &Registry, lane: usize) -> Self {
        LaneMetrics {
            requests: registry.counter(&format!("replay.lane{lane}.requests")),
            bytes: registry.counter(&format!("replay.lane{lane}.bytes")),
            reads: registry.counter(&format!("replay.lane{lane}.reads")),
            writes: registry.counter(&format!("replay.lane{lane}.writes")),
            slept: registry.counter(&format!("replay.lane{lane}.sleep_nanos")),
            issue_lag: registry.histogram(&format!("replay.lane{lane}.issue_lag_nanos")),
            backend_nanos: registry.histogram(&format!("replay.lane{lane}.backend_nanos")),
        }
    }

    fn lane_report(&self, lane: usize) -> ReplayLaneReport {
        ReplayLaneReport {
            lane,
            requests: self.requests.get(),
            bytes: self.bytes.get(),
            reads: self.reads.get(),
            writes: self.writes.get(),
            slept_nanos: self.slept.get(),
            issue_lag: self.issue_lag.snapshot(),
            backend: self.backend_nanos.snapshot(),
        }
    }
}

/// What a lane worker hands back when its channel closes (or it dies
/// on an I/O error): the backend it owned plus the terminal result.
struct LaneOutcome<B> {
    backend: B,
    result: io::Result<()>,
}

/// The sharded open-loop issue engine — see the [module docs](self).
///
/// # Example
///
/// ```
/// use cbs_replay::{LaneSet, NullBackend, Remap, Timing};
/// use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};
///
/// # fn main() -> Result<(), cbs_replay::ReplayError> {
/// let reqs = (0..400).map(|i| {
///     IoRequest::new(
///         VolumeId::new(i % 8),
///         if i % 3 == 0 { OpKind::Write } else { OpKind::Read },
///         (i as u64) * 4096,
///         4096,
///         Timestamp::from_micros(i as u64 * 25),
///     )
/// });
/// let mut set = LaneSet::new(4, |_lane| NullBackend::new())
///     .with_timing(Timing::multiplier(1000.0)?)
///     .with_remap(Remap::fan_out(2)?);
/// let report = set.run(reqs)?;
/// assert_eq!(report.merged.requests, 400);
/// assert_eq!(report.lanes(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LaneSet<B: StorageBackend> {
    backends: Vec<B>,
    timing: Timing,
    remap: Remap,
    channel_depth: usize,
    registry: Registry,
}

impl<B: StorageBackend + Send> LaneSet<B> {
    /// Creates a lane set of `lanes` (min 1) issue lanes, calling
    /// `make_backend(lane)` once per lane — each lane owns its backend
    /// instance exclusively for the lifetime of the set.
    pub fn new(lanes: usize, mut make_backend: impl FnMut(usize) -> B) -> Self {
        let lanes = lanes.max(1);
        LaneSet {
            backends: (0..lanes).map(&mut make_backend).collect(),
            timing: Timing::recorded(),
            remap: Remap::Identity,
            channel_depth: DEFAULT_LANE_CHANNEL_DEPTH,
            registry: Registry::new(),
        }
    }

    /// Sets the pacing (builder style).
    #[must_use]
    pub fn with_timing(mut self, timing: Timing) -> Self {
        self.timing = timing;
        self
    }

    /// Sets the volume remapping policy (builder style). Unlike
    /// [`Replayer`](crate::Replayer), each [`run`](LaneSet::run)
    /// starts from fresh fan-out cursors.
    #[must_use]
    pub fn with_remap(mut self, remap: Remap) -> Self {
        self.remap = remap;
        self
    }

    /// Records into (a clone of) `registry` so lane metrics export
    /// alongside the caller's.
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.registry = registry.clone();
        self
    }

    /// Sets how many batches may be in flight per lane channel (min 1)
    /// before the feeder blocks on backpressure.
    #[must_use]
    pub fn with_channel_depth(mut self, depth: usize) -> Self {
        self.channel_depth = depth.max(1);
        self
    }

    /// Number of issue lanes.
    pub fn lanes(&self) -> usize {
        self.backends.len()
    }

    /// The metric registry this lane set records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Borrows the per-lane backends (e.g. to sum
    /// [`MemBackend`](crate::MemBackend) page counts after a run).
    pub fn backends(&self) -> &[B] {
        &self.backends
    }

    /// Consumes the set, returning the per-lane backends.
    pub fn into_backends(self) -> Vec<B> {
        self.backends
    }

    /// Replays an infallible, time-ordered request stream across the
    /// lanes. Out-of-order timestamps are tolerated exactly as in the
    /// single-lane engine: targets clamp to the latest deadline.
    pub fn run<I>(&mut self, source: I) -> Result<MultiLaneReport, ReplayError>
    where
        I: IntoIterator<Item = IoRequest>,
    {
        self.run_observed(source, |_| {})
    }

    /// [`run`](LaneSet::run), additionally handing every issued
    /// (post-remap) request to `observe` **in stream order** on the
    /// feeder thread — the same hook and ordering contract as
    /// [`Replayer::run_observed`](crate::Replayer::run_observed), so
    /// re-analysis through a workbench is lane-count-independent.
    ///
    /// # Panics
    ///
    /// A panicking lane worker (e.g. a panicking backend) is re-raised
    /// on the calling thread — panic-poison parity with the
    /// single-lane engine, where the backend panic unwinds the caller
    /// directly.
    pub fn run_observed<I, F>(
        &mut self,
        source: I,
        mut observe: F,
    ) -> Result<MultiLaneReport, ReplayError>
    where
        I: IntoIterator<Item = IoRequest>,
        F: FnMut(IoRequest),
    {
        let lanes = self.backends.len();
        self.registry.gauge("replay.lanes").set(lanes as u64);
        let lane_metrics: Vec<LaneMetrics> = (0..lanes)
            .map(|i| LaneMetrics::new(&self.registry, i))
            .collect();
        let slept_at_start: Vec<u64> = lane_metrics.iter().map(|m| m.slept.get()).collect();
        let feed_backpressure = self.registry.counter("replay.feed_backpressure_nanos");
        let backpressure_at_start = feed_backpressure.get();

        let inv_rate = 1.0 / self.timing.rate();
        let mut remapper = VolumeRemapper::new(self.remap);
        let backends = std::mem::take(&mut self.backends);
        let clock = Stopwatch::start();

        let mut offered_nanos = 0u64;
        let outcomes: Vec<std::thread::Result<LaneOutcome<B>>> = std::thread::scope(|scope| {
            let mut senders: Vec<SyncSender<Vec<LaneEntry>>> = Vec::with_capacity(lanes);
            let mut handles = Vec::with_capacity(lanes);
            for (backend, metrics) in backends.into_iter().zip(&lane_metrics) {
                let (tx, rx) = sync_channel::<Vec<LaneEntry>>(self.channel_depth);
                senders.push(tx);
                let metrics = metrics.clone();
                handles.push(scope.spawn(move || lane_worker(rx, backend, clock, metrics)));
            }

            let mut feeder = Feeder::new(senders, &feed_backpressure);
            let mut t0: Option<Timestamp> = None;
            let mut last_target_nanos = 0u64;
            for req in source {
                let start = *t0.get_or_insert_with(|| req.ts());
                // Same clock arithmetic as the single-lane engine —
                // saturating scale, monotone clamp — computed centrally
                // so every lane issues against one global schedule and
                // offered_nanos is lane-count-independent.
                let delta = req.ts().saturating_duration_since(start);
                let scaled = delta.saturating_mul_f64(inv_rate);
                let target_nanos = scaled
                    .as_micros()
                    .saturating_mul(1000)
                    .max(last_target_nanos);
                last_target_nanos = target_nanos;

                let out = remapper.map(req);
                observe(out);
                if !feeder.push(target_nanos, out) {
                    // A lane's receiver is gone: the worker died. Stop
                    // feeding; the join below surfaces its error.
                    break;
                }
            }
            feeder.finish();
            offered_nanos = last_target_nanos;
            handles.into_iter().map(|h| h.join()).collect()
        });
        let wall_nanos = clock.elapsed_nanos();

        // Panic-poison parity: a panicking lane re-raises here, like
        // the single-lane engine's in-thread backend panic.
        let mut restored = Vec::with_capacity(lanes);
        let mut failure: Option<ReplayError> = None;
        for outcome in outcomes {
            match outcome {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(LaneOutcome { backend, result }) => {
                    if let (None, Err(source)) = (&failure, result) {
                        failure = Some(ReplayError::Backend {
                            backend: backend.name(),
                            source,
                        });
                    }
                    restored.push(backend);
                }
            }
        }
        self.backends = restored;
        if let Some(e) = failure {
            return Err(e);
        }

        // Fold the per-lane partials into the aggregate replay.*
        // metrics through the MERGEABLE merge() laws — counters add,
        // histogram buckets add — and snapshot the fold as the merged
        // report.
        let agg = AggregateMetrics::new(&self.registry);
        for m in &lane_metrics {
            agg.requests.merge(&m.requests);
            agg.bytes.merge(&m.bytes);
            agg.reads.merge(&m.reads);
            agg.writes.merge(&m.writes);
            agg.slept.merge(&m.slept);
            agg.issue_lag.merge(&m.issue_lag);
            agg.backend_nanos.merge(&m.backend_nanos);
        }
        let slept_nanos = lane_metrics
            .iter()
            .zip(&slept_at_start)
            .map(|(m, &s)| m.slept.get() - s)
            .sum();
        let merged = ReplayReport {
            requests: agg.requests.get(),
            bytes: agg.bytes.get(),
            reads: agg.reads.get(),
            writes: agg.writes.get(),
            wall_nanos,
            offered_nanos,
            slept_nanos,
            issue_lag: agg.issue_lag.snapshot(),
            backend: agg.backend_nanos.snapshot(),
        };
        Ok(MultiLaneReport {
            merged,
            per_lane: lane_metrics
                .iter()
                .enumerate()
                .map(|(i, m)| m.lane_report(i))
                .collect(),
            feed_backpressure_nanos: feed_backpressure.get() - backpressure_at_start,
        })
    }
}

/// Aggregate `replay.*` handles — the same names the single-lane
/// engine records into, so a registry export looks identical whether
/// one lane or eight issued the requests.
struct AggregateMetrics {
    requests: Counter,
    bytes: Counter,
    reads: Counter,
    writes: Counter,
    slept: Counter,
    issue_lag: Histogram,
    backend_nanos: Histogram,
}

impl AggregateMetrics {
    fn new(registry: &Registry) -> Self {
        AggregateMetrics {
            requests: registry.counter("replay.requests"),
            bytes: registry.counter("replay.bytes"),
            reads: registry.counter("replay.reads"),
            writes: registry.counter("replay.writes"),
            slept: registry.counter("replay.sleep_nanos"),
            issue_lag: registry.histogram("replay.issue_lag_nanos"),
            backend_nanos: registry.histogram("replay.backend_nanos"),
        }
    }
}

/// The feeder's routing and batching state. Lives on the calling
/// thread inside `run_observed`'s scope.
struct Feeder<'a> {
    senders: Vec<SyncSender<Vec<LaneEntry>>>,
    buffers: Vec<Vec<LaneEntry>>,
    /// Target time of the oldest buffered entry per lane (meaningful
    /// only while the lane's buffer is non-empty) — the staleness
    /// signal behind [`FLUSH_HORIZON_NANOS`].
    oldest: Vec<u64>,
    /// Sticky volume → lane assignment built on first touch.
    route: FxHashMap<VolumeId, u32>,
    /// Requests routed per lane so far — the least-loaded signal.
    loads: Vec<u64>,
    /// One-entry route cache: consecutive requests overwhelmingly
    /// share a volume, so most routes skip the hash lookup.
    last_route: Option<(VolumeId, u32)>,
    backpressure: &'a Counter,
    dead: bool,
}

impl<'a> Feeder<'a> {
    fn new(senders: Vec<SyncSender<Vec<LaneEntry>>>, backpressure: &'a Counter) -> Self {
        let lanes = senders.len();
        Feeder {
            senders,
            buffers: (0..lanes)
                .map(|_| Vec::with_capacity(LANE_BATCH_REQUESTS))
                .collect(),
            oldest: vec![0; lanes],
            route: FxHashMap::default(),
            loads: vec![0; lanes],
            last_route: None,
            backpressure,
            dead: false,
        }
    }

    /// Routes one post-remap request to its volume's lane and buffers
    /// it. Returns `false` once any lane's worker has died.
    fn push(&mut self, target_nanos: u64, req: IoRequest) -> bool {
        if self.dead {
            return false;
        }
        let lane = self.route_volume(req.volume());
        if self.buffers[lane].is_empty() {
            self.oldest[lane] = target_nanos;
        }
        self.buffers[lane].push((target_nanos, req));
        if self.buffers[lane].len() >= LANE_BATCH_REQUESTS {
            self.flush_blocking(lane);
        }
        // Staleness sweep: targets are monotone, so `target_nanos` is
        // the stream head — any other lane whose oldest buffered entry
        // trails it by more than the horizon is flushed now (without
        // blocking) instead of going stale in a feeder buffer while
        // this lane's traffic dominates the stream.
        for l in 0..self.buffers.len() {
            if !self.buffers[l].is_empty()
                && self.oldest[l].saturating_add(FLUSH_HORIZON_NANOS) <= target_nanos
            {
                self.try_flush(l);
            }
        }
        !self.dead
    }

    /// Returns the lane owning `volume`, assigning the least-loaded
    /// lane on first touch (ties to the lowest lane id) — the same
    /// skew-aware sticky routing the streaming shards use.
    #[inline]
    fn route_volume(&mut self, volume: VolumeId) -> usize {
        if let Some((v, l)) = self.last_route {
            if v == volume {
                self.loads[l as usize] += 1;
                return l as usize;
            }
        }
        let lane = match self.route.entry(volume) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let lightest = self
                    .loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &load)| load)
                    .map_or(0, |(l, _)| l);
                *e.insert(lightest as u32)
            }
        };
        self.last_route = Some((volume, lane));
        self.loads[lane as usize] += 1;
        lane as usize
    }

    /// Sends `lane`'s buffer, blocking when the channel is full. Only
    /// a full channel pays for a stopwatch: try first, time just the
    /// blocking retry. Before blocking, every *other* lane's buffer is
    /// opportunistically flushed so no entry sits in the feeder while
    /// it is stalled here.
    fn flush_blocking(&mut self, lane: usize) {
        if self.buffers[lane].is_empty() || self.dead {
            return;
        }
        let batch = std::mem::replace(
            &mut self.buffers[lane],
            Vec::with_capacity(LANE_BATCH_REQUESTS),
        );
        match self.senders[lane].try_send(batch) {
            Ok(()) => {}
            Err(TrySendError::Disconnected(_)) => self.dead = true,
            Err(TrySendError::Full(batch)) => {
                for other in 0..self.buffers.len() {
                    if other != lane {
                        self.try_flush(other);
                    }
                }
                let stall = Stopwatch::start();
                let sent = self.senders[lane].send(batch).is_ok();
                self.backpressure.add(stall.elapsed_nanos());
                if !sent {
                    self.dead = true;
                }
            }
        }
    }

    /// Sends `lane`'s buffer only if its channel has room; a full
    /// channel keeps the batch buffered (the lane's worker is behind
    /// on *earlier* entries anyway, so nothing is lost by waiting).
    fn try_flush(&mut self, lane: usize) {
        if self.buffers[lane].is_empty() || self.dead {
            return;
        }
        let batch = std::mem::replace(
            &mut self.buffers[lane],
            Vec::with_capacity(LANE_BATCH_REQUESTS),
        );
        match self.senders[lane].try_send(batch) {
            Ok(()) => {}
            Err(TrySendError::Disconnected(_)) => self.dead = true,
            Err(TrySendError::Full(batch)) => self.buffers[lane] = batch,
        }
    }

    /// Flushes every remaining buffer and closes the channels, letting
    /// the lane workers drain and exit.
    fn finish(mut self) {
        for lane in 0..self.buffers.len() {
            self.flush_blocking(lane);
        }
        // Dropping self drops the senders, closing every channel.
    }
}

/// One issue lane: drain entry batches from the channel, pace each
/// entry on the shared run clock, issue it to this lane's backend, and
/// record into the lane's own metrics. Returns the backend plus the
/// first I/O error (or the final flush's result).
fn lane_worker<B: StorageBackend>(
    rx: Receiver<Vec<LaneEntry>>,
    mut backend: B,
    clock: Stopwatch,
    metrics: LaneMetrics,
) -> LaneOutcome<B> {
    let mut failed: Option<io::Error> = None;
    'drain: for batch in rx {
        for (target_nanos, req) in batch {
            wait_until(&clock, target_nanos, &metrics.slept);
            let lag = clock.elapsed_nanos().saturating_sub(target_nanos);
            metrics.issue_lag.record(lag);
            let service = Stopwatch::start();
            let io = if req.is_write() {
                backend.write(req.volume(), req.offset(), req.len())
            } else {
                backend.read(req.volume(), req.offset(), req.len())
            };
            metrics.backend_nanos.record(service.elapsed_nanos());
            match io {
                Ok(()) => {
                    metrics.requests.inc();
                    metrics.bytes.add(req.len() as u64);
                    if req.is_write() {
                        metrics.writes.inc();
                    } else {
                        metrics.reads.inc();
                    }
                }
                Err(e) => {
                    // Abort the lane at the first failure — the break
                    // drops the receiver, which the feeder notices on
                    // its next send to this lane.
                    failed = Some(e);
                    break 'drain;
                }
            }
        }
    }
    let result = match failed {
        Some(e) => Err(e),
        None => backend.flush(),
    };
    LaneOutcome { backend, result }
}

/// The lane-side sleep-then-spin wait: identical to the single-lane
/// engine's, except the spin window *yields* between spins — lanes
/// spin concurrently, and on small hosts an unyielding spinner would
/// starve the lane (or the feeder) whose deadline is actually due.
fn wait_until(clock: &Stopwatch, target_nanos: u64, slept: &Counter) {
    loop {
        let now = clock.elapsed_nanos();
        if now >= target_nanos {
            return;
        }
        let remaining = target_nanos - now;
        if remaining > SPIN_WINDOW_NANOS {
            let nap = Stopwatch::start();
            std::thread::sleep(std::time::Duration::from_nanos(
                remaining - SPIN_WINDOW_NANOS,
            ));
            slept.add(nap.elapsed_nanos());
        } else {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{MemBackend, NullBackend};
    use crate::schedule::Replayer;
    use cbs_trace::OpKind;

    fn make(n: u64, gap_us: u64) -> Vec<IoRequest> {
        (0..n)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new((i % 8) as u32),
                    if i % 4 == 0 {
                        OpKind::Write
                    } else {
                        OpKind::Read
                    },
                    i * 4096,
                    4096,
                    Timestamp::from_micros(i * gap_us),
                )
            })
            .collect()
    }

    #[test]
    fn lane_counts_and_merge_match_single_lane() {
        let reqs = make(2000, 3);
        let single = Replayer::new(NullBackend::new())
            .with_timing(Timing::multiplier(1000.0).unwrap())
            .run(reqs.clone())
            .unwrap();
        for lanes in [1usize, 2, 4, 7] {
            let mut set = LaneSet::new(lanes, |_| NullBackend::new())
                .with_timing(Timing::multiplier(1000.0).unwrap());
            let multi = set.run(reqs.clone()).unwrap();
            assert_eq!(multi.merged.requests, single.requests, "lanes={lanes}");
            assert_eq!(multi.merged.bytes, single.bytes, "lanes={lanes}");
            assert_eq!(multi.merged.reads, single.reads, "lanes={lanes}");
            assert_eq!(multi.merged.writes, single.writes, "lanes={lanes}");
            assert_eq!(
                multi.merged.offered_nanos, single.offered_nanos,
                "lanes={lanes}"
            );
            assert_eq!(multi.merged.issue_lag.count, single.issue_lag.count);
            assert_eq!(multi.lanes(), lanes);
            let per_lane_sum: u64 = multi.per_lane.iter().map(|l| l.requests).sum();
            assert_eq!(per_lane_sum, multi.merged.requests);
        }
    }

    #[test]
    fn sticky_routing_keeps_each_volume_on_one_lane() {
        let reqs = make(800, 1);
        let mut set =
            LaneSet::new(3, |_| MemBackend::new()).with_timing(Timing::multiplier(1000.0).unwrap());
        set.run(reqs).unwrap();
        // 8 volumes, each written to distinct offsets: every page must
        // be resident in exactly one lane's backend.
        let mut seen: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for (lane, backend) in set.backends().iter().enumerate() {
            if backend.page_count() > 0 {
                // (volume extraction via page_count only — the law test
                // in tests/replay_equivalence.rs checks totals.)
                seen.insert(lane as u32, backend.page_count());
            }
        }
        let total: usize = seen.values().sum();
        let single_backend = {
            let mut r =
                Replayer::new(MemBackend::new()).with_timing(Timing::multiplier(1000.0).unwrap());
            r.run(make(800, 1)).unwrap();
            r.into_backend()
        };
        assert_eq!(total, single_backend.page_count());
    }

    #[test]
    fn observer_sees_post_remap_stream_in_order() {
        let reqs = make(300, 2);
        let mut seen = Vec::new();
        let mut set = LaneSet::new(4, |_| NullBackend::new())
            .with_timing(Timing::multiplier(1000.0).unwrap())
            .with_remap(Remap::fan_out(2).unwrap());
        set.run_observed(reqs.clone(), |req| seen.push(req))
            .unwrap();
        assert_eq!(seen.len(), 300);
        for (src, out) in reqs.iter().zip(&seen) {
            assert_eq!(src.ts(), out.ts());
            assert_eq!(out.volume().get() / 2, src.volume().get());
        }
    }

    #[test]
    fn empty_source_reports_zeroes() {
        let mut set = LaneSet::new(2, |_| NullBackend::new());
        let report = set.run(Vec::new()).unwrap();
        assert_eq!(report.merged.requests, 0);
        assert_eq!(report.merged.offered_nanos, 0);
        assert_eq!(report.per_lane.len(), 2);
        assert!((report.merged.achieved_offered_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn zero_lanes_clamps_to_one() {
        let set = LaneSet::new(0, |_| NullBackend::new());
        assert_eq!(set.lanes(), 1);
    }

    #[test]
    fn registry_exports_lane_metrics() {
        let registry = Registry::new();
        let mut set = LaneSet::new(2, |_| NullBackend::new())
            .with_timing(Timing::multiplier(1000.0).unwrap())
            .with_registry(&registry);
        set.run(make(100, 1)).unwrap();
        let json = registry.to_json();
        assert!(json.contains("\"replay.lanes\""));
        assert!(json.contains("\"replay.lane0.requests\""));
        assert!(json.contains("\"replay.lane1.issue_lag_nanos\""));
        assert!(json.contains("\"replay.requests\""), "aggregates exported");
        assert!(json.contains("\"replay.feed_backpressure_nanos\""));
    }

    /// An erroring backend fails the run with the lane's backend name,
    /// like the single-lane engine.
    #[test]
    fn lane_io_error_surfaces_as_backend_error() {
        #[derive(Debug)]
        struct FailingBackend {
            countdown: u32,
        }
        impl StorageBackend for FailingBackend {
            fn name(&self) -> &'static str {
                "failing"
            }
            fn read(&mut self, _v: VolumeId, _o: u64, _l: u32) -> io::Result<()> {
                self.write(_v, _o, _l)
            }
            fn write(&mut self, _v: VolumeId, _o: u64, _l: u32) -> io::Result<()> {
                if self.countdown == 0 {
                    return Err(io::Error::other("synthetic lane failure"));
                }
                self.countdown -= 1;
                Ok(())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut set = LaneSet::new(3, |_| FailingBackend { countdown: 50 })
            .with_timing(Timing::multiplier(1000.0).unwrap());
        let err = set.run(make(5000, 1)).unwrap_err();
        assert!(
            matches!(
                err,
                ReplayError::Backend {
                    backend: "failing",
                    ..
                }
            ),
            "{err}"
        );
    }
}
