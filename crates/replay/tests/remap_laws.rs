//! Property tests for the volume-remapping laws.
//!
//! The whole point of remapping is to move load *without changing it*:
//! every source request maps to exactly one output request with the
//! same op, offset, length, and timestamp. These tests pin the
//! conservation laws the re-analysis equivalence argument rests on —
//! per-source-request and total request/byte counts are preserved by
//! 1→N fan-out and N→1 merge, fan-out spreads each source volume's
//! traffic evenly, and merge never splits a source volume across
//! targets.

use proptest::prelude::*;

use std::collections::HashMap;

use cbs_replay::{NullBackend, Remap, Replayer, Timing, VolumeRemapper};
use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};

prop_compose! {
    /// An arbitrary small request.
    fn arb_request()(
        vol in 0u32..64,
        op in prop_oneof![Just(OpKind::Read), Just(OpKind::Write)],
        offset in 0u64..(1 << 40),
        len in 0u32..=(1 << 20),
        ts in 0u64..1_000_000,
    ) -> IoRequest {
        IoRequest::new(
            VolumeId::new(vol),
            op,
            offset,
            len,
            Timestamp::from_micros(ts),
        )
    }
}

fn arb_stream() -> impl Strategy<Value = Vec<IoRequest>> {
    proptest::collection::vec(arb_request(), 0..300)
}

prop_compose! {
    /// Any of the three remap policies with a small factor.
    fn arb_mode()(kind in 0u32..3, n in 1u32..12) -> Remap {
        match kind {
            0 => Remap::Identity,
            1 => Remap::FanOut(n),
            _ => Remap::Merge(n),
        }
    }
}

/// (request count, byte count) per volume.
fn tallies(reqs: &[IoRequest]) -> HashMap<u32, (u64, u64)> {
    let mut t: HashMap<u32, (u64, u64)> = HashMap::new();
    for r in reqs {
        let e = t.entry(r.volume().get()).or_default();
        e.0 += 1;
        e.1 += r.len() as u64;
    }
    t
}

proptest! {
    /// Every remap mode maps each source request to exactly one output
    /// request that differs at most in volume id — so total request
    /// and byte counts are conserved per source request, not just in
    /// aggregate.
    #[test]
    fn remap_preserves_everything_but_volume(
        stream in arb_stream(),
        mode in arb_mode(),
    ) {
        let mut remapper = VolumeRemapper::new(mode);
        let out: Vec<IoRequest> = stream.iter().map(|r| remapper.map(*r)).collect();
        prop_assert_eq!(out.len(), stream.len());
        for (src, dst) in stream.iter().zip(&out) {
            prop_assert_eq!(src.op(), dst.op());
            prop_assert_eq!(src.offset(), dst.offset());
            prop_assert_eq!(src.len(), dst.len());
            prop_assert_eq!(src.ts(), dst.ts());
        }
        let total_bytes: u64 = stream.iter().map(|r| r.len() as u64).sum();
        let out_bytes: u64 = out.iter().map(|r| r.len() as u64).sum();
        prop_assert_eq!(total_bytes, out_bytes);
    }

    /// 1→N fan-out: source volume `v`'s traffic lands only on targets
    /// `v*n..v*n+n`, request counts per target differ by at most one
    /// (round-robin balance), and per-source totals are conserved.
    #[test]
    fn fan_out_spreads_evenly_and_conserves(
        stream in arb_stream(),
        n in 1u32..12,
    ) {
        let mut remapper = VolumeRemapper::new(Remap::FanOut(n));
        let out: Vec<IoRequest> = stream.iter().map(|r| remapper.map(*r)).collect();
        let src_t = tallies(&stream);
        let out_t = tallies(&out);
        for (&v, &(reqs, bytes)) in &src_t {
            let lanes: Vec<(u64, u64)> = (0..n)
                .map(|k| out_t.get(&(v * n + k)).copied().unwrap_or((0, 0)))
                .collect();
            let (lane_reqs, lane_bytes): (u64, u64) = lanes
                .iter()
                .fold((0, 0), |(a, b), &(c, d)| (a + c, b + d));
            prop_assert_eq!(lane_reqs, reqs, "requests conserved for volume {}", v);
            prop_assert_eq!(lane_bytes, bytes, "bytes conserved for volume {}", v);
            let max = lanes.iter().map(|l| l.0).max().unwrap_or(0);
            let min = lanes.iter().map(|l| l.0).min().unwrap_or(0);
            prop_assert!(max - min <= 1, "round robin must balance: {:?}", lanes);
        }
        // No target outside some source's lane range receives traffic.
        let total_out: u64 = out_t.values().map(|t| t.0).sum();
        let total_src: u64 = src_t.values().map(|t| t.0).sum();
        prop_assert_eq!(total_out, total_src);
    }

    /// N→1 merge: target `t` receives exactly the union of source
    /// volumes `t*n..t*n+n` — totals conserved, nothing split.
    #[test]
    fn merge_folds_and_conserves(
        stream in arb_stream(),
        n in 1u32..12,
    ) {
        let mut remapper = VolumeRemapper::new(Remap::Merge(n));
        let out: Vec<IoRequest> = stream.iter().map(|r| remapper.map(*r)).collect();
        let src_t = tallies(&stream);
        let out_t = tallies(&out);
        let mut expect: HashMap<u32, (u64, u64)> = HashMap::new();
        for (&v, &(reqs, bytes)) in &src_t {
            let e = expect.entry(v / n).or_default();
            e.0 += reqs;
            e.1 += bytes;
        }
        prop_assert_eq!(out_t, expect);
    }

    /// The conservation laws survive the full replay path, not just
    /// the remapper in isolation: a ×1000 null-backend replay reports
    /// exactly the source's request/byte/read/write totals under any
    /// remap mode.
    #[test]
    fn replay_report_conserves_totals(
        stream in arb_stream(),
        mode in arb_mode(),
    ) {
        // Time-order the stream the way real sources are.
        let mut stream = stream;
        stream.sort_by_key(|r| r.ts());
        let mut replayer = Replayer::new(NullBackend::new())
            .with_timing(Timing::multiplier(1000.0).expect("valid rate"))
            .with_remap(mode);
        let report = replayer.run(stream.iter().copied()).expect("replay");
        prop_assert_eq!(report.requests, stream.len() as u64);
        prop_assert_eq!(
            report.bytes,
            stream.iter().map(|r| r.len() as u64).sum::<u64>()
        );
        prop_assert_eq!(
            report.reads,
            stream.iter().filter(|r| r.is_read()).count() as u64
        );
        prop_assert_eq!(
            report.writes,
            stream.iter().filter(|r| r.is_write()).count() as u64
        );
    }
}
