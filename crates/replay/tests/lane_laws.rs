//! Property tests for the multi-lane issue engine's merged-report
//! laws.
//!
//! The lane fold must be invisible in everything except timing: at any
//! lane count, the merged [`MultiLaneReport`] carries exactly the
//! request/byte/read/write totals (and lag/service sample counts) of
//! the single-lane run over the same source and remap mode, the
//! per-lane partials sum to the merged totals, per-volume backend
//! state is conserved across the lane backends, and a panicking
//! backend poisons the multi-lane run exactly as it does the
//! single-lane one.

use proptest::prelude::*;

use std::panic::{catch_unwind, AssertUnwindSafe};

use cbs_replay::{LaneSet, MemBackend, NullBackend, Remap, Replayer, StorageBackend, Timing};
use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};

prop_compose! {
    /// An arbitrary small request.
    fn arb_request()(
        vol in 0u32..64,
        op in prop_oneof![Just(OpKind::Read), Just(OpKind::Write)],
        offset in 0u64..(1 << 40),
        len in 0u32..=(1 << 20),
        ts in 0u64..1_000_000,
    ) -> IoRequest {
        IoRequest::new(
            VolumeId::new(vol),
            op,
            offset,
            len,
            Timestamp::from_micros(ts),
        )
    }
}

prop_compose! {
    /// A time-ordered stream, the way real sources arrive.
    fn arb_stream()(
        mut v in proptest::collection::vec(arb_request(), 0..300),
    ) -> Vec<IoRequest> {
        v.sort_by_key(|r| r.ts());
        v
    }
}

prop_compose! {
    /// Any of the three remap policies with a small factor.
    fn arb_mode()(kind in 0u32..3, n in 1u32..12) -> Remap {
        match kind {
            0 => Remap::Identity,
            1 => Remap::FanOut(n),
            _ => Remap::Merge(n),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole law: the merged multi-lane report is
    /// request/byte/read/write-identical to the single-lane run at any
    /// lane count, under any remap mode — and the offered schedule
    /// (computed centrally by the feeder) matches too.
    #[test]
    fn merged_report_matches_single_lane(
        stream in arb_stream(),
        mode in arb_mode(),
        lanes in 1usize..9,
    ) {
        let single = Replayer::new(NullBackend::new())
            .with_timing(Timing::multiplier(1000.0).expect("valid rate"))
            .with_remap(mode)
            .run(stream.iter().copied())
            .expect("single-lane replay");
        let mut set = LaneSet::new(lanes, |_| NullBackend::new())
            .with_timing(Timing::multiplier(1000.0).expect("valid rate"))
            .with_remap(mode);
        let multi = set.run(stream.iter().copied()).expect("multi-lane replay");

        prop_assert_eq!(multi.merged.requests, single.requests);
        prop_assert_eq!(multi.merged.bytes, single.bytes);
        prop_assert_eq!(multi.merged.reads, single.reads);
        prop_assert_eq!(multi.merged.writes, single.writes);
        prop_assert_eq!(multi.merged.offered_nanos, single.offered_nanos);
        prop_assert_eq!(multi.merged.issue_lag.count, single.issue_lag.count);
        prop_assert_eq!(multi.merged.backend.count, single.backend.count);
    }

    /// The fold is conservative: per-lane partials sum to the merged
    /// totals (Counter merge adds, Histogram merge adds buckets), and
    /// every lane's lag histogram holds exactly the requests it
    /// issued.
    #[test]
    fn per_lane_partials_sum_to_merged(
        stream in arb_stream(),
        lanes in 1usize..9,
    ) {
        let mut set = LaneSet::new(lanes, |_| NullBackend::new())
            .with_timing(Timing::multiplier(1000.0).expect("valid rate"));
        let multi = set.run(stream.iter().copied()).expect("replay");
        prop_assert_eq!(multi.per_lane.len(), lanes);
        let sums = multi.per_lane.iter().fold((0u64, 0u64, 0u64, 0u64), |acc, l| {
            (
                acc.0 + l.requests,
                acc.1 + l.bytes,
                acc.2 + l.reads,
                acc.3 + l.writes,
            )
        });
        prop_assert_eq!(sums.0, multi.merged.requests);
        prop_assert_eq!(sums.1, multi.merged.bytes);
        prop_assert_eq!(sums.2, multi.merged.reads);
        prop_assert_eq!(sums.3, multi.merged.writes);
        for lane in &multi.per_lane {
            prop_assert_eq!(lane.issue_lag.count, lane.requests);
            prop_assert_eq!(lane.backend.count, lane.requests);
        }
    }

    /// Backend-state conservation: sticky per-volume routing means the
    /// union of the lane MemBackends holds exactly the pages the
    /// single-lane MemBackend holds — same page count, same resident
    /// bytes, no page written twice across lanes.
    #[test]
    fn mem_backend_state_is_lane_count_invariant(
        stream in arb_stream(),
        mode in arb_mode(),
        lanes in prop_oneof![Just(2usize), Just(4), Just(7)],
    ) {
        let mut single = Replayer::new(MemBackend::new())
            .with_timing(Timing::multiplier(1000.0).expect("valid rate"))
            .with_remap(mode);
        single.run(stream.iter().copied()).expect("single-lane replay");
        let single_backend = single.into_backend();

        let mut set = LaneSet::new(lanes, |_| MemBackend::new())
            .with_timing(Timing::multiplier(1000.0).expect("valid rate"))
            .with_remap(mode);
        set.run(stream.iter().copied()).expect("multi-lane replay");
        let lane_pages: usize = set.backends().iter().map(MemBackend::page_count).sum();
        let lane_bytes: u64 = set.backends().iter().map(MemBackend::resident_bytes).sum();
        prop_assert_eq!(lane_pages, single_backend.page_count());
        prop_assert_eq!(lane_bytes, single_backend.resident_bytes());
    }
}

/// A backend that panics after a set number of operations — the
/// poison-parity probe.
#[derive(Debug)]
struct PanickingBackend {
    remaining: u32,
}

impl StorageBackend for PanickingBackend {
    fn name(&self) -> &'static str {
        "panicking"
    }
    fn read(&mut self, v: VolumeId, o: u64, l: u32) -> std::io::Result<()> {
        self.write(v, o, l)
    }
    fn write(&mut self, _v: VolumeId, _o: u64, _l: u32) -> std::io::Result<()> {
        assert!(self.remaining > 0, "synthetic backend panic");
        self.remaining -= 1;
        Ok(())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Panic-poison parity: a backend that panics mid-replay unwinds
    /// the caller in both engines — the multi-lane run re-raises the
    /// lane worker's panic instead of swallowing it into a partial
    /// report.
    #[test]
    fn panicking_backend_poisons_both_engines(
        lanes in 1usize..6,
        fuse in 0u32..40,
    ) {
        let stream: Vec<IoRequest> = (0..200u64)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new((i % 8) as u32),
                    OpKind::Write,
                    i * 4096,
                    4096,
                    Timestamp::from_micros(i),
                )
            })
            .collect();

        let single = catch_unwind(AssertUnwindSafe(|| {
            Replayer::new(PanickingBackend { remaining: fuse })
                .with_timing(Timing::multiplier(1000.0).expect("valid rate"))
                .run(stream.iter().copied())
        }));
        prop_assert!(single.is_err(), "single-lane engine must unwind");

        let multi = catch_unwind(AssertUnwindSafe(|| {
            LaneSet::new(lanes, |_| PanickingBackend { remaining: fuse })
                .with_timing(Timing::multiplier(1000.0).expect("valid rate"))
                .run(stream.iter().copied())
        }));
        prop_assert!(multi.is_err(), "multi-lane engine must unwind (poison parity)");
    }
}
