//! Tukey boxplot summaries: [`BoxplotSummary`].

use crate::Quantiles;

/// The five-number summary plus Tukey whiskers and outlier count — the
/// exact data a boxplot figure renders.
///
/// The whiskers follow the common Tukey convention: the most extreme
/// samples within `1.5 × IQR` of the quartiles; samples beyond them are
/// outliers (the paper's Fig. 11 reports 147 outlier volumes this way).
///
/// # Example
///
/// ```
/// use cbs_stats::BoxplotSummary;
///
/// let b = BoxplotSummary::from_unsorted(vec![
///     1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 100.0,
/// ]).unwrap();
/// assert_eq!(b.median(), 5.0);
/// assert_eq!(b.outlier_count(), 1); // the 100.0
/// assert!(b.whisker_high() <= 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoxplotSummary {
    min: f64,
    q1: f64,
    median: f64,
    q3: f64,
    max: f64,
    whisker_low: f64,
    whisker_high: f64,
    outlier_count: usize,
    count: usize,
}

impl BoxplotSummary {
    /// Builds a summary from unsorted samples; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_unsorted(samples: Vec<f64>) -> Option<Self> {
        Self::from_quantiles(&Quantiles::from_unsorted(samples))
    }

    /// Builds a summary from an existing quantile set; `None` when empty.
    pub fn from_quantiles(q: &Quantiles) -> Option<Self> {
        let q1 = q.quantile(0.25)?;
        let median = q.quantile(0.5)?;
        let q3 = q.quantile(0.75)?;
        let iqr = q3 - q1;
        let fence_low = q1 - 1.5 * iqr;
        let fence_high = q3 + 1.5 * iqr;
        let sorted = q.as_sorted();
        // Whiskers: the most extreme samples inside the fences. Q1/Q3
        // always sit inside their own fence, so the fallbacks never
        // move the whisker past the box.
        let whisker_low = sorted
            .iter()
            .copied()
            .find(|&x| x >= fence_low)
            .unwrap_or(q1);
        let whisker_high = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= fence_high)
            .unwrap_or(q3);
        let outlier_count = sorted
            .iter()
            .filter(|&&x| x < fence_low || x > fence_high)
            .count();
        Some(BoxplotSummary {
            min: sorted[0],
            q1,
            median,
            q3,
            max: sorted[sorted.len() - 1],
            whisker_low,
            whisker_high,
            outlier_count,
            count: sorted.len(),
        })
    }

    /// Smallest sample (including outliers).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// First quartile.
    pub fn q1(&self) -> f64 {
        self.q1
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.median
    }

    /// Third quartile.
    pub fn q3(&self) -> f64 {
        self.q3
    }

    /// Largest sample (including outliers).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Interquartile range (`q3 − q1`).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Lower whisker (smallest sample within 1.5 × IQR of Q1).
    pub fn whisker_low(&self) -> f64 {
        self.whisker_low
    }

    /// Upper whisker (largest sample within 1.5 × IQR of Q3).
    pub fn whisker_high(&self) -> f64 {
        self.whisker_high
    }

    /// Number of samples outside the whiskers.
    pub fn outlier_count(&self) -> usize {
        self.outlier_count
    }

    /// Number of samples summarized.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_yields_none() {
        assert!(BoxplotSummary::from_unsorted(Vec::new()).is_none());
    }

    #[test]
    fn single_sample() {
        let b = BoxplotSummary::from_unsorted(vec![5.0]).unwrap();
        assert_eq!(b.min(), 5.0);
        assert_eq!(b.q1(), 5.0);
        assert_eq!(b.median(), 5.0);
        assert_eq!(b.q3(), 5.0);
        assert_eq!(b.max(), 5.0);
        assert_eq!(b.iqr(), 0.0);
        assert_eq!(b.outlier_count(), 0);
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn quartiles_of_uniform() {
        let b = BoxplotSummary::from_unsorted((1..=9).map(f64::from).collect()).unwrap();
        assert_eq!(b.q1(), 3.0);
        assert_eq!(b.median(), 5.0);
        assert_eq!(b.q3(), 7.0);
        assert_eq!(b.whisker_low(), 1.0);
        assert_eq!(b.whisker_high(), 9.0);
        assert_eq!(b.outlier_count(), 0);
    }

    #[test]
    fn detects_outliers_both_sides() {
        let mut samples: Vec<f64> = (10..=20).map(f64::from).collect();
        samples.push(1000.0);
        samples.push(-1000.0);
        let b = BoxplotSummary::from_unsorted(samples).unwrap();
        assert_eq!(b.outlier_count(), 2);
        assert_eq!(b.max(), 1000.0);
        assert_eq!(b.min(), -1000.0);
        assert!(b.whisker_high() <= 20.0);
        assert!(b.whisker_low() >= 10.0);
    }

    #[test]
    fn whiskers_clamp_to_extremes_without_outliers() {
        let b = BoxplotSummary::from_unsorted(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(b.whisker_low(), b.min());
        assert_eq!(b.whisker_high(), b.max());
    }

    #[test]
    fn ties_everywhere() {
        let b = BoxplotSummary::from_unsorted(vec![2.0; 50]).unwrap();
        assert_eq!(b.median(), 2.0);
        assert_eq!(b.iqr(), 0.0);
        assert_eq!(b.outlier_count(), 0);
    }
}
