//! Empirical cumulative distribution functions: [`Cdf`].

use crate::Quantiles;

/// An empirical CDF over `f64` samples, with figure-friendly plotting
/// helpers.
///
/// MERGEABLE: CDFs form a commutative monoid under [`merge`] (the
/// underlying sorted sample sets merge; an empty CDF is the identity),
/// so per-partition CDFs combine into the exact corpus-wide CDF in any
/// grouping order.
///
/// [`merge`]: Cdf::merge
///
/// Backed by the exact sorted sample set ([`Quantiles`]); use
/// [`crate::LogHistogram::cdf_points`] for distributions too large to
/// materialize.
///
/// # Example
///
/// ```
/// use cbs_stats::Cdf;
///
/// let cdf = Cdf::from_unsorted(vec![1.0, 1.0, 2.0, 10.0]);
/// assert_eq!(cdf.fraction_at_or_below(1.0), 0.5);
/// assert_eq!(cdf.value_at(1.0), Some(10.0));
/// let pts = cdf.points();
/// assert_eq!(pts.first(), Some(&(1.0, 0.5)));
/// assert_eq!(pts.last(), Some(&(10.0, 1.0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cdf {
    quantiles: Quantiles,
}

impl Cdf {
    /// Builds from unsorted samples.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_unsorted(samples: Vec<f64>) -> Self {
        Cdf {
            quantiles: Quantiles::from_unsorted(samples),
        }
    }

    /// Builds from an existing quantile set.
    pub fn from_quantiles(quantiles: Quantiles) -> Self {
        Cdf { quantiles }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.quantiles.len()
    }

    /// Returns `true` if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.quantiles.is_empty()
    }

    /// The underlying quantiles.
    pub fn quantiles(&self) -> &Quantiles {
        &self.quantiles
    }

    /// The fraction of samples ≤ `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        self.quantiles.fraction_at_or_below(x)
    }

    /// The value below which a `fraction` of samples fall
    /// (inverse CDF), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn value_at(&self, fraction: f64) -> Option<f64> {
        self.quantiles.quantile(fraction)
    }

    /// Merges another CDF's samples into this one.
    ///
    /// The result is exactly `from_unsorted` of the concatenated
    /// sample sets.
    pub fn merge(&mut self, other: &Cdf) {
        self.quantiles.merge(&other.quantiles);
    }

    /// The full step-function points `(value, cumulative_fraction)`:
    /// one point per distinct sample value.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let sorted = self.quantiles.as_sorted();
        let n = sorted.len();
        let mut points: Vec<(f64, f64)> = Vec::new();
        for (i, &v) in sorted.iter().enumerate() {
            let frac = (i + 1) as f64 / n as f64;
            match points.last_mut() {
                Some(last) if last.0 == v => last.1 = frac,
                _ => points.push((v, frac)),
            }
        }
        points
    }

    /// At most `max_points` points, evenly spaced in cumulative
    /// fraction — what a plotted figure actually needs.
    ///
    /// # Panics
    ///
    /// Panics if `max_points` is zero.
    pub fn downsampled_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        assert!(max_points > 0, "max_points must be positive");
        let full = self.points();
        if full.len() <= max_points {
            return full;
        }
        let mut out = Vec::with_capacity(max_points);
        for k in 0..max_points {
            // evenly spaced target fractions ending exactly at 1.0
            let target = (k + 1) as f64 / max_points as f64;
            let idx = full.partition_point(|&(_, f)| f < target);
            let idx = idx.min(full.len() - 1);
            let p = full[idx];
            if out.last() != Some(&p) {
                out.push(p);
            }
        }
        out
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Cdf::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::from_unsorted(Vec::new());
        assert!(cdf.is_empty());
        assert!(cdf.points().is_empty());
        assert_eq!(cdf.value_at(0.5), None);
    }

    #[test]
    fn points_collapse_ties() {
        let cdf = Cdf::from_unsorted(vec![2.0, 1.0, 2.0, 3.0]);
        assert_eq!(cdf.points(), vec![(1.0, 0.25), (2.0, 0.75), (3.0, 1.0)]);
    }

    #[test]
    fn points_are_monotone() {
        let cdf: Cdf = (0..1000).map(|i| f64::from(i % 37)).collect();
        let pts = cdf.points();
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn downsampling_preserves_endpoints_and_monotonicity() {
        let cdf: Cdf = (0..10_000).map(f64::from).collect();
        let pts = cdf.downsampled_points(50);
        assert!(pts.len() <= 50);
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn downsampling_noop_when_small() {
        let cdf = Cdf::from_unsorted(vec![1.0, 2.0]);
        assert_eq!(cdf.downsampled_points(10), cdf.points());
    }

    #[test]
    #[should_panic(expected = "max_points")]
    fn downsampling_rejects_zero() {
        let cdf = Cdf::from_unsorted(vec![1.0]);
        let _ = cdf.downsampled_points(0);
    }

    #[test]
    fn inverse_cdf() {
        let cdf = Cdf::from_unsorted(vec![10.0, 20.0, 30.0]);
        assert_eq!(cdf.value_at(0.0), Some(10.0));
        assert_eq!(cdf.value_at(0.5), Some(20.0));
        assert_eq!(cdf.value_at(1.0), Some(30.0));
    }
}
