//! Log-linear (HDR-style) histograms over `u64` values: [`LogHistogram`].

/// A log-linear histogram over `u64` values with bounded relative error.
///
/// MERGEABLE: histograms of the same precision form a commutative
/// monoid under [`merge`] (bucket counts and totals add; a fresh
/// histogram is the identity), so per-partition histograms combine
/// into the exact corpus-wide distribution in any grouping order.
///
/// [`merge`]: LogHistogram::merge
///
/// The value space is divided into buckets that are exact below
/// `2^precision_bits` and grow geometrically above it, with
/// `2^precision_bits` linear sub-buckets per power of two. Any recorded
/// value is therefore represented by its bucket with relative error at
/// most `2^-precision_bits`.
///
/// This is the workhorse for elapsed-time distributions (inter-arrival
/// times, RAW/WAW/RAR/WAR times, update intervals): a full corpus has
/// hundreds of millions of observations spanning ten orders of magnitude
/// (microseconds to weeks), which fit here in a few KiB with ~1 %
/// quantile error at the default 6 precision bits.
///
/// # Example
///
/// ```
/// use cbs_stats::LogHistogram;
///
/// let mut h = LogHistogram::new(6);
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let median = h.quantile(0.5).unwrap();
/// // within 2^-6 relative error of the true median 500
/// assert!((median as f64 - 500.0).abs() / 500.0 < 1.0 / 64.0 + 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogHistogram {
    precision_bits: u32,
    counts: Vec<u64>,
    total: u64,
}

impl LogHistogram {
    /// Maximum supported precision (sub-bucket bits per power of two).
    pub const MAX_PRECISION_BITS: u32 = 16;

    /// Creates a histogram with the given precision.
    ///
    /// `precision_bits = b` bounds the relative error of any
    /// reconstructed value by `2^-b`. The bucket array size is
    /// `(65 - b) << b`; the default used across the workbench is 6
    /// (≈ 1.6 % error, 3,776 buckets).
    ///
    /// # Panics
    ///
    /// Panics if `precision_bits` is zero or exceeds
    /// [`Self::MAX_PRECISION_BITS`].
    pub fn new(precision_bits: u32) -> Self {
        assert!(
            (1..=Self::MAX_PRECISION_BITS).contains(&precision_bits),
            "precision_bits must be in 1..={}, got {precision_bits}",
            Self::MAX_PRECISION_BITS
        );
        let buckets = Self::bucket_count(precision_bits);
        LogHistogram {
            precision_bits,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// Creates a histogram with the workbench default precision (6 bits,
    /// ≈ 1.6 % relative error).
    pub fn with_default_precision() -> Self {
        Self::new(6)
    }

    fn bucket_count(b: u32) -> usize {
        // Exact region: 2^b buckets for values 0..2^b. Each exponent
        // e in b..64 contributes 2^b sub-buckets.
        ((64 - b as usize) + 1) << b
    }

    /// The precision in bits.
    pub fn precision_bits(&self) -> u32 {
        self.precision_bits
    }

    /// The guaranteed relative-error bound (`2^-precision_bits`).
    pub fn relative_error_bound(&self) -> f64 {
        1.0 / (1u64 << self.precision_bits) as f64
    }

    #[inline]
    fn index_of(&self, value: u64) -> usize {
        let b = self.precision_bits;
        if value < (1u64 << b) {
            value as usize
        } else {
            let e = 63 - value.leading_zeros(); // value in [2^e, 2^{e+1}), e >= b
            let sub = (value >> (e - b)) as usize - (1usize << b);
            (((e - b + 1) as usize) << b) + sub
        }
    }

    /// Lower bound (inclusive) of the value range of bucket `index`.
    fn bucket_lower(&self, index: usize) -> u64 {
        let b = self.precision_bits;
        let base = 1usize << b;
        if index < base {
            index as u64
        } else {
            let group = (index >> b) - 1; // 0-based group above the exact region
            let sub = (index & (base - 1)) as u64;
            let e = b + group as u32;
            (1u64 << e) + (sub << (e - b))
        }
    }

    /// Width of bucket `index` in value space.
    fn bucket_width(&self, index: usize) -> u64 {
        let b = self.precision_bits;
        if index < (1usize << b) {
            1
        } else {
            let group = (index >> b) - 1;
            1u64 << (group as u32)
        }
    }

    /// Representative value of bucket `index` (the bucket midpoint).
    fn bucket_mid(&self, index: usize) -> u64 {
        let lo = self.bucket_lower(index);
        lo + (self.bucket_width(index) - 1) / 2
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value`.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        let idx = self.index_of(value);
        self.counts[idx] += n;
        self.total += n;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) as a representative value, or
    /// `None` when empty.
    ///
    /// The result is the midpoint of the bucket containing the quantile
    /// rank, hence within the histogram's relative-error bound of the
    /// exact sample quantile.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.total == 0 {
            return None;
        }
        // rank of the q-quantile among `total` observations, 1-based
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bucket_mid(idx));
            }
        }
        // cbs-lint: allow(no-panic-in-lib) -- rank <= total == sum(counts), so the scan above always returns
        unreachable!("total is the sum of counts");
    }

    /// The fraction of observations ≤ `value` (bucket-granular: counts
    /// every observation in buckets wholly or partly below `value`,
    /// using the bucket representative for the comparison).
    pub fn fraction_at_or_below(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let idx = self.index_of(value);
        let below: u64 = self.counts[..=idx].iter().sum();
        below as f64 / self.total as f64
    }

    /// Merges another histogram of the same precision into this one.
    ///
    /// # Panics
    ///
    /// Panics if the precisions differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.precision_bits, other.precision_bits,
            "cannot merge histograms of different precisions"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Iterates over non-empty buckets as
    /// `(lower_bound, width, count)` triples, ascending.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_lower(i), self.bucket_width(i), c))
    }

    /// Produces `(value, cumulative_fraction)` points suitable for
    /// plotting the distribution's CDF, one point per non-empty bucket.
    pub fn cdf_points(&self) -> Vec<(u64, f64)> {
        let mut points = Vec::new();
        let mut seen = 0u64;
        if self.total == 0 {
            return points;
        }
        for (idx, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                seen += c;
                points.push((self.bucket_mid(idx), seen as f64 / self.total as f64));
            }
        }
        points
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::with_default_precision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        let mut h = LogHistogram::new(6);
        for v in 0..64u64 {
            h.record(v);
        }
        // every value below 2^6 lands in its own bucket
        for v in 0..64u64 {
            let idx = h.index_of(v);
            assert_eq!(h.bucket_lower(idx), v);
            assert_eq!(h.bucket_width(idx), 1);
            assert_eq!(h.bucket_mid(idx), v);
        }
    }

    #[test]
    fn bucket_lower_roundtrips_index() {
        let h = LogHistogram::new(4);
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            100,
            1000,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ] {
            let idx = h.index_of(v);
            let lo = h.bucket_lower(idx);
            let width = h.bucket_width(idx);
            assert!(lo <= v, "v={v} lo={lo}");
            assert!(v - lo < width, "v={v} lo={lo} width={width}");
            // bucket_lower is itself in the same bucket
            assert_eq!(h.index_of(lo), idx, "v={v}");
        }
    }

    #[test]
    fn quantile_error_bound_uniform() {
        let mut h = LogHistogram::new(6);
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, exact) in [
            (0.25, 25_000.0),
            (0.5, 50_000.0),
            (0.9, 90_000.0),
            (0.99, 99_000.0),
        ] {
            let est = h.quantile(q).unwrap() as f64;
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= h.relative_error_bound() + 1e-9,
                "q={q} est={est} rel={rel}"
            );
        }
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::with_default_precision();
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.fraction_at_or_below(100), 0.0);
        assert!(h.cdf_points().is_empty());
    }

    #[test]
    fn record_n_bulk() {
        let mut h = LogHistogram::new(6);
        h.record_n(10, 5);
        h.record_n(1000, 5);
        assert_eq!(h.total(), 10);
        assert_eq!(h.quantile(0.0), Some(10));
        assert!(h.quantile(1.0).unwrap() >= 992); // within bucket of 1000
    }

    #[test]
    fn quantile_extremes() {
        let mut h = LogHistogram::new(8);
        h.record(5);
        h.record(500);
        h.record(50_000);
        assert_eq!(h.quantile(0.0), Some(5));
        let p100 = h.quantile(1.0).unwrap() as f64;
        assert!((p100 - 50_000.0).abs() / 50_000.0 <= h.relative_error_bound());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LogHistogram::new(6);
        let mut b = LogHistogram::new(6);
        a.record_n(10, 3);
        b.record_n(10, 2);
        b.record(99);
        a.merge(&b);
        assert_eq!(a.total(), 6);
        assert_eq!(a.fraction_at_or_below(10), 5.0 / 6.0);
    }

    #[test]
    #[should_panic(expected = "different precisions")]
    fn merge_rejects_mismatched_precision() {
        let mut a = LogHistogram::new(6);
        let b = LogHistogram::new(7);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "precision_bits")]
    fn rejects_zero_precision() {
        let _ = LogHistogram::new(0);
    }

    #[test]
    fn fraction_at_or_below_monotone() {
        let mut h = LogHistogram::new(6);
        for v in [1u64, 10, 100, 1000, 10_000] {
            h.record(v);
        }
        let mut prev = 0.0;
        for v in [0u64, 1, 5, 50, 500, 5_000, 50_000] {
            let f = h.fraction_at_or_below(v);
            assert!(f >= prev, "v={v}");
            prev = f;
        }
        assert_eq!(h.fraction_at_or_below(u64::MAX), 1.0);
    }

    #[test]
    fn cdf_points_are_monotone_and_end_at_one() {
        let mut h = LogHistogram::new(6);
        for v in [3u64, 3, 700, 40_000, 40_000, 40_000] {
            h.record(v);
        }
        let pts = h.cdf_points();
        assert!(!pts.is_empty());
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iter_buckets_accounts_for_total() {
        let mut h = LogHistogram::new(5);
        for v in 0..1000u64 {
            h.record(v * 17);
        }
        let sum: u64 = h.iter_buckets().map(|(_, _, c)| c).sum();
        assert_eq!(sum, h.total());
    }

    #[test]
    fn max_value_does_not_overflow() {
        let mut h = LogHistogram::new(6);
        h.record(u64::MAX);
        assert_eq!(h.total(), 1);
        assert!(h.quantile(1.0).is_some());
    }
}
