//! Deterministic uniform reservoir sampling: [`Reservoir`].

/// A fixed-capacity uniform sample of a stream (Vitter's Algorithm R),
/// with a small embedded xorshift64* generator so the crate carries no
/// RNG dependency and samples are reproducible from the seed.
///
/// Used where an analysis wants *exact* quantiles over a bounded subset
/// of an unbounded stream (e.g. per-volume request-size samples feeding
/// a figure), trading the [`crate::LogHistogram`]'s deterministic error
/// bound for sampling error.
///
/// # Example
///
/// ```
/// use cbs_stats::Reservoir;
///
/// let mut r = Reservoir::new(100, 42);
/// for x in 0..10_000 {
///     r.offer(f64::from(x));
/// }
/// assert_eq!(r.len(), 100);
/// assert_eq!(r.seen(), 10_000);
/// // the sample median is near the stream median
/// let q = r.to_quantiles();
/// assert!((q.median().unwrap() - 5_000.0).abs() < 1_500.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Reservoir {
    capacity: usize,
    seen: u64,
    samples: Vec<f64>,
    rng_state: u64,
}

impl Reservoir {
    /// Creates a reservoir holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        Reservoir {
            capacity,
            seen: 0,
            samples: Vec::with_capacity(capacity.min(1024)),
            // xorshift64* must not start at 0
            rng_state: seed | 1,
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna); adequate statistical quality for sampling.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Offers one observation to the reservoir.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn offer(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot sample NaN");
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(x);
        } else {
            // replace with probability capacity / seen
            let j = self.next_u64() % self.seen;
            if (j as usize) < self.capacity {
                self.samples[j as usize] = x;
            }
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently held (`min(seen, capacity)`).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if nothing has been offered.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total number of observations offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample set (unordered).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Builds exact quantiles over the current sample.
    pub fn to_quantiles(&self) -> crate::Quantiles {
        crate::Quantiles::from_unsorted(self.samples.clone())
    }

    /// Consumes the reservoir, returning the sample set.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_below_capacity() {
        let mut r = Reservoir::new(10, 1);
        for x in 0..5 {
            r.offer(f64::from(x));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.seen(), 5);
        let mut s = r.into_samples();
        s.sort_by(f64::total_cmp);
        assert_eq!(s, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn caps_at_capacity() {
        let mut r = Reservoir::new(16, 7);
        for x in 0..1000 {
            r.offer(f64::from(x));
        }
        assert_eq!(r.len(), 16);
        assert_eq!(r.seen(), 1000);
        assert_eq!(r.capacity(), 16);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(8, seed);
            for x in 0..500 {
                r.offer(f64::from(x));
            }
            r.into_samples()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // mean of a uniform sample of 0..100_000 should be near 50_000
        let mut r = Reservoir::new(1000, 99);
        for x in 0..100_000 {
            r.offer(f64::from(x));
        }
        let mean: f64 = r.samples().iter().sum::<f64>() / r.len() as f64;
        assert!((mean - 50_000.0).abs() < 5_000.0, "mean={mean}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = Reservoir::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        Reservoir::new(1, 1).offer(f64::NAN);
    }

    #[test]
    fn empty_reservoir() {
        let r = Reservoir::new(4, 2);
        assert!(r.is_empty());
        assert!(r.to_quantiles().is_empty());
    }
}
