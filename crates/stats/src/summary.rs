//! Streaming moment summaries: [`Summary`].

/// Streaming summary of a sequence of `f64` observations: count, sum,
/// min, max, mean, and variance.
///
/// MERGEABLE: summaries form a commutative monoid under
/// [`merge`](Summary::merge) (Chan et al.'s parallel moment
/// combination; an empty summary is the identity), exact up to
/// floating-point rounding, so per-partition summaries combine into
/// the corpus-wide moments in any grouping order.
///
/// The mean and variance use Welford's online algorithm, so the summary
/// is numerically stable over hundreds of millions of observations and
/// two summaries can be merged associatively (parallel per-volume
/// analysis reduces per-thread summaries with `merge`).
///
/// # Example
///
/// ```
/// use cbs_stats::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), Some(5.0));
/// assert_eq!(s.population_variance(), Some(4.0));
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(9.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (a NaN would silently poison every derived
    /// statistic).
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN");
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations (0.0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Minimum observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population variance (dividing by *n*), or `None` when empty.
    pub fn population_variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample variance (dividing by *n − 1*), or `None` with fewer than
    /// two observations.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population standard deviation, or `None` when empty.
    pub fn population_std_dev(&self) -> Option<f64> {
        self.population_variance().map(f64::sqrt)
    }

    /// Merges `other` into `self` (Chan et al. parallel combination).
    ///
    /// `a.merge(&b)` equals recording all of `a`'s and `b`'s
    /// observations into one summary, up to floating-point error.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_returns_none() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.population_variance(), None);
        assert_eq!(s.sample_variance(), None);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s: Summary = [3.5].into_iter().collect();
        assert_eq!(s.mean(), Some(3.5));
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
        assert_eq!(s.population_variance(), Some(0.0));
        assert_eq!(s.sample_variance(), None);
    }

    #[test]
    fn known_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.population_variance(), Some(4.0));
        assert_eq!(s.population_std_dev(), Some(2.0));
        let sample = s.sample_variance().unwrap();
        assert!((sample - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Summary = all.iter().copied().collect();
        let mut left: Summary = all[..37].iter().copied().collect();
        let right: Summary = all[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!(
            (left.population_variance().unwrap() - whole.population_variance().unwrap()).abs()
                < 1e-9
        );
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(2.0));
    }

    #[test]
    fn handles_negative_values() {
        let s: Summary = [-5.0, 5.0].into_iter().collect();
        assert_eq!(s.mean(), Some(0.0));
        assert_eq!(s.min(), Some(-5.0));
        assert_eq!(s.max(), Some(5.0));
    }
}
