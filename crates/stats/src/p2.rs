//! The P² streaming quantile estimator: [`P2Quantile`].
//!
//! Jain & Chlamtac's P² algorithm estimates a single quantile of a
//! stream in O(1) memory (five markers) without storing observations.
//! It complements the crate's other quantile back-ends: use
//! [`crate::Quantiles`] when the sample fits in memory,
//! [`crate::LogHistogram`] for non-negative integers with a known error
//! bound, and `P2Quantile` for real-valued streams where even a
//! histogram is too much state (e.g. one estimator per tracked entity).

/// Streaming estimator of one quantile (Jain & Chlamtac, CACM 1985).
///
/// # Example
///
/// ```
/// use cbs_stats::P2Quantile;
///
/// let mut median = P2Quantile::new(0.5).unwrap();
/// for x in 1..=1001 {
///     median.observe(f64::from(x));
/// }
/// let est = median.estimate().unwrap();
/// assert!((est - 501.0).abs() < 25.0, "estimate {est}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the quantile curve).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q ∈ (0, 1)`.
    ///
    /// Returns `None` for out-of-range or non-finite `q`.
    pub fn new(q: f64) -> Option<Self> {
        if !(q.is_finite() && q > 0.0 && q < 1.0) {
            return None;
        }
        Some(P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        })
    }

    /// The quantile being estimated.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn observe(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot observe NaN");
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // locate the cell containing x and clamp extreme markers
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for position in self.positions.iter_mut().skip(k + 1) {
            *position += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // adjust interior markers toward their desired positions
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height prediction.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    /// Linear fallback when the parabola escapes its bracket.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate, or `None` before any observation.
    ///
    /// With fewer than five observations the exact sample quantile is
    /// returned.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n @ 1..=4 => {
                let mut sorted = self.heights[..n].to_vec();
                sorted.sort_by(f64::total_cmp);
                let rank = (self.q * (n - 1) as f64).round() as usize;
                Some(sorted[rank])
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(q: f64, values: impl IntoIterator<Item = f64>) -> f64 {
        let mut est = P2Quantile::new(q).unwrap();
        for v in values {
            est.observe(v);
        }
        est.estimate().unwrap()
    }

    #[test]
    fn rejects_bad_quantiles() {
        assert!(P2Quantile::new(0.0).is_none());
        assert!(P2Quantile::new(1.0).is_none());
        assert!(P2Quantile::new(-0.5).is_none());
        assert!(P2Quantile::new(f64::NAN).is_none());
        assert!(P2Quantile::new(0.5).is_some());
    }

    #[test]
    fn empty_estimator() {
        let est = P2Quantile::new(0.5).unwrap();
        assert_eq!(est.estimate(), None);
        assert_eq!(est.count(), 0);
        assert_eq!(est.q(), 0.5);
    }

    #[test]
    fn small_samples_are_exact_ranks() {
        assert_eq!(feed(0.5, [3.0]), 3.0);
        // n=2: rank = round(0.5 · 1) = 1 → the larger sample
        assert_eq!(feed(0.5, [3.0, 1.0]), 3.0);
        // n=3: rank = round(0.5 · 2) = 1 → the middle sample
        assert_eq!(feed(0.5, [9.0, 1.0, 5.0]), 5.0);
        assert_eq!(feed(0.25, [9.0, 1.0, 5.0, 7.0]), 5.0);
    }

    #[test]
    fn median_of_uniform_stream() {
        let est = feed(0.5, (1..=10_001).map(f64::from));
        assert!((est - 5001.0).abs() / 5001.0 < 0.02, "estimate {est}");
    }

    #[test]
    fn p95_of_uniform_stream() {
        let est = feed(0.95, (1..=10_001).map(f64::from));
        assert!((est - 9501.0).abs() / 9501.0 < 0.03, "estimate {est}");
    }

    #[test]
    fn skewed_stream() {
        // exponential-ish: x^2 over uniform ranks
        let values = (1..=20_000).map(|i| {
            let u = i as f64 / 20_000.0;
            u * u * 1000.0
        });
        let est = feed(0.5, values);
        // true median of u² on [0,1000] is 0.25 * 1000 = 250
        assert!((est - 250.0).abs() / 250.0 < 0.05, "estimate {est}");
    }

    #[test]
    fn adversarial_order_is_tolerated() {
        // descending input
        let est = feed(0.5, (1..=5001).rev().map(f64::from));
        assert!((est - 2501.0).abs() / 2501.0 < 0.05, "estimate {est}");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_observation() {
        P2Quantile::new(0.5).unwrap().observe(f64::NAN);
    }
}
