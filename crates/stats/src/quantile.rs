//! Exact quantiles over owned samples: [`Quantiles`].

/// Exact empirical quantiles over an owned, sorted sample set.
///
/// MERGEABLE: quantile sets form a commutative monoid under [`merge`]
/// (a linear-time two-way merge of the sorted sample multisets; an
/// empty set is the identity), so per-partition sample sets combine
/// into the exact corpus-wide distribution in any grouping order.
///
/// [`merge`]: Quantiles::merge
///
/// Uses the common linear-interpolation definition (type 7 in the
/// Hyndman–Fan taxonomy, the default of R and NumPy): for quantile
/// `q ∈ [0, 1]` over `n` sorted samples, the rank is
/// `h = q · (n − 1)` and the result interpolates between
/// `x[⌊h⌋]` and `x[⌈h⌉]`.
///
/// For distributions too large to hold in memory, use
/// [`crate::LogHistogram`] (bounded relative error) or sample with
/// [`crate::Reservoir`] first.
///
/// # Example
///
/// ```
/// use cbs_stats::Quantiles;
///
/// let q = Quantiles::from_unsorted(vec![4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(q.quantile(0.0), Some(1.0));
/// assert_eq!(q.quantile(0.5), Some(2.5));
/// assert_eq!(q.quantile(1.0), Some(4.0));
/// assert_eq!(q.percentile(25.0), Some(1.75));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Quantiles {
    sorted: Vec<f64>,
}

impl Quantiles {
    /// Builds from unsorted samples.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_unsorted(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "samples must not contain NaN"
        );
        samples.sort_by(f64::total_cmp);
        Quantiles { sorted: samples }
    }

    /// Builds from samples already sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if the samples are not sorted or contain NaN.
    pub fn from_sorted(samples: Vec<f64>) -> Self {
        assert!(
            samples.windows(2).all(|w| w[0] <= w[1]),
            "samples must be sorted ascending"
        );
        Quantiles { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn as_sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// The `q`-quantile for `q ∈ [0, 1]`, or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let h = q * (n - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        let frac = h - lo as f64;
        Some(self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac)
    }

    /// The `p`-th percentile for `p ∈ [0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or NaN.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile {p} outside [0, 100]"
        );
        self.quantile(p / 100.0)
    }

    /// The median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// The maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The fraction of samples ≤ `x` (the empirical CDF evaluated at `x`).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Merges another sample set into this one, preserving sortedness.
    ///
    /// Runs one linear two-way merge of the sorted vectors, so merging
    /// `k` partitions costs `O(n · k)` total comparisons, never a
    /// re-sort. The result is exactly `from_unsorted` of the
    /// concatenated samples.
    pub fn merge(&mut self, other: &Quantiles) {
        if other.sorted.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.sorted.len() + other.sorted.len());
        let (mut i, mut j) = (0, 0);
        while i < self.sorted.len() && j < other.sorted.len() {
            if self.sorted[i] <= other.sorted[j] {
                merged.push(self.sorted[i]);
                i += 1;
            } else {
                merged.push(other.sorted[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.sorted[i..]);
        merged.extend_from_slice(&other.sorted[j..]);
        self.sorted = merged;
    }

    /// Evaluates the classic five groups of percentiles used throughout
    /// the paper's boxplot figures: 25th, 50th, 75th, 90th, 95th.
    pub fn paper_percentiles(&self) -> Option<[f64; 5]> {
        Some([
            self.percentile(25.0)?,
            self.percentile(50.0)?,
            self.percentile(75.0)?,
            self.percentile(90.0)?,
            self.percentile(95.0)?,
        ])
    }
}

impl FromIterator<f64> for Quantiles {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Quantiles::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        let q = Quantiles::from_unsorted(Vec::new());
        assert!(q.is_empty());
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.median(), None);
        assert_eq!(q.min(), None);
        assert_eq!(q.max(), None);
        assert_eq!(q.fraction_at_or_below(3.0), 0.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let q = Quantiles::from_unsorted(vec![7.0]);
        for p in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(q.quantile(p), Some(7.0));
        }
    }

    #[test]
    fn interpolation_matches_numpy_type7() {
        // numpy.percentile([1,2,3,4], [25, 50, 75]) -> [1.75, 2.5, 3.25]
        let q = Quantiles::from_unsorted(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(q.percentile(25.0), Some(1.75));
        assert_eq!(q.percentile(50.0), Some(2.5));
        assert_eq!(q.percentile(75.0), Some(3.25));
    }

    #[test]
    fn sorted_constructor_validates() {
        let q = Quantiles::from_sorted(vec![1.0, 2.0, 2.0, 5.0]);
        assert_eq!(q.len(), 4);
    }

    #[test]
    #[should_panic(expected = "sorted ascending")]
    fn sorted_constructor_rejects_unsorted() {
        let _ = Quantiles::from_sorted(vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_samples() {
        let _ = Quantiles::from_unsorted(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_out_of_range_quantile() {
        let q = Quantiles::from_unsorted(vec![1.0]);
        let _ = q.quantile(1.5);
    }

    #[test]
    fn fraction_at_or_below_counts_ties() {
        let q = Quantiles::from_unsorted(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(q.fraction_at_or_below(0.5), 0.0);
        assert_eq!(q.fraction_at_or_below(2.0), 0.75);
        assert_eq!(q.fraction_at_or_below(3.0), 1.0);
        assert_eq!(q.fraction_at_or_below(99.0), 1.0);
    }

    #[test]
    fn paper_percentiles_present() {
        let q: Quantiles = (1..=100).map(f64::from).collect();
        let [p25, p50, p75, p90, p95] = q.paper_percentiles().unwrap();
        assert!((p25 - 25.75).abs() < 1e-9);
        assert!((p50 - 50.5).abs() < 1e-9);
        assert!((p75 - 75.25).abs() < 1e-9);
        assert!((p90 - 90.1).abs() < 1e-9);
        assert!((p95 - 95.05).abs() < 1e-9);
    }

    #[test]
    fn collects_from_iterator() {
        let q: Quantiles = [3.0, 1.0, 2.0].into_iter().collect();
        assert_eq!(q.as_sorted(), &[1.0, 2.0, 3.0]);
    }
}
