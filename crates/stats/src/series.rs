//! Fixed-width time-binned counters: [`TimeBins`].

/// A sequence of fixed-width time bins accumulating `u64` counts.
///
/// MERGEABLE: bin sets of the same width form a commutative monoid
/// under [`merge`] (bins add element-wise, the shorter side is
/// zero-extended; a fresh bin set is the identity), so per-partition
/// series combine into the exact corpus-wide series in any grouping
/// order.
///
/// [`merge`]: TimeBins::merge
///
/// This is the primitive behind the paper's intensity and activeness
/// metrics: *peak intensity* is the maximum count over one-minute bins
/// (Finding 1); *activeness* asks which ten-minute bins are non-zero
/// (Findings 5-7). Bins are indexed from the epoch; the structure grows
/// lazily to the highest bin touched.
///
/// # Example
///
/// ```
/// use cbs_stats::TimeBins;
///
/// let mut bins = TimeBins::new(60_000_000); // 1-minute bins in µs
/// bins.add(30_000_000, 1);   // minute 0
/// bins.add(90_000_000, 2);   // minute 1
/// bins.add(95_000_000, 1);   // minute 1
/// assert_eq!(bins.max_count(), 3);
/// assert_eq!(bins.non_empty_bins(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeBins {
    width: u64,
    counts: Vec<u64>,
}

impl TimeBins {
    /// Creates bins of `width` time units (the workbench uses
    /// microseconds throughout).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: u64) -> Self {
        assert!(width > 0, "bin width must be non-zero");
        TimeBins {
            width,
            counts: Vec::new(),
        }
    }

    /// The bin width.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Adds `n` to the bin containing time `t`.
    pub fn add(&mut self, t: u64, n: u64) {
        let idx = (t / self.width) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// The count in bin `idx` (0 for bins never touched).
    pub fn count(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Number of bins allocated (index of the highest touched bin + 1).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if no bin was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The maximum bin count (0 when empty).
    pub fn max_count(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// The total across all bins.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of bins with a non-zero count.
    pub fn non_empty_bins(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Iterates over `(bin_index, count)` for all allocated bins,
    /// including zero bins (figures plot gaps explicitly).
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().copied().enumerate()
    }

    /// Iterates over indices of non-empty bins, ascending.
    pub fn non_empty_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
    }

    /// Merges another bin set of the same width, summing counts.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn merge(&mut self, other: &TimeBins) {
        assert_eq!(
            self.width, other.width,
            "cannot merge bins of different widths"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_assign_by_width() {
        let mut b = TimeBins::new(10);
        b.add(0, 1);
        b.add(9, 1);
        b.add(10, 1);
        b.add(25, 1);
        assert_eq!(b.count(0), 2);
        assert_eq!(b.count(1), 1);
        assert_eq!(b.count(2), 1);
        assert_eq!(b.count(3), 0);
        assert_eq!(b.len(), 3);
        assert_eq!(b.total(), 4);
    }

    #[test]
    fn empty_bins() {
        let b = TimeBins::new(5);
        assert!(b.is_empty());
        assert_eq!(b.max_count(), 0);
        assert_eq!(b.total(), 0);
        assert_eq!(b.non_empty_bins(), 0);
        assert_eq!(b.count(99), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_width() {
        let _ = TimeBins::new(0);
    }

    #[test]
    fn max_and_non_empty() {
        let mut b = TimeBins::new(100);
        b.add(50, 7);
        b.add(250, 3);
        b.add(260, 5);
        assert_eq!(b.max_count(), 8);
        assert_eq!(b.non_empty_bins(), 2);
        let idx: Vec<_> = b.non_empty_indices().collect();
        assert_eq!(idx, vec![0, 2]);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = TimeBins::new(10);
        a.add(5, 1);
        let mut b = TimeBins::new(10);
        b.add(5, 2);
        b.add(35, 4);
        a.merge(&b);
        assert_eq!(a.count(0), 3);
        assert_eq!(a.count(3), 4);
        assert_eq!(a.len(), 4);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_rejects_width_mismatch() {
        let mut a = TimeBins::new(10);
        a.merge(&TimeBins::new(20));
    }

    #[test]
    fn iter_includes_zero_bins() {
        let mut b = TimeBins::new(10);
        b.add(25, 1);
        let all: Vec<_> = b.iter().collect();
        assert_eq!(all, vec![(0, 0), (1, 0), (2, 1)]);
    }
}
