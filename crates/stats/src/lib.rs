//! Statistics substrate for workload characterization.
//!
//! `cbs-stats` provides the small set of statistical containers every
//! figure and table of the IISWC'20 cloud block storage study is built
//! from:
//!
//! * [`Summary`] — streaming count/mean/min/max/variance (Welford);
//! * [`Quantiles`] — exact quantiles over an owned sample set;
//! * [`LogHistogram`] — HDR-style log-linear histogram over `u64` values
//!   with bounded relative error, for quantiles over hundreds of millions
//!   of elapsed-time observations in fixed memory;
//! * [`Cdf`] — empirical cumulative distribution with figure-friendly
//!   downsampling;
//! * [`P2Quantile`] — O(1)-memory single-quantile streaming estimation
//!   (Jain & Chlamtac's P² algorithm);
//! * [`BoxplotSummary`] — Tukey five-number summaries with outlier counts
//!   (the paper's boxplot figures);
//! * [`TimeBins`] — fixed-width time-binned counters (per-minute peak
//!   intensities, 10-minute activeness intervals);
//! * [`Reservoir`] — deterministic uniform reservoir sampling for
//!   bounded-memory exact-quantile fallbacks.
//!
//! # Example
//!
//! ```
//! use cbs_stats::{Cdf, Quantiles, Summary};
//!
//! let mut s = Summary::new();
//! for x in [1.0, 2.0, 3.0, 4.0] {
//!     s.record(x);
//! }
//! assert_eq!(s.mean(), Some(2.5));
//!
//! let q = Quantiles::from_unsorted(vec![1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(q.median(), Some(2.5));
//!
//! let cdf = Cdf::from_unsorted(vec![1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod boxplot;
pub mod cdf;
pub mod histogram;
pub mod p2;
pub mod quantile;
pub mod reservoir;
pub mod series;
pub mod summary;

pub use boxplot::BoxplotSummary;
pub use cdf::Cdf;
pub use histogram::LogHistogram;
pub use p2::P2Quantile;
pub use quantile::Quantiles;
pub use reservoir::Reservoir;
pub use series::TimeBins;
pub use summary::Summary;
