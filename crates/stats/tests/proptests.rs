//! Property-based tests for the statistics substrate.

use proptest::prelude::*;

use cbs_stats::{
    BoxplotSummary, Cdf, LogHistogram, P2Quantile, Quantiles, Reservoir, Summary, TimeBins,
};

fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e9f64..1e9, 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram quantiles stay within the advertised relative error of
    /// the exact quantiles, for any positive-value sample set.
    #[test]
    fn histogram_quantile_error_bound(
        values in proptest::collection::vec(1u64..(1 << 48), 1..500),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
        bits in 4u32..10,
    ) {
        let mut h = LogHistogram::new(bits);
        for &v in &values {
            h.record(v);
        }
        let exact = Quantiles::from_unsorted(values.iter().map(|&v| v as f64).collect());
        for &q in &qs {
            let est = h.quantile(q).unwrap() as f64;
            // The histogram quantile equals the bucket midpoint of some
            // sample at a rank adjacent to the exact rank. It must be
            // within the relative error bound of *a sample value*, and
            // the nearest-rank exact quantile brackets it.
            // We check against the nearest-rank sample directly:
            let n = exact.len();
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let sample = exact.as_sorted()[rank - 1];
            let tol = h.relative_error_bound() * sample + 1.0;
            prop_assert!(
                (est - sample).abs() <= tol,
                "q={q} est={est} sample={sample} tol={tol}"
            );
        }
    }

    /// Histogram total and CDF endpoint invariants.
    #[test]
    fn histogram_totals(values in proptest::collection::vec(0u64..u64::MAX, 0..300)) {
        let mut h = LogHistogram::with_default_precision();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        let bucket_sum: u64 = h.iter_buckets().map(|(_, _, c)| c).sum();
        prop_assert_eq!(bucket_sum, h.total());
        if !values.is_empty() {
            let pts = h.cdf_points();
            prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
            prop_assert!(pts.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        }
    }

    /// Merging histograms equals recording the concatenated stream.
    #[test]
    fn histogram_merge_is_concat(
        a in proptest::collection::vec(0u64..(1 << 50), 0..200),
        b in proptest::collection::vec(0u64..(1 << 50), 0..200),
    ) {
        let mut ha = LogHistogram::new(6);
        let mut hb = LogHistogram::new(6);
        let mut hall = LogHistogram::new(6);
        for &v in &a { ha.record(v); hall.record(v); }
        for &v in &b { hb.record(v); hall.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha, hall);
    }

    /// Summary::merge equals sequential recording.
    #[test]
    fn summary_merge_is_concat(a in arb_samples(), b in arb_samples()) {
        let mut sa: Summary = a.iter().copied().collect();
        let sb: Summary = b.iter().copied().collect();
        let whole: Summary = a.iter().chain(b.iter()).copied().collect();
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), whole.count());
        let scale = whole.mean().unwrap().abs().max(1.0);
        prop_assert!((sa.mean().unwrap() - whole.mean().unwrap()).abs() / scale < 1e-9);
        prop_assert_eq!(sa.min(), whole.min());
        prop_assert_eq!(sa.max(), whole.max());
    }

    /// Exact quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone(samples in arb_samples()) {
        let q = Quantiles::from_unsorted(samples);
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=20 {
            let v = q.quantile(k as f64 / 20.0).unwrap();
            prop_assert!(v >= prev);
            prev = v;
        }
        prop_assert_eq!(q.quantile(0.0), q.min());
        prop_assert_eq!(q.quantile(1.0), q.max());
    }

    /// CDF round-trip: `value_at(f)` interpolates between the samples at
    /// ranks ⌊f(n−1)⌋ and ⌈f(n−1)⌉ (type-7), so at least ⌊f(n−1)⌋+1
    /// samples fall at or below it.
    #[test]
    fn cdf_inverse_consistency(samples in arb_samples(), f in 0.0f64..=1.0) {
        let cdf = Cdf::from_unsorted(samples);
        let n = cdf.len();
        let v = cdf.value_at(f).unwrap();
        let lower_rank = (f * (n - 1) as f64).floor() as usize + 1;
        prop_assert!(
            cdf.fraction_at_or_below(v) >= lower_rank as f64 / n as f64 - 1e-12,
            "f={f} v={v}"
        );
    }

    /// Boxplot invariants: ordering of the five numbers, whiskers inside
    /// fences, outliers counted consistently.
    #[test]
    fn boxplot_ordering(samples in arb_samples()) {
        let b = BoxplotSummary::from_unsorted(samples.clone()).unwrap();
        prop_assert!(b.min() <= b.q1());
        prop_assert!(b.q1() <= b.median());
        prop_assert!(b.median() <= b.q3());
        prop_assert!(b.q3() <= b.max());
        // Whiskers are actual samples inside the Tukey fences. They always
        // exist (the median sample is inside both fences) and bracket it.
        prop_assert!(b.whisker_low() >= b.min());
        prop_assert!(b.whisker_high() <= b.max());
        prop_assert!(b.whisker_low() <= b.whisker_high());
        prop_assert!(b.whisker_low() >= b.q1() - 1.5 * b.iqr() - 1e-6);
        prop_assert!(b.whisker_high() <= b.q3() + 1.5 * b.iqr() + 1e-6);
        prop_assert!(b.outlier_count() <= b.count());
        prop_assert_eq!(b.count(), samples.len());
    }

    /// TimeBins totals equal the number of added events; max ≤ total.
    #[test]
    fn timebins_totals(
        width in 1u64..1_000_000,
        events in proptest::collection::vec(0u64..(1 << 40), 0..300),
    ) {
        let mut bins = TimeBins::new(width);
        for &t in &events {
            bins.add(t, 1);
        }
        prop_assert_eq!(bins.total(), events.len() as u64);
        prop_assert!(bins.max_count() <= bins.total());
        prop_assert!(bins.non_empty_bins() <= events.len());
        let iter_total: u64 = bins.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(iter_total, bins.total());
    }

    /// Reservoir: size and seen-count bookkeeping; samples are a subset
    /// of the stream.
    #[test]
    fn reservoir_bookkeeping(
        capacity in 1usize..64,
        stream in proptest::collection::vec(-1e6f64..1e6, 0..500),
        seed in 0u64..1000,
    ) {
        let mut r = Reservoir::new(capacity, seed);
        for &x in &stream {
            r.offer(x);
        }
        prop_assert_eq!(r.seen(), stream.len() as u64);
        prop_assert_eq!(r.len(), stream.len().min(capacity));
        for s in r.samples() {
            prop_assert!(stream.contains(s));
        }
    }

    /// P² estimates stay near the exact sample quantile on large
    /// streams (loose bound — P² is an approximation, not an error-
    /// bounded sketch).
    #[test]
    fn p2_tracks_exact_quantile(
        samples in proptest::collection::vec(0.0f64..1e6, 200..2000),
        q in 0.1f64..0.9,
    ) {
        let mut est = P2Quantile::new(q).unwrap();
        for &x in &samples {
            est.observe(x);
        }
        let exact = Quantiles::from_unsorted(samples.clone()).quantile(q).unwrap();
        let got = est.estimate().unwrap();
        let spread = Quantiles::from_unsorted(samples).max().unwrap().max(1.0);
        prop_assert!(
            (got - exact).abs() <= 0.15 * spread,
            "q={q} exact={exact} got={got}"
        );
        prop_assert_eq!(est.count(), 2000.min(est.count()));
    }
}
