//! Property tests for the MERGEABLE statistics algebra.
//!
//! The corpus-parallel driver (ROADMAP item 1) folds per-partition
//! statistics with `merge`, so every mergeable stats type must satisfy
//! the monoid laws — associativity, commutativity, identity — and the
//! homomorphism `analyze(a ++ b) == merge(analyze(a), analyze(b))`.
//! These tests pin those laws for [`LogHistogram`], [`TimeBins`],
//! [`Summary`], [`Quantiles`], and [`Cdf`], and are the associativity
//! evidence `cbs-lint`'s `mergeable-audit` rule (CBS-L13) requires.

use proptest::prelude::*;

use cbs_stats::{Cdf, LogHistogram, Quantiles, Summary, TimeBins};

fn arb_u64_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..=u64::MAX, 0..40)
}

fn arb_f64_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e12f64..1.0e12, 0..40)
}

prop_compose! {
    /// One binned event: a timestamp and a count.
    fn arb_bin_event()(t in 0u64..10_000, n in 0u64..1_000) -> (u64, u64) {
        (t, n)
    }
}

fn arb_bin_events() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec(arb_bin_event(), 0..40)
}

fn histogram(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new(6);
    for &s in samples {
        h.record(s);
    }
    h
}

fn bins(events: &[(u64, u64)]) -> TimeBins {
    let mut b = TimeBins::new(60);
    for &(t, n) in events {
        b.add(t, n);
    }
    b
}

fn summary(samples: &[f64]) -> Summary {
    samples.iter().copied().collect()
}

/// Observable state of a summary for approximate equality: the moment
/// combination is exact only up to floating-point rounding.
fn summaries_close(a: &Summary, b: &Summary) -> bool {
    let scale = 1.0 + a.sum().abs() + b.sum().abs();
    a.count() == b.count()
        && a.min() == b.min()
        && a.max() == b.max()
        && (a.sum() - b.sum()).abs() / scale < 1e-9
        && match (a.mean(), b.mean()) {
            (None, None) => true,
            (Some(x), Some(y)) => (x - y).abs() / scale < 1e-9,
            _ => false,
        }
}

proptest! {
    /// `LogHistogram::merge` is associative, commutes, has the empty
    /// histogram as identity, and equals recording the concatenation.
    #[test]
    fn log_histogram_merge_is_associative(
        a in arb_u64_samples(),
        b in arb_u64_samples(),
        c in arb_u64_samples(),
    ) {
        let mut left = histogram(&a);
        left.merge(&histogram(&b));
        left.merge(&histogram(&c));

        let mut right_tail = histogram(&b);
        right_tail.merge(&histogram(&c));
        let mut right = histogram(&a);
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);

        let mut flipped = histogram(&b);
        flipped.merge(&histogram(&a));
        let mut ab = histogram(&a);
        ab.merge(&histogram(&b));
        prop_assert_eq!(&ab, &flipped);

        let mut with_identity = histogram(&a);
        with_identity.merge(&LogHistogram::new(6));
        prop_assert_eq!(&with_identity, &histogram(&a));

        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(&ab, &histogram(&concat));
    }

    /// `TimeBins::merge` is associative, commutes, has fresh bins as
    /// identity, and equals adding the concatenated events.
    #[test]
    fn time_bins_merge_is_associative(
        a in arb_bin_events(),
        b in arb_bin_events(),
        c in arb_bin_events(),
    ) {
        let mut left = bins(&a);
        left.merge(&bins(&b));
        left.merge(&bins(&c));

        let mut right_tail = bins(&b);
        right_tail.merge(&bins(&c));
        let mut right = bins(&a);
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);

        let mut ab = bins(&a);
        ab.merge(&bins(&b));
        let mut ba = bins(&b);
        ba.merge(&bins(&a));
        prop_assert_eq!(&ab, &ba);

        let mut with_identity = bins(&a);
        with_identity.merge(&TimeBins::new(60));
        prop_assert_eq!(&with_identity, &bins(&a));

        let concat: Vec<(u64, u64)> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(&ab, &bins(&concat));
    }

    /// `Summary::merge` is associative (up to floating-point rounding),
    /// commutes, and has the empty summary as exact identity.
    #[test]
    fn summary_merge_is_associative(
        a in arb_f64_samples(),
        b in arb_f64_samples(),
        c in arb_f64_samples(),
    ) {
        let mut left = summary(&a);
        left.merge(&summary(&b));
        left.merge(&summary(&c));

        let mut right_tail = summary(&b);
        right_tail.merge(&summary(&c));
        let mut right = summary(&a);
        right.merge(&right_tail);
        prop_assert!(summaries_close(&left, &right));

        let mut ab = summary(&a);
        ab.merge(&summary(&b));
        let mut ba = summary(&b);
        ba.merge(&summary(&a));
        prop_assert!(summaries_close(&ab, &ba));

        let concat: Vec<f64> = a.iter().chain(&b).copied().collect();
        prop_assert!(summaries_close(&ab, &summary(&concat)));

        let mut with_identity = summary(&a);
        with_identity.merge(&Summary::new());
        prop_assert_eq!(with_identity, summary(&a));
    }

    /// `Quantiles::merge` is associative, commutes, has the empty set
    /// as identity, and equals sorting the concatenated samples — the
    /// strongest form: the full sorted sample vector matches.
    #[test]
    fn quantiles_merge_is_associative(
        a in arb_f64_samples(),
        b in arb_f64_samples(),
        c in arb_f64_samples(),
    ) {
        let q = Quantiles::from_unsorted;

        let mut left = q(a.clone());
        left.merge(&q(b.clone()));
        left.merge(&q(c.clone()));

        let mut right_tail = q(b.clone());
        right_tail.merge(&q(c.clone()));
        let mut right = q(a.clone());
        right.merge(&right_tail);
        prop_assert_eq!(left.as_sorted(), right.as_sorted());

        let mut ab = q(a.clone());
        ab.merge(&q(b.clone()));
        let mut ba = q(b.clone());
        ba.merge(&q(a.clone()));
        prop_assert_eq!(ab.as_sorted(), ba.as_sorted());

        let mut with_identity = q(a.clone());
        with_identity.merge(&Quantiles::default());
        prop_assert_eq!(with_identity.as_sorted(), q(a.clone()).as_sorted());

        let concat: Vec<f64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(ab.as_sorted(), q(concat).as_sorted());
    }

    /// `Cdf::merge` is associative and equals building the CDF from
    /// the concatenated samples.
    #[test]
    fn cdf_merge_is_associative(
        a in arb_f64_samples(),
        b in arb_f64_samples(),
        c in arb_f64_samples(),
    ) {
        let mut left = Cdf::from_unsorted(a.clone());
        left.merge(&Cdf::from_unsorted(b.clone()));
        left.merge(&Cdf::from_unsorted(c.clone()));

        let mut right_tail = Cdf::from_unsorted(b.clone());
        right_tail.merge(&Cdf::from_unsorted(c.clone()));
        let mut right = Cdf::from_unsorted(a.clone());
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);

        let mut ab = Cdf::from_unsorted(a.clone());
        ab.merge(&Cdf::from_unsorted(b.clone()));
        let concat: Vec<f64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(&ab, &Cdf::from_unsorted(concat));

        let mut with_identity = Cdf::from_unsorted(a.clone());
        with_identity.merge(&Cdf::default());
        prop_assert_eq!(&with_identity, &Cdf::from_unsorted(a.clone()));
    }
}
