//! Property-based tests: the single-pass analyzer against brute-force
//! reference implementations on arbitrary small traces.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use cbs_analysis::{analyze_trace, simd, AnalysisConfig, VolumeAnalyzer};
use cbs_trace::{BlockSize, IoRequest, OpKind, RequestBatch, Timestamp, Trace, VolumeId};

fn arb_op() -> impl Strategy<Value = OpKind> {
    prop_oneof![Just(OpKind::Read), Just(OpKind::Write)]
}

prop_compose! {
    /// Requests confined to a small space so blocks collide often.
    fn arb_request()(
        volume in 0u32..4,
        op in arb_op(),
        block in 0u64..40,
        len_blocks in 1u32..4,
        ts in 0u64..(1 << 34),
    ) -> IoRequest {
        IoRequest::new(
            VolumeId::new(volume),
            op,
            block * 4096,
            len_blocks * 4096,
            Timestamp::from_micros(ts),
        )
    }
}

/// Brute-force per-volume reference computed straight from the
/// definition.
struct Reference {
    reads: u64,
    writes: u64,
    read_blocks: HashSet<u64>,
    write_blocks: HashSet<u64>,
    update_blocks: HashSet<u64>,
    all_blocks: HashSet<u64>,
    pair_counts: [u64; 4], // raw, waw, rar, war
    update_intervals: u64,
}

fn reference(requests: &[IoRequest]) -> Reference {
    let bs = BlockSize::DEFAULT;
    let mut r = Reference {
        reads: 0,
        writes: 0,
        read_blocks: HashSet::new(),
        write_blocks: HashSet::new(),
        update_blocks: HashSet::new(),
        all_blocks: HashSet::new(),
        pair_counts: [0; 4],
        update_intervals: 0,
    };
    let mut last_op: HashMap<u64, OpKind> = HashMap::new();
    let mut write_counts: HashMap<u64, u64> = HashMap::new();
    for req in requests {
        match req.op() {
            OpKind::Read => r.reads += 1,
            OpKind::Write => r.writes += 1,
        }
        for block in bs.span_of(req) {
            let b = block.get();
            r.all_blocks.insert(b);
            if let Some(prev) = last_op.get(&b) {
                let idx = match (prev, req.op()) {
                    (OpKind::Write, OpKind::Read) => 0,
                    (OpKind::Write, OpKind::Write) => 1,
                    (OpKind::Read, OpKind::Read) => 2,
                    (OpKind::Read, OpKind::Write) => 3,
                };
                r.pair_counts[idx] += 1;
            }
            last_op.insert(b, req.op());
            match req.op() {
                OpKind::Read => {
                    r.read_blocks.insert(b);
                }
                OpKind::Write => {
                    r.write_blocks.insert(b);
                    let count = write_counts.entry(b).or_insert(0);
                    *count += 1;
                    if *count >= 2 {
                        r.update_blocks.insert(b);
                        r.update_intervals += 1;
                    }
                }
            }
        }
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every per-volume metric with an exact reference matches it.
    #[test]
    fn analyzer_matches_brute_force(reqs in proptest::collection::vec(arb_request(), 1..300)) {
        let trace = Trace::from_requests(reqs);
        let config = AnalysisConfig::default();
        let metrics = analyze_trace(&trace, &config).expect("valid config");
        for m in &metrics {
            let volume_reqs = trace.volume(m.id).unwrap().requests();
            let r = reference(volume_reqs);
            prop_assert_eq!(m.reads, r.reads);
            prop_assert_eq!(m.writes, r.writes);
            prop_assert_eq!(m.wss_blocks, r.all_blocks.len() as u64);
            prop_assert_eq!(m.wss_read_blocks, r.read_blocks.len() as u64);
            prop_assert_eq!(m.wss_write_blocks, r.write_blocks.len() as u64);
            prop_assert_eq!(m.wss_update_blocks, r.update_blocks.len() as u64);
            prop_assert_eq!(m.raw_hist.total(), r.pair_counts[0]);
            prop_assert_eq!(m.waw_hist.total(), r.pair_counts[1]);
            prop_assert_eq!(m.rar_hist.total(), r.pair_counts[2]);
            prop_assert_eq!(m.war_hist.total(), r.pair_counts[3]);
            prop_assert_eq!(m.update_interval_hist.total(), r.update_intervals);
        }
    }

    /// Structural invariants that must hold for any input.
    #[test]
    fn analyzer_invariants(reqs in proptest::collection::vec(arb_request(), 1..300)) {
        let trace = Trace::from_requests(reqs);
        let config = AnalysisConfig::default();
        for m in analyze_trace(&trace, &config).expect("valid config") {
            prop_assert!(m.wss_update_blocks <= m.wss_write_blocks);
            prop_assert!(m.wss_read_blocks.max(m.wss_write_blocks) <= m.wss_blocks);
            prop_assert!(m.wss_read_blocks + m.wss_write_blocks >= m.wss_blocks);
            prop_assert!(m.updated_bytes <= m.write_bytes);
            prop_assert!(m.random_requests <= m.requests());
            prop_assert!(m.peak_interval_requests <= m.requests());
            prop_assert!(m.peak_interval_requests >= 1);
            prop_assert!(m.first_ts <= m.last_ts);
            prop_assert_eq!(m.interarrival_hist.total(), m.requests() - 1);
            prop_assert_eq!(
                m.read_size_hist.total() + m.write_size_hist.total(),
                m.requests()
            );
            // adjacency pairs + cold blocks = block accesses
            let pairs = m.raw_hist.total() + m.waw_hist.total()
                + m.rar_hist.total() + m.war_hist.total();
            let accesses = m.read_mrc.total_accesses() + m.write_mrc.total_accesses();
            prop_assert_eq!(pairs + m.wss_blocks, accesses);
            // read/write-mostly traffic is bounded by the op traffic
            prop_assert!(m.read_bytes_to_read_mostly <= m.read_bytes);
            prop_assert!(m.write_bytes_to_write_mostly <= m.write_bytes);
            // activeness lists are sorted unique
            prop_assert!(m.active_intervals.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(m.active_days.windows(2).all(|w| w[0] < w[1]));
            // miss ratios are probabilities and monotone in cache size
            for frac in [0.01, 0.1, 1.0] {
                if let Some(r) = m.read_miss_ratio(frac) {
                    prop_assert!((0.0..=1.0).contains(&r));
                }
            }
            if let (Some(small), Some(large)) =
                (m.write_miss_ratio(0.01), m.write_miss_ratio(0.10))
            {
                prop_assert!(large <= small + 1e-12);
            }
        }
    }

    /// The batched SoA kernel is bit-identical to per-request `observe`
    /// for every metric, at every batch split.
    #[test]
    fn observe_batch_equals_observe(
        reqs in proptest::collection::vec(arb_request(), 1..300),
        split_seed in 0u64..10_000,
    ) {
        // One volume, time-sorted: the analyzer's input contract.
        let volume = VolumeId::new(0);
        let mut reqs: Vec<IoRequest> = reqs
            .iter()
            .map(|r| IoRequest::new(volume, r.op(), r.offset(), r.len(), r.ts()))
            .collect();
        cbs_trace::iter::sort_by_time(&mut reqs);
        let epoch = reqs[0].ts();
        let config = AnalysisConfig::default();

        let mut scalar = VolumeAnalyzer::new(volume, epoch, config.clone()).expect("valid config");
        for req in &reqs {
            scalar.observe(req);
        }

        let mut batched = VolumeAnalyzer::new(volume, epoch, config).expect("valid config");
        let batch = RequestBatch::from(reqs.as_slice());
        // Split the batch at a few arbitrary points; each sub-range goes
        // through the fused column loops.
        let mut cuts = vec![
            split_seed as usize % (reqs.len() + 1),
            (split_seed / 100) as usize % (reqs.len() + 1),
        ];
        cuts.extend([0, reqs.len()]);
        cuts.sort_unstable();
        for pair in cuts.windows(2) {
            batched.observe_batch(&batch, pair[0]..pair[1]);
        }

        prop_assert_eq!(scalar.finish(), batched.finish());
    }

    /// The AVX2 op/length kernels are bit-identical to their scalar
    /// twins at every length and slice alignment (empty, length-1 and
    /// non-lane-multiple tails are all exercised by the start offsets).
    #[test]
    fn simd_op_kernels_equal_scalar(
        seeds in proptest::collection::vec(0u64..u64::MAX, 0..300),
    ) {
        // One seed vector yields matched op and length columns (the
        // compat proptest has no tuple strategies).
        let ops: Vec<OpKind> = seeds
            .iter()
            .map(|&s| if s & 1 == 1 { OpKind::Write } else { OpKind::Read })
            .collect();
        let lens: Vec<u32> = seeds.iter().map(|&s| (s >> 1) as u32).collect();
        for start in 0..=seeds.len().min(5) {
            let (ops, lens) = (&ops[start..], &lens[start..]);
            prop_assert_eq!(
                simd::op_len_sums(ops, lens),
                simd::op_len_sums_scalar(ops, lens)
            );
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            simd::write_mask(ops, &mut fast);
            simd::write_mask_scalar(ops, &mut slow);
            prop_assert_eq!(fast, slow);
        }
    }

    /// The AVX2 first-difference and range-membership kernels are
    /// bit-identical to their scalar twins on arbitrary values
    /// (including wraparound deltas) at every slice alignment.
    #[test]
    fn simd_value_kernels_equal_scalar(
        values in proptest::collection::vec(0u64..u64::MAX, 0..200),
        prev in 0u64..u64::MAX,
        lo in 0u64..u64::MAX,
        span in 0u64..(1 << 48),
    ) {
        let hi = lo.saturating_add(span);
        for start in 0..=values.len().min(5) {
            let values = &values[start..];
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            simd::deltas_u64(values, prev, &mut fast);
            simd::deltas_u64_scalar(values, prev, &mut slow);
            prop_assert_eq!(fast, slow);
            prop_assert_eq!(
                simd::any_within(values, lo, hi),
                simd::any_within_scalar(values, lo, hi)
            );
            // Inverted (empty) range: nothing is ever within.
            prop_assert!(!simd::any_within(values, hi.max(1), hi.max(1) - 1));
        }
    }

    /// Analysis is invariant under input order (the trace sorts by
    /// timestamp; only metrics independent of equal-timestamp tie
    /// order are compared).
    #[test]
    fn order_invariance(mut reqs in proptest::collection::vec(arb_request(), 1..150)) {
        let config = AnalysisConfig::default();
        let a = analyze_trace(&Trace::from_requests(reqs.clone()), &config).expect("valid config");
        reqs.reverse();
        let b = analyze_trace(&Trace::from_requests(reqs), &config).expect("valid config");
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.reads, y.reads);
            prop_assert_eq!(x.writes, y.writes);
            prop_assert_eq!(x.wss_blocks, y.wss_blocks);
            prop_assert_eq!(x.wss_update_blocks, y.wss_update_blocks);
            prop_assert_eq!(x.peak_interval_requests, y.peak_interval_requests);
            prop_assert_eq!(x.active_intervals.clone(), y.active_intervals.clone());
        }
    }
}
