//! Property tests for the MERGEABLE analysis algebra.
//!
//! The corpus-parallel driver folds per-partition analysis state with
//! `merge`; these tests pin the monoid laws — associativity,
//! commutativity, identity — for [`VolumeAnalyzer`], [`VolumeMetrics`]
//! and [`WindowedAnalysis`], plus the block-range partition
//! homomorphism: for partitions covering disjoint block ranges of one
//! volume, the per-block metrics of `merge(analyze(a), analyze(b))`
//! equal the sequential `analyze(a ++ b)` exactly. They are the
//! associativity evidence `cbs-lint`'s `mergeable-audit` rule
//! (CBS-L13) requires.

use proptest::prelude::*;

use cbs_analysis::{
    analyze_trace, AnalysisConfig, VolumeAnalyzer, VolumeMetrics, WindowedAnalysis,
};
use cbs_trace::{IoRequest, OpKind, TimeDelta, Timestamp, Trace, VolumeId};

prop_compose! {
    /// One single-volume request over a small block space; single-block
    /// spans so block-parity partitions stay disjoint.
    fn arb_request()(
        op_bit in 0u8..2,
        block in 0u64..48,
        ts in 0u64..(1 << 32),
    ) -> IoRequest {
        IoRequest::new(
            VolumeId::new(0),
            if op_bit == 0 { OpKind::Read } else { OpKind::Write },
            block * 4096,
            4096,
            Timestamp::from_micros(ts),
        )
    }
}

/// Time-sorts `reqs` in place (the analyzer's input contract).
fn sorted(mut reqs: Vec<IoRequest>) -> Vec<IoRequest> {
    cbs_trace::iter::sort_by_time(&mut reqs);
    reqs
}

/// Runs a fresh analyzer over one already-sorted partition stream.
fn analyzer(reqs: &[IoRequest]) -> VolumeAnalyzer {
    let mut a = VolumeAnalyzer::new(VolumeId::new(0), Timestamp::ZERO, AnalysisConfig::default())
        .expect("valid config");
    for r in reqs {
        a.observe(r);
    }
    a
}

/// Compares metrics records exactly except for the floating-point
/// top-share pairs, which the record-level weighted-mean merge only
/// preserves up to rounding across groupings.
fn metrics_close(a: &VolumeMetrics, b: &VolumeMetrics) -> bool {
    let shares_close = |x: Option<(f64, f64)>, y: Option<(f64, f64)>| match (x, y) {
        (None, None) => true,
        (Some((x1, x10)), Some((y1, y10))) => (x1 - y1).abs() < 1e-9 && (x10 - y10).abs() < 1e-9,
        _ => false,
    };
    if !shares_close(a.top_read_shares, b.top_read_shares)
        || !shares_close(a.top_write_shares, b.top_write_shares)
    {
        return false;
    }
    let strip = |m: &VolumeMetrics| {
        let mut m = m.clone();
        m.top_read_shares = None;
        m.top_write_shares = None;
        m
    };
    strip(a) == strip(b)
}

/// Windowed analysis of one partition stream against the shared epoch.
fn windowed(reqs: &[IoRequest]) -> WindowedAnalysis {
    let trace = Trace::from_requests(reqs.to_vec());
    let view = trace
        .volume(VolumeId::new(0))
        .unwrap_or_else(|| cbs_trace::VolumeView::new(VolumeId::new(0), &[]));
    WindowedAnalysis::analyze(
        view,
        Timestamp::ZERO,
        TimeDelta::from_secs(600),
        &AnalysisConfig::default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `VolumeAnalyzer::merge` is associative and commutative on the
    /// finished metrics, with a fresh analyzer as identity.
    #[test]
    fn volume_analyzer_merge_is_associative(
        ra in proptest::collection::vec(arb_request(), 1..120),
        rb in proptest::collection::vec(arb_request(), 1..120),
        rc in proptest::collection::vec(arb_request(), 1..120),
    ) {
        let (ra, rb, rc) = (sorted(ra), sorted(rb), sorted(rc));

        let mut left = analyzer(&ra);
        left.merge(analyzer(&rb));
        left.merge(analyzer(&rc));

        let mut right_tail = analyzer(&rb);
        right_tail.merge(analyzer(&rc));
        let mut right = analyzer(&ra);
        right.merge(right_tail);
        prop_assert_eq!(left.finish(), right.finish());

        let mut ab = analyzer(&ra);
        ab.merge(analyzer(&rb));
        let mut ba = analyzer(&rb);
        ba.merge(analyzer(&ra));
        prop_assert_eq!(ab.finish(), ba.finish());

        let mut with_identity = analyzer(&ra);
        with_identity.merge(analyzer(&[]));
        prop_assert_eq!(with_identity.finish(), analyzer(&ra).finish());
    }

    /// For disjoint block-range partitions, every per-block metric of
    /// the merged analyzers equals the sequential whole-stream
    /// analysis (stream-order state — peaks, inter-arrivals,
    /// randomness, reuse distances — is partition-scoped by design and
    /// excluded).
    #[test]
    fn volume_analyzer_merge_matches_block_partition(
        reqs in proptest::collection::vec(arb_request(), 1..200),
    ) {
        let reqs = sorted(reqs);
        let whole = analyzer(&reqs).finish();

        let even: Vec<IoRequest> = reqs
            .iter()
            .filter(|r| (r.offset() / 4096) % 2 == 0)
            .copied()
            .collect();
        let odd: Vec<IoRequest> = reqs
            .iter()
            .filter(|r| (r.offset() / 4096) % 2 == 1)
            .copied()
            .collect();
        let mut merged = analyzer(&even);
        merged.merge(analyzer(&odd));
        let merged = merged.finish();

        prop_assert_eq!(merged.reads, whole.reads);
        prop_assert_eq!(merged.writes, whole.writes);
        prop_assert_eq!(merged.read_bytes, whole.read_bytes);
        prop_assert_eq!(merged.write_bytes, whole.write_bytes);
        prop_assert_eq!(merged.updated_bytes, whole.updated_bytes);
        prop_assert_eq!(merged.first_ts, whole.first_ts);
        prop_assert_eq!(merged.last_ts, whole.last_ts);
        prop_assert_eq!(&merged.read_size_hist, &whole.read_size_hist);
        prop_assert_eq!(&merged.write_size_hist, &whole.write_size_hist);
        prop_assert_eq!(merged.wss_blocks, whole.wss_blocks);
        prop_assert_eq!(merged.wss_read_blocks, whole.wss_read_blocks);
        prop_assert_eq!(merged.wss_write_blocks, whole.wss_write_blocks);
        prop_assert_eq!(merged.wss_update_blocks, whole.wss_update_blocks);
        prop_assert_eq!(&merged.raw_hist, &whole.raw_hist);
        prop_assert_eq!(&merged.waw_hist, &whole.waw_hist);
        prop_assert_eq!(&merged.rar_hist, &whole.rar_hist);
        prop_assert_eq!(&merged.war_hist, &whole.war_hist);
        prop_assert_eq!(&merged.update_interval_hist, &whole.update_interval_hist);
        prop_assert_eq!(merged.read_bytes_to_read_mostly, whole.read_bytes_to_read_mostly);
        prop_assert_eq!(merged.write_bytes_to_write_mostly, whole.write_bytes_to_write_mostly);
        // Block-traffic multisets agree, so the finish-time share
        // computation is bit-identical.
        prop_assert_eq!(merged.top_read_shares, whole.top_read_shares);
        prop_assert_eq!(merged.top_write_shares, whole.top_write_shares);
        prop_assert_eq!(merged.active_intervals.clone(), whole.active_intervals.clone());
        prop_assert_eq!(merged.active_days.clone(), whole.active_days.clone());
    }

    /// `VolumeMetrics::merge` is associative (floats up to rounding)
    /// and commutative, with an empty same-volume record as identity.
    #[test]
    fn volume_metrics_merge_is_associative(
        ra in proptest::collection::vec(arb_request(), 1..120),
        rb in proptest::collection::vec(arb_request(), 1..120),
        rc in proptest::collection::vec(arb_request(), 1..120),
    ) {
        let m = |reqs: Vec<IoRequest>| analyzer(&sorted(reqs)).finish();
        let (a, b, c) = (m(ra), m(rb), m(rc));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right_tail = b.clone();
        right_tail.merge(&c);
        let mut right = a.clone();
        right.merge(&right_tail);
        prop_assert!(metrics_close(&left, &right));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert!(metrics_close(&ab, &ba));

        let identity = analyzer(&[]).finish();
        let mut with_identity = a.clone();
        with_identity.merge(&identity);
        prop_assert_eq!(with_identity, a);
    }

    /// `WindowedAnalysis::merge` is associative, commutes, has the
    /// empty analysis as identity, and is an exact homomorphism for
    /// disjoint block-range partitions.
    #[test]
    fn windowed_analysis_merge_is_associative(
        ra in proptest::collection::vec(arb_request(), 0..120),
        rb in proptest::collection::vec(arb_request(), 0..120),
        rc in proptest::collection::vec(arb_request(), 0..120),
    ) {
        let (ra, rb, rc) = (sorted(ra), sorted(rb), sorted(rc));
        let (a, b, c) = (windowed(&ra), windowed(&rb), windowed(&rc));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right_tail = b.clone();
        right_tail.merge(&c);
        let mut right = a.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut with_identity = a.clone();
        with_identity.merge(&windowed(&[]));
        prop_assert_eq!(&with_identity, &a);

        // Disjoint block-range partitions: merged == sequential.
        let whole = windowed(&ra);
        let even: Vec<IoRequest> = ra
            .iter()
            .filter(|r| (r.offset() / 4096) % 2 == 0)
            .copied()
            .collect();
        let odd: Vec<IoRequest> = ra
            .iter()
            .filter(|r| (r.offset() / 4096) % 2 == 1)
            .copied()
            .collect();
        let mut merged = windowed(&even);
        merged.merge(&windowed(&odd));
        prop_assert_eq!(&merged, &whole);
    }

    /// `analyze_trace` on a volume-partitioned corpus merges back to
    /// the sequential per-volume records verbatim — the exactness law
    /// the by-volume partitioner relies on (each volume is analyzed
    /// whole, so `merge` never mixes partial volumes).
    #[test]
    fn volume_metrics_by_volume_partition_is_exact(
        seeds in proptest::collection::vec(0u64..u64::MAX, 1..150),
    ) {
        // Three volumes interleaved in one corpus.
        let reqs: Vec<IoRequest> = seeds
            .iter()
            .map(|&s| {
                IoRequest::new(
                    VolumeId::new((s % 3) as u32),
                    if s & 8 == 0 { OpKind::Read } else { OpKind::Write },
                    ((s >> 4) % 64) * 4096,
                    4096,
                    Timestamp::from_micros((s >> 10) % (1 << 30)),
                )
            })
            .collect();
        let trace = Trace::from_requests(reqs.clone());
        let config = AnalysisConfig::default();
        let sequential = analyze_trace(&trace, &config).expect("valid config");

        // Partition by volume, preserving the corpus epoch.
        let epoch = trace.start().unwrap_or(Timestamp::ZERO);
        for m in &sequential {
            let view = trace.volume(m.id).expect("volume exists");
            let partial = VolumeAnalyzer::analyze_volume(view, epoch, &config)
                .expect("valid config");
            prop_assert_eq!(&partial, m);
        }
    }
}
