//! Analysis parameters: [`AnalysisConfig`].

use cbs_trace::{BlockSize, TimeDelta};

/// Parameters of the trace analysis, defaulting to the paper's choices.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisConfig {
    /// Block unit for all block-granular metrics (4 KiB).
    pub block_size: BlockSize,
    /// Number of preceding requests inspected by the randomness metric
    /// (32, following DiskAccel / VMware's characterization).
    pub randomness_window: usize,
    /// Minimum-distance threshold in bytes beyond which a request is
    /// *random* (128 KiB).
    pub randomness_threshold: u64,
    /// Interval defining fine-grained activeness (10 minutes).
    pub active_interval: TimeDelta,
    /// Interval defining peak intensity (1 minute).
    pub peak_interval: TimeDelta,
    /// Traffic share above which a block is read-mostly / write-mostly
    /// (0.95).
    pub rw_mostly_threshold: f64,
    /// The two "top blocks" fractions of the aggregation analysis
    /// (1 % and 10 %).
    pub top_fractions: (f64, f64),
    /// The two cache sizes of the LRU analysis, as fractions of a
    /// volume's WSS (1 % and 10 %).
    pub cache_fractions: (f64, f64),
    /// Precision of the elapsed-time histograms (relative error
    /// `2^-bits`).
    pub hist_precision_bits: u32,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            block_size: BlockSize::DEFAULT,
            randomness_window: 32,
            randomness_threshold: 128 * 1024,
            active_interval: TimeDelta::from_mins(10),
            peak_interval: TimeDelta::from_mins(1),
            rw_mostly_threshold: 0.95,
            top_fractions: (0.01, 0.10),
            cache_fractions: (0.01, 0.10),
            hist_precision_bits: 6,
        }
    }
}

/// A rejected [`AnalysisConfig`]: the typed error every constructor
/// taking a config propagates instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfig(String);

impl InvalidConfig {
    /// Human-readable description of the first invalid field.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid analysis config: {}", self.0)
    }
}

impl std::error::Error for InvalidConfig {}

impl AnalysisConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns an [`InvalidConfig`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), InvalidConfig> {
        if self.randomness_window == 0 {
            return Err(InvalidConfig(
                "randomness_window must be non-zero".to_owned(),
            ));
        }
        if self.active_interval.is_zero() || self.peak_interval.is_zero() {
            return Err(InvalidConfig("intervals must be non-zero".to_owned()));
        }
        if !(0.0..=1.0).contains(&self.rw_mostly_threshold) {
            return Err(InvalidConfig(format!(
                "rw_mostly_threshold must be in [0,1], got {}",
                self.rw_mostly_threshold
            )));
        }
        for (name, f) in [
            ("top_fractions.0", self.top_fractions.0),
            ("top_fractions.1", self.top_fractions.1),
            ("cache_fractions.0", self.cache_fractions.0),
            ("cache_fractions.1", self.cache_fractions.1),
        ] {
            if !(f > 0.0 && f <= 1.0) {
                return Err(InvalidConfig(format!("{name} must be in (0,1], got {f}")));
            }
        }
        if !(1..=16).contains(&self.hist_precision_bits) {
            return Err(InvalidConfig(format!(
                "hist_precision_bits must be in 1..=16, got {}",
                self.hist_precision_bits
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = AnalysisConfig::default();
        assert_eq!(c.block_size.bytes(), 4096);
        assert_eq!(c.randomness_window, 32);
        assert_eq!(c.randomness_threshold, 128 * 1024);
        assert_eq!(c.active_interval, TimeDelta::from_mins(10));
        assert_eq!(c.peak_interval, TimeDelta::from_mins(1));
        assert_eq!(c.rw_mostly_threshold, 0.95);
        assert_eq!(c.top_fractions, (0.01, 0.10));
        assert_eq!(c.cache_fractions, (0.01, 0.10));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_names_offenders() {
        let broken = |f: &dyn Fn(&mut AnalysisConfig)| {
            let mut c = AnalysisConfig::default();
            f(&mut c);
            c.validate().unwrap_err().message().to_owned()
        };
        assert!(broken(&|c| c.randomness_window = 0).contains("randomness_window"));
        assert!(broken(&|c| c.active_interval = TimeDelta::ZERO).contains("intervals"));
        assert!(broken(&|c| c.rw_mostly_threshold = 1.5).contains("rw_mostly_threshold"));
        assert!(broken(&|c| c.top_fractions = (0.0, 0.1)).contains("top_fractions.0"));
        assert!(broken(&|c| c.cache_fractions = (0.01, 1.5)).contains("cache_fractions.1"));
        assert!(broken(&|c| c.hist_precision_bits = 0).contains("hist_precision_bits"));
    }
}
