//! Finding 14 (F14) — update intervals (Table VI, Figs. 16-17).

use cbs_stats::{BoxplotSummary, LogHistogram};
use cbs_trace::TimeDelta;

use crate::findings::PAPER_PERCENTILES;
use crate::metrics::VolumeMetrics;

/// The paper's four update-interval duration groups (Fig. 17).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalGroup {
    /// Less than 5 minutes.
    Under5Min,
    /// 5 to 30 minutes.
    Min5To30,
    /// 30 to 240 minutes.
    Min30To240,
    /// More than 240 minutes.
    Over240Min,
}

impl IntervalGroup {
    /// All groups in ascending duration order.
    pub const ALL: [IntervalGroup; 4] = [
        IntervalGroup::Under5Min,
        IntervalGroup::Min5To30,
        IntervalGroup::Min30To240,
        IntervalGroup::Over240Min,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            IntervalGroup::Under5Min => "<5min",
            IntervalGroup::Min5To30 => "5-30min",
            IntervalGroup::Min30To240 => "30-240min",
            IntervalGroup::Over240Min => ">240min",
        }
    }
}

/// Table VI — overall percentiles of the corpus-merged update-interval
/// distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct OverallUpdateIntervals {
    /// The merged histogram (µs).
    pub hist: LogHistogram,
}

impl OverallUpdateIntervals {
    /// Merges every volume's update-interval histogram.
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        let bits = metrics
            .first()
            .map_or(6, |m| m.update_interval_hist.precision_bits());
        let mut hist = LogHistogram::new(bits);
        for m in metrics {
            hist.merge(&m.update_interval_hist);
        }
        OverallUpdateIntervals { hist }
    }

    /// Table VI's row: the 25/50/75/90/95th percentiles, in hours.
    pub fn percentiles_hours(&self) -> Option<[f64; 5]> {
        if self.hist.is_empty() {
            return None;
        }
        // The histogram is non-empty (checked above), so every quantile
        // resolves; 0.0 is a dead fallback.
        Some(PAPER_PERCENTILES.map(|p| {
            self.hist
                .quantile(p / 100.0)
                .map_or(0.0, |us| TimeDelta::from_micros(us).as_hours_f64())
        }))
    }
}

/// Fig. 16 — boxplots across volumes of per-volume update-interval
/// percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateIntervalBoxplots {
    /// The percentile each group describes.
    pub percentiles: [f64; 5],
    /// Per-group raw per-volume values (hours).
    pub values_hours: [Vec<f64>; 5],
    /// Per-group boxplot summaries.
    pub boxplots: [Option<BoxplotSummary>; 5],
}

impl UpdateIntervalBoxplots {
    /// Builds the groups over volumes with at least one update
    /// interval.
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        let mut values_hours: [Vec<f64>; 5] = Default::default();
        for m in metrics {
            if m.update_interval_hist.is_empty() {
                continue;
            }
            for (slot, &p) in PAPER_PERCENTILES.iter().enumerate() {
                // The histogram is non-empty (checked above), so every
                // quantile resolves.
                if let Some(us) = m.update_interval_hist.quantile(p / 100.0) {
                    values_hours[slot].push(TimeDelta::from_micros(us).as_hours_f64());
                }
            }
        }
        let boxplots =
            std::array::from_fn(|i| BoxplotSummary::from_unsorted(values_hours[i].clone()));
        UpdateIntervalBoxplots {
            percentiles: PAPER_PERCENTILES,
            values_hours,
            boxplots,
        }
    }
}

/// Fig. 17 — per-volume proportions of update intervals in the four
/// duration groups.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalGroupProportions {
    /// Per-group proportion vectors (one value per volume with
    /// updates), in [`IntervalGroup::ALL`] order.
    pub proportions: [Vec<f64>; 4],
}

impl IntervalGroupProportions {
    /// Computes each volume's proportion of update intervals per group.
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        let m5 = TimeDelta::from_mins(5).as_micros();
        let m30 = TimeDelta::from_mins(30).as_micros();
        let m240 = TimeDelta::from_mins(240).as_micros();
        let mut proportions: [Vec<f64>; 4] = Default::default();
        for m in metrics {
            let h = &m.update_interval_hist;
            if h.is_empty() {
                continue;
            }
            let under5 = h.fraction_at_or_below(m5);
            let under30 = h.fraction_at_or_below(m30);
            let under240 = h.fraction_at_or_below(m240);
            proportions[0].push(under5);
            proportions[1].push(under30 - under5);
            proportions[2].push(under240 - under30);
            proportions[3].push(1.0 - under240);
        }
        IntervalGroupProportions { proportions }
    }

    /// Boxplot of one group's proportions.
    pub fn boxplot(&self, group: IntervalGroup) -> Option<BoxplotSummary> {
        let idx = IntervalGroup::ALL.iter().position(|&g| g == group)?;
        BoxplotSummary::from_unsorted(self.proportions[idx].clone())
    }

    /// Median proportion of one group (paper: half the AliCloud
    /// volumes have > 35.2 % of intervals under 5 minutes and > 38.2 %
    /// over 240 minutes).
    pub fn median(&self, group: IntervalGroup) -> Option<f64> {
        self.boxplot(group).map(|b| b.median())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn overall_percentiles_are_monotone() {
        let (_, metrics) = fixture();
        let o = OverallUpdateIntervals::from_metrics(&metrics);
        let p = o.percentiles_hours().unwrap();
        assert!(p.windows(2).all(|w| w[0] <= w[1] + 1e-12), "{p:?}");
        // fixture: updates every minute → all percentiles ≈ 1/60 h
        assert!((p[2] - 1.0 / 60.0).abs() / (1.0 / 60.0) < 0.05, "{p:?}");
    }

    #[test]
    fn boxplots_only_cover_updating_volumes() {
        let (_, metrics) = fixture();
        let b = UpdateIntervalBoxplots::from_metrics(&metrics);
        // only vol 0 has update intervals
        assert!(b.values_hours.iter().all(|v| v.len() == 1));
        assert!(b.boxplots[0].is_some());
    }

    #[test]
    fn group_proportions_sum_to_one() {
        let (_, metrics) = fixture();
        let g = IntervalGroupProportions::from_metrics(&metrics);
        let volumes = g.proportions[0].len();
        for v in 0..volumes {
            let sum: f64 = (0..4).map(|k| g.proportions[k][v]).sum();
            assert!((sum - 1.0).abs() < 1e-9, "volume {v} sums to {sum}");
        }
        // fixture's 1-minute cadence lands fully in <5min
        assert!((g.median(IntervalGroup::Under5Min).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(g.median(IntervalGroup::Over240Min), Some(0.0));
    }

    #[test]
    fn group_labels() {
        assert_eq!(
            IntervalGroup::ALL.map(IntervalGroup::label),
            ["<5min", "5-30min", "30-240min", ">240min"]
        );
    }

    #[test]
    fn empty_metrics() {
        let o = OverallUpdateIntervals::from_metrics(&[]);
        assert_eq!(o.percentiles_hours(), None);
        let g = IntervalGroupProportions::from_metrics(&[]);
        assert_eq!(g.median(IntervalGroup::Under5Min), None);
    }
}
