//! Finding 9 (F9) — traffic aggregation in top blocks (Fig. 11).

use cbs_stats::BoxplotSummary;

use crate::metrics::VolumeMetrics;

/// Fig. 11 — distributions across volumes of the share of traffic
/// carried by the top-1 % and top-10 % blocks, for reads and writes.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationBoxplots {
    /// Per-volume top-1 % read-traffic shares.
    pub read_top1: Vec<f64>,
    /// Per-volume top-10 % read-traffic shares.
    pub read_top10: Vec<f64>,
    /// Per-volume top-1 % write-traffic shares.
    pub write_top1: Vec<f64>,
    /// Per-volume top-10 % write-traffic shares.
    pub write_top10: Vec<f64>,
}

impl AggregationBoxplots {
    /// Collects the four share sets (volumes without the respective
    /// traffic are skipped).
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        let mut agg = AggregationBoxplots {
            read_top1: Vec::new(),
            read_top10: Vec::new(),
            write_top1: Vec::new(),
            write_top10: Vec::new(),
        };
        for m in metrics {
            if let Some((t1, t10)) = m.top_read_shares {
                agg.read_top1.push(t1);
                agg.read_top10.push(t10);
            }
            if let Some((t1, t10)) = m.top_write_shares {
                agg.write_top1.push(t1);
                agg.write_top10.push(t10);
            }
        }
        agg
    }

    /// Boxplot of one share set.
    pub fn boxplot(values: &[f64]) -> Option<BoxplotSummary> {
        BoxplotSummary::from_unsorted(values.to_vec())
    }

    /// 25th percentile of a share set — the paper quotes these
    /// (e.g. "75 % of volumes have at least 13.0 % of write traffic in
    /// the top-1 % write blocks").
    pub fn p25(values: &[f64]) -> Option<f64> {
        cbs_stats::Quantiles::from_unsorted(values.to_vec()).percentile(25.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn shares_are_ordered_and_bounded() {
        let (_, metrics) = fixture();
        let a = AggregationBoxplots::from_metrics(&metrics);
        assert_eq!(a.read_top1.len(), a.read_top10.len());
        for (t1, t10) in a.read_top1.iter().zip(&a.read_top10) {
            assert!(t1 <= t10, "top1 {t1} > top10 {t10}");
            assert!((0.0..=1.0).contains(t1) && (0.0..=1.0).contains(t10));
        }
        for (t1, t10) in a.write_top1.iter().zip(&a.write_top10) {
            assert!(t1 <= t10);
        }
    }

    #[test]
    fn hot_write_volume_aggregates() {
        let (_, metrics) = fixture();
        // vol 0 writes one block only → its top-1% share is 1.0
        let v0 = metrics
            .iter()
            .find(|m| m.id == cbs_trace::VolumeId::new(0))
            .unwrap();
        assert_eq!(v0.top_write_shares, Some((1.0, 1.0)));
    }

    #[test]
    fn boxplot_and_p25_helpers() {
        let (_, metrics) = fixture();
        let a = AggregationBoxplots::from_metrics(&metrics);
        let b = AggregationBoxplots::boxplot(&a.write_top1).unwrap();
        assert!(b.median() > 0.0);
        let p = AggregationBoxplots::p25(&a.write_top10).unwrap();
        assert!((0.0..=1.0).contains(&p));
        assert!(AggregationBoxplots::boxplot(&[]).is_none());
        assert!(AggregationBoxplots::p25(&[]).is_none());
    }
}
