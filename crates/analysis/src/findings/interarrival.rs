//! Finding 4 (F4) — inter-arrival time percentiles (Fig. 7).

use cbs_stats::BoxplotSummary;

use crate::findings::PAPER_PERCENTILES;
use crate::metrics::VolumeMetrics;

/// Fig. 7 — for each percentile group (25/50/75/90/95), the
/// distribution across volumes of that percentile of the volume's
/// inter-arrival times.
#[derive(Debug, Clone, PartialEq)]
pub struct InterarrivalBoxplots {
    /// The percentile each entry describes.
    pub percentiles: [f64; 5],
    /// Per-group raw values (µs), one per volume with ≥ 2 requests.
    pub values_us: [Vec<f64>; 5],
    /// Per-group boxplot summaries (`None` when no volume qualifies).
    pub boxplots: [Option<BoxplotSummary>; 5],
}

impl InterarrivalBoxplots {
    /// Builds the five groups.
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        let mut values_us: [Vec<f64>; 5] = Default::default();
        for m in metrics {
            if m.interarrival_hist.is_empty() {
                continue;
            }
            for (slot, &p) in PAPER_PERCENTILES.iter().enumerate() {
                // The histogram is non-empty (checked above), so every
                // quantile resolves.
                if let Some(v) = m.interarrival_hist.quantile(p / 100.0) {
                    values_us[slot].push(v as f64);
                }
            }
        }
        let boxplots = std::array::from_fn(|i| BoxplotSummary::from_unsorted(values_us[i].clone()));
        InterarrivalBoxplots {
            percentiles: PAPER_PERCENTILES,
            values_us,
            boxplots,
        }
    }

    /// The median across volumes of one percentile group (µs).
    pub fn median_of_group(&self, group: usize) -> Option<f64> {
        self.boxplots[group].as_ref().map(BoxplotSummary::median)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn groups_are_monotone_in_percentile() {
        let (_, metrics) = fixture();
        let b = InterarrivalBoxplots::from_metrics(&metrics);
        // every volume contributes to every group
        assert!(b.values_us.iter().all(|v| v.len() == 3));
        // per-volume percentiles grow with the percentile, so medians do
        let medians: Vec<f64> = (0..5).map(|g| b.median_of_group(g).unwrap()).collect();
        assert!(
            medians.windows(2).all(|w| w[0] <= w[1] + 1e-9),
            "{medians:?}"
        );
    }

    #[test]
    fn burst_volume_has_small_interarrivals() {
        let (_, metrics) = fixture();
        let b = InterarrivalBoxplots::from_metrics(&metrics);
        // vol 2's burst has ~1 ms gaps, so the group minimum is ms-scale
        let min_median = b.values_us[1].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(min_median <= 1100.0, "min median {min_median}us");
    }

    #[test]
    fn empty_metrics() {
        let b = InterarrivalBoxplots::from_metrics(&[]);
        assert!(b.boxplots.iter().all(Option::is_none));
        assert_eq!(b.median_of_group(0), None);
    }
}
