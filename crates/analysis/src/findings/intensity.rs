//! Findings 1-3 (F1, F2, F3) — load intensities and burstiness
//! (Fig. 5, Table II, Fig. 6).

use cbs_stats::{Cdf, TimeBins};
use cbs_trace::Trace;

use crate::config::AnalysisConfig;
use crate::metrics::VolumeMetrics;

/// Fig. 5 — per-volume average and peak intensities, sorted by average
/// intensity descending (paired).
#[derive(Debug, Clone, PartialEq)]
pub struct IntensitySeries {
    /// Average intensity (req/s) per volume, descending.
    pub avg: Vec<f64>,
    /// Peak intensity (req/s) of the same volume at the same index.
    pub peak: Vec<f64>,
}

impl IntensitySeries {
    /// Builds the series.
    pub fn from_metrics(metrics: &[VolumeMetrics], config: &AnalysisConfig) -> Self {
        let mut pairs: Vec<(f64, f64)> = metrics
            .iter()
            .map(|m| (m.avg_intensity(), m.peak_intensity(config)))
            .collect();
        pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
        IntensitySeries {
            avg: pairs.iter().map(|p| p.0).collect(),
            peak: pairs.iter().map(|p| p.1).collect(),
        }
    }

    /// Fraction of volumes with average intensity above `threshold`
    /// req/s (paper: 1.90 % / 2.78 % above 100).
    pub fn fraction_avg_above(&self, threshold: f64) -> f64 {
        if self.avg.is_empty() {
            return 0.0;
        }
        self.avg.iter().filter(|&&a| a > threshold).count() as f64 / self.avg.len() as f64
    }

    /// Median of the average intensities.
    pub fn median_avg(&self) -> Option<f64> {
        cbs_stats::Quantiles::from_unsorted(self.avg.clone()).median()
    }

    /// The maximum peak intensity across volumes.
    pub fn max_peak(&self) -> Option<f64> {
        self.peak.iter().copied().reduce(f64::max)
    }
}

/// Table II — corpus-level intensities: all volumes aggregated into one
/// stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverallIntensity {
    /// Peak intensity of the aggregate stream (req/s).
    pub peak_rps: f64,
    /// Average intensity of the aggregate stream (req/s).
    pub avg_rps: f64,
}

impl OverallIntensity {
    /// Computes the aggregate intensities with one streaming pass over
    /// the time-ordered trace.
    pub fn from_trace(trace: &Trace, config: &AnalysisConfig) -> Option<Self> {
        let start = trace.start()?;
        let end = trace.end()?;
        let mut bins = TimeBins::new(config.peak_interval.as_micros());
        for req in trace.iter_time_ordered() {
            bins.add((req.ts() - start).as_micros(), 1);
        }
        let span_secs = (end - start).as_secs_f64().max(1.0);
        Some(OverallIntensity {
            peak_rps: bins.max_count() as f64 / config.peak_interval.as_secs_f64(),
            avg_rps: trace.request_count() as f64 / span_secs,
        })
    }

    /// The overall burstiness ratio (paper: 2.11 AliCloud, 7.39 MSRC).
    pub fn burstiness_ratio(&self) -> f64 {
        self.peak_rps / self.avg_rps
    }
}

/// Fig. 6 — the distribution of per-volume burstiness ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstinessDistribution {
    /// Empirical CDF of burstiness ratios.
    pub cdf: Cdf,
}

impl BurstinessDistribution {
    /// Builds the distribution.
    pub fn from_metrics(metrics: &[VolumeMetrics], config: &AnalysisConfig) -> Self {
        BurstinessDistribution {
            cdf: metrics.iter().map(|m| m.burstiness_ratio(config)).collect(),
        }
    }

    /// Fraction of volumes with burstiness ratio below `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        self.cdf.fraction_at_or_below(x)
    }

    /// Fraction of volumes with burstiness ratio above `x`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.cdf.fraction_at_or_below(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn series_is_sorted_and_paired() {
        let (_, metrics) = fixture();
        let config = AnalysisConfig::default();
        let s = IntensitySeries::from_metrics(&metrics, &config);
        assert_eq!(s.avg.len(), 3);
        assert!(s.avg.windows(2).all(|w| w[0] >= w[1]));
        // vol 2 (burst of 20 in ~20 ms, counted against one second)
        // has the highest average; its minute-normalized peak is below
        // its average — exactly the short-lived-volume artifact the
        // definitions allow.
        assert!(s.avg[0] >= 20.0 - 1e-9);
        // the steady volumes have peak >= avg
        for (a, p) in s.avg.iter().zip(&s.peak).skip(1) {
            assert!(p >= a, "peak {p} < avg {a}");
        }
    }

    #[test]
    fn fraction_and_median_helpers() {
        let (_, metrics) = fixture();
        let config = AnalysisConfig::default();
        let s = IntensitySeries::from_metrics(&metrics, &config);
        assert_eq!(s.fraction_avg_above(f64::MAX), 0.0);
        assert!((s.fraction_avg_above(0.0) - 1.0).abs() < 1e-12);
        assert!(s.median_avg().is_some());
        assert!(s.max_peak().unwrap() > 0.0);
    }

    #[test]
    fn overall_intensity_aggregates_volumes() {
        let (trace, _) = fixture();
        let config = AnalysisConfig::default();
        let o = OverallIntensity::from_trace(&trace, &config).unwrap();
        let span_secs = trace.span().unwrap().as_secs_f64();
        let expected_avg = trace.request_count() as f64 / span_secs;
        assert!((o.avg_rps - expected_avg).abs() < 1e-9);
        assert!(o.peak_rps >= o.avg_rps);
        assert!(o.burstiness_ratio() >= 1.0);
    }

    #[test]
    fn overall_intensity_empty_trace() {
        let config = AnalysisConfig::default();
        assert!(OverallIntensity::from_trace(&Trace::new(), &config).is_none());
    }

    #[test]
    fn burstiness_distribution() {
        let (_, metrics) = fixture();
        let config = AnalysisConfig::default();
        let b = BurstinessDistribution::from_metrics(&metrics, &config);
        assert_eq!(b.cdf.len(), 3);
        assert!((b.fraction_below(f64::MAX) - 1.0).abs() < 1e-12);
        assert!(b.fraction_above(0.5) > 0.0);
        assert!((b.fraction_below(1000.0) + b.fraction_above(1000.0) - 1.0).abs() < 1e-12);
    }
}
