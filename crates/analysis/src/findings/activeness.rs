//! Findings 5-7 (F5, F6, F7) — volume activeness (Figs. 3, 8, 9).

use cbs_stats::Cdf;

use crate::config::AnalysisConfig;
use crate::metrics::VolumeMetrics;

/// Fig. 3 — the distribution of active-day counts across volumes.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveDays {
    /// Empirical CDF of per-volume active-day counts.
    pub cdf: Cdf,
}

impl ActiveDays {
    /// Builds the distribution.
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        ActiveDays {
            cdf: metrics.iter().map(|m| m.active_days.len() as f64).collect(),
        }
    }

    /// Fraction of volumes active on at most `days` days
    /// (paper: 15.7 % of AliCloud volumes active one day).
    pub fn fraction_at_most(&self, days: u64) -> f64 {
        self.cdf.fraction_at_or_below(days as f64)
    }
}

/// Fig. 8 — numbers of active / read-active / write-active volumes per
/// 10-minute interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivenessSeries {
    /// Volumes active in each interval (index = interval since corpus
    /// start).
    pub active: Vec<u32>,
    /// Volumes with ≥ 1 read in each interval.
    pub read_active: Vec<u32>,
    /// Volumes with ≥ 1 write in each interval.
    pub write_active: Vec<u32>,
}

impl ActivenessSeries {
    /// Accumulates per-interval volume counts.
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        let max_interval = metrics
            .iter()
            .flat_map(|m| m.active_intervals.last().copied())
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut series = ActivenessSeries {
            active: vec![0; max_interval],
            read_active: vec![0; max_interval],
            write_active: vec![0; max_interval],
        };
        for m in metrics {
            for &i in &m.active_intervals {
                series.active[i as usize] += 1;
            }
            for &i in &m.read_active_intervals {
                series.read_active[i as usize] += 1;
            }
            for &i in &m.write_active_intervals {
                series.write_active[i as usize] += 1;
            }
        }
        series
    }

    /// Relative reduction in active volumes when only reads count,
    /// over the intervals where any volume is active:
    /// `(min, max)` of `1 − read_active/active`
    /// (paper, Finding 7: 58.3-73.6 % in AliCloud).
    pub fn read_only_reduction(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (a, r) in self.active.iter().zip(&self.read_active) {
            if *a == 0 {
                continue;
            }
            let reduction = 1.0 - f64::from(*r) / f64::from(*a);
            lo = lo.min(reduction);
            hi = hi.max(reduction);
        }
        (lo.is_finite()).then_some((lo, hi))
    }
}

/// Fig. 9 — distributions of per-volume active time (days at 10-minute
/// granularity), for all requests, reads only, and writes only.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivePeriods {
    /// CDF of active time in days.
    pub active_days: Cdf,
    /// CDF of read-active time in days.
    pub read_active_days: Cdf,
    /// CDF of write-active time in days.
    pub write_active_days: Cdf,
}

impl ActivePeriods {
    /// Builds the three distributions.
    pub fn from_metrics(metrics: &[VolumeMetrics], config: &AnalysisConfig) -> Self {
        ActivePeriods {
            active_days: metrics
                .iter()
                .map(|m| m.active_period(config).as_days_f64())
                .collect(),
            read_active_days: metrics
                .iter()
                .map(|m| m.read_active_period(config).as_days_f64())
                .collect(),
            write_active_days: metrics
                .iter()
                .map(|m| m.write_active_period(config).as_days_f64())
                .collect(),
        }
    }

    /// Fraction of volumes active at least `fraction` of a trace of
    /// `trace_days` days (paper: 72.2 % / 55.6 % active ≥ 95 % of the
    /// trace).
    pub fn fraction_active_at_least(&self, fraction: f64, trace_days: f64) -> f64 {
        1.0 - self
            .active_days
            .fraction_at_or_below(fraction * trace_days - 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn active_days_cdf() {
        let (_, metrics) = fixture();
        let d = ActiveDays::from_metrics(&metrics);
        // vols 0 and 1 are active on day 0 only; vol 2 on day 1 only
        assert_eq!(d.fraction_at_most(1), 1.0);
        assert_eq!(d.fraction_at_most(0), 0.0);
    }

    #[test]
    fn series_counts_volumes_per_interval() {
        let (_, metrics) = fixture();
        let s = ActivenessSeries::from_metrics(&metrics);
        // interval 0: vol 0 (writes+reads) and vol 1 (reads+writes)
        assert_eq!(s.active[0], 2);
        assert_eq!(s.read_active[0], 2);
        assert_eq!(s.write_active[0], 1, "vol 1 writes at t=1000s (interval 1)");
        // vol 2 wakes on day 1 → interval 144
        assert_eq!(s.active[144], 1);
        // read_active ≤ active everywhere
        assert!(s.read_active.iter().zip(&s.active).all(|(r, a)| r <= a));
        assert!(s.write_active.iter().zip(&s.active).all(|(w, a)| w <= a));
    }

    #[test]
    fn reduction_bounds() {
        let (_, metrics) = fixture();
        let s = ActivenessSeries::from_metrics(&metrics);
        let (lo, hi) = s.read_only_reduction().unwrap();
        assert!((0.0..=1.0).contains(&lo));
        assert!(hi >= lo);
    }

    #[test]
    fn active_periods() {
        let (_, metrics) = fixture();
        let config = AnalysisConfig::default();
        let p = ActivePeriods::from_metrics(&metrics, &config);
        assert_eq!(p.active_days.len(), 3);
        // write-active ≤ active per volume ⇒ CDF dominates
        for q in [0.25, 0.5, 0.75] {
            assert!(
                p.write_active_days.value_at(q).unwrap()
                    <= p.active_days.value_at(q).unwrap() + 1e-12
            );
        }
        // everything is active for at least a sliver of the trace
        assert_eq!(p.fraction_active_at_least(0.0, 2.0), 1.0);
    }

    #[test]
    fn empty_metrics() {
        let s = ActivenessSeries::from_metrics(&[]);
        assert!(s.active.is_empty());
        assert_eq!(s.read_only_reduction(), None);
        let d = ActiveDays::from_metrics(&[]);
        assert_eq!(d.fraction_at_most(5), 0.0);
    }
}
