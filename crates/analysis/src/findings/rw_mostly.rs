//! Finding 10 (F10) — read-mostly / write-mostly block aggregation
//! (Table III, Fig. 12).

use cbs_stats::Cdf;

use crate::metrics::VolumeMetrics;

/// Table III — corpus-wide shares of traffic going to dominance-class
/// blocks, plus the per-volume distributions of Fig. 12.
#[derive(Debug, Clone, PartialEq)]
pub struct RwMostly {
    /// Corpus share of read traffic to read-mostly blocks
    /// (paper: 59.2 % AliCloud, 75.9 % MSRC).
    pub overall_read_share: Option<f64>,
    /// Corpus share of write traffic to write-mostly blocks
    /// (paper: 80.7 % AliCloud, 33.5 % MSRC).
    pub overall_write_share: Option<f64>,
    /// Fig. 12 — CDF of per-volume read shares.
    pub read_share_cdf: Cdf,
    /// Fig. 12 — CDF of per-volume write shares.
    pub write_share_cdf: Cdf,
}

impl RwMostly {
    /// Aggregates the dominance-class traffic shares.
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        let read_total: u64 = metrics.iter().map(|m| m.read_bytes).sum();
        let write_total: u64 = metrics.iter().map(|m| m.write_bytes).sum();
        let read_mostly: u64 = metrics.iter().map(|m| m.read_bytes_to_read_mostly).sum();
        let write_mostly: u64 = metrics.iter().map(|m| m.write_bytes_to_write_mostly).sum();
        RwMostly {
            overall_read_share: (read_total > 0).then(|| read_mostly as f64 / read_total as f64),
            overall_write_share: (write_total > 0)
                .then(|| write_mostly as f64 / write_total as f64),
            read_share_cdf: metrics
                .iter()
                .filter_map(VolumeMetrics::read_mostly_share)
                .collect(),
            write_share_cdf: metrics
                .iter()
                .filter_map(VolumeMetrics::write_mostly_share)
                .collect(),
        }
    }

    /// Median per-volume read share (paper: 83 % / 90 %).
    pub fn median_read_share(&self) -> Option<f64> {
        self.read_share_cdf.value_at(0.5)
    }

    /// Median per-volume write share (paper: 99 % / 75 %).
    pub fn median_write_share(&self) -> Option<f64> {
        self.write_share_cdf.value_at(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn overall_shares_match_manual_sum() {
        let (_, metrics) = fixture();
        let r = RwMostly::from_metrics(&metrics);
        let read_total: u64 = metrics.iter().map(|m| m.read_bytes).sum();
        let read_mostly: u64 = metrics.iter().map(|m| m.read_bytes_to_read_mostly).sum();
        assert!(
            (r.overall_read_share.unwrap() - read_mostly as f64 / read_total as f64).abs() < 1e-12
        );
        assert!((0.0..=1.0).contains(&r.overall_write_share.unwrap()));
    }

    #[test]
    fn fixture_separated_volumes_have_full_shares() {
        let (_, metrics) = fixture();
        // vol 1: reads and writes target disjoint regions → both shares 1.0
        let v1 = metrics
            .iter()
            .find(|m| m.id == cbs_trace::VolumeId::new(1))
            .unwrap();
        assert_eq!(v1.read_mostly_share(), Some(1.0));
        assert_eq!(v1.write_mostly_share(), Some(1.0));
    }

    #[test]
    fn medians_exist_for_fixture() {
        let (_, metrics) = fixture();
        let r = RwMostly::from_metrics(&metrics);
        assert!(r.median_read_share().unwrap() > 0.0);
        assert!(r.median_write_share().unwrap() > 0.0);
    }

    #[test]
    fn empty_metrics() {
        let r = RwMostly::from_metrics(&[]);
        assert_eq!(r.overall_read_share, None);
        assert_eq!(r.overall_write_share, None);
        assert_eq!(r.median_read_share(), None);
    }
}
