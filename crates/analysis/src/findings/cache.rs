//! Finding 15 (F15) — LRU miss ratios (Fig. 18).

use cbs_stats::BoxplotSummary;

use crate::config::AnalysisConfig;
use crate::metrics::VolumeMetrics;

/// Fig. 18 — distributions across volumes of LRU miss ratios for reads
/// and writes, at cache sizes of 1 % and 10 % of each volume's WSS.
///
/// The values come from the analyzer's exact per-op miss-ratio curves
/// (reuse distances over the unified read/write block stream), which
/// equal an explicit LRU simulation by the stack property.
#[derive(Debug, Clone, PartialEq)]
pub struct LruMissRatios {
    /// The two cache fractions evaluated (1 %, 10 %).
    pub fractions: (f64, f64),
    /// Read miss ratios at the small cache, one per volume with reads.
    pub read_small: Vec<f64>,
    /// Read miss ratios at the large cache.
    pub read_large: Vec<f64>,
    /// Write miss ratios at the small cache, one per volume with
    /// writes.
    pub write_small: Vec<f64>,
    /// Write miss ratios at the large cache.
    pub write_large: Vec<f64>,
}

impl LruMissRatios {
    /// Evaluates the miss-ratio curves at the configured fractions.
    pub fn from_metrics(metrics: &[VolumeMetrics], config: &AnalysisConfig) -> Self {
        let (small, large) = config.cache_fractions;
        let mut out = LruMissRatios {
            fractions: (small, large),
            read_small: Vec::new(),
            read_large: Vec::new(),
            write_small: Vec::new(),
            write_large: Vec::new(),
        };
        for m in metrics {
            if let (Some(a), Some(b)) = (m.read_miss_ratio(small), m.read_miss_ratio(large)) {
                out.read_small.push(a);
                out.read_large.push(b);
            }
            if let (Some(a), Some(b)) = (m.write_miss_ratio(small), m.write_miss_ratio(large)) {
                out.write_small.push(a);
                out.write_large.push(b);
            }
        }
        out
    }

    /// Boxplot of one value set.
    pub fn boxplot(values: &[f64]) -> Option<BoxplotSummary> {
        BoxplotSummary::from_unsorted(values.to_vec())
    }

    /// 25th percentile of one value set — the statistic the paper
    /// quotes (e.g. read miss ratio 59.4 % at 10 % WSS in AliCloud).
    pub fn p25(values: &[f64]) -> Option<f64> {
        cbs_stats::Quantiles::from_unsorted(values.to_vec()).percentile(25.0)
    }

    /// Mean absolute reduction in read miss ratio from the small to the
    /// large cache (Finding 15's "AliCloud shows higher reduction").
    pub fn mean_read_reduction(&self) -> Option<f64> {
        if self.read_small.is_empty() {
            return None;
        }
        let total: f64 = self
            .read_small
            .iter()
            .zip(&self.read_large)
            .map(|(s, l)| s - l)
            .sum();
        Some(total / self.read_small.len() as f64)
    }

    /// Mean absolute reduction in write miss ratio.
    pub fn mean_write_reduction(&self) -> Option<f64> {
        if self.write_small.is_empty() {
            return None;
        }
        let total: f64 = self
            .write_small
            .iter()
            .zip(&self.write_large)
            .map(|(s, l)| s - l)
            .sum();
        Some(total / self.write_small.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn larger_caches_never_miss_more() {
        let (_, metrics) = fixture();
        let config = AnalysisConfig::default();
        let r = LruMissRatios::from_metrics(&metrics, &config);
        for (s, l) in r.read_small.iter().zip(&r.read_large) {
            assert!(l <= s, "large {l} > small {s}");
        }
        for (s, l) in r.write_small.iter().zip(&r.write_large) {
            assert!(l <= s);
        }
        assert!(r.mean_read_reduction().unwrap() >= 0.0);
        assert!(r.mean_write_reduction().unwrap() >= 0.0);
    }

    #[test]
    fn hot_writes_hit_even_tiny_caches() {
        let (_, metrics) = fixture();
        // vol 0: 60 writes to block 0 out of a 3-block WSS. A 1-block
        // LRU hits every rewrite except the cold miss and the six
        // rewrites that follow an interleaved 2-block read (which
        // evicts block 0): miss ratio = 7/60.
        let v0 = &metrics[0];
        let miss = v0.write_miss_ratio(0.01).unwrap();
        assert!((miss - 7.0 / 60.0).abs() < 1e-9, "miss {miss}");
    }

    #[test]
    fn sequential_scan_misses_everything() {
        let (_, metrics) = fixture();
        // vol 1: 64 sequential one-shot reads — no reuse at all
        let v1 = &metrics[1];
        assert_eq!(v1.read_miss_ratio(0.10), Some(1.0));
    }

    #[test]
    fn ratios_are_probabilities() {
        let (_, metrics) = fixture();
        let config = AnalysisConfig::default();
        let r = LruMissRatios::from_metrics(&metrics, &config);
        for set in [&r.read_small, &r.read_large, &r.write_small, &r.write_large] {
            assert!(set.iter().all(|m| (0.0..=1.0).contains(m)));
        }
        assert!(LruMissRatios::boxplot(&r.write_small).is_some());
        assert!(LruMissRatios::p25(&r.read_small).is_some());
    }

    #[test]
    fn empty_metrics() {
        let r = LruMissRatios::from_metrics(&[], &AnalysisConfig::default());
        assert!(r.read_small.is_empty());
        assert_eq!(r.mean_read_reduction(), None);
        assert_eq!(r.mean_write_reduction(), None);
    }
}
